#!/usr/bin/env bash
# Bench regression gate: run the quick smoke benches and compare their
# medians against the in-tree baseline (BENCH_baseline.json). Fails when any
# bench regresses by more than TOLERANCE percent.
#
#   scripts/check_bench_regression.sh            # gate against the baseline
#   BASELINE=path OUT=path TOLERANCE=40 scripts/check_bench_regression.sh
#
# Bypasses:
#   * a commit message containing [bench-skip] skips the gate entirely
#     (useful for intentional slowdowns — refresh the baseline in the same
#     PR with: cargo run --release -p mals-bench --bin bench_json -- --quick
#     --out BENCH_baseline.json);
#   * a missing baseline records one instead of failing (first run).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_baseline.json}"
OUT="${OUT:-target/bench_smoke.json}"
TOLERANCE="${TOLERANCE:-25}"

# On pull_request events HEAD is GitHub's synthetic merge commit whose
# message is "Merge X into Y"; the author's message lives on HEAD^2 (the PR
# head). Check both so [bench-skip] works on pushes and PRs alike.
if { git log -1 --pretty=%B HEAD 2>/dev/null || true; \
     git log -1 --pretty=%B HEAD^2 2>/dev/null || true; } \
        | grep -qF '[bench-skip]'; then
    echo "bench gate: skipped via [bench-skip] in the commit message"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "bench gate: no baseline at $BASELINE — recording one"
    cargo run --release -p mals-bench --bin bench_json -- --quick --out "$BASELINE"
    exit 0
fi

mkdir -p "$(dirname "$OUT")"
cargo run --release -p mals-bench --bin bench_json -- --quick --out "$OUT"
cargo run --release -p mals-bench --bin bench_json -- compare "$BASELINE" "$OUT" --tolerance "$TOLERANCE"
