//! Run a normalised campaign over a set of random DAGs: for every memory
//! budget (expressed as a fraction of what HEFT would need), report how often
//! each memory-aware heuristic finds a schedule and how much slower it is
//! than HEFT (the Figure 10 / 12 methodology).
//!
//! Run with: `cargo run --release --example random_campaign [n_dags] [n_tasks]`

use mals::experiments::campaign::{run_normalized_campaign, CampaignConfig};
use mals::experiments::csv::campaign_to_csv;
use mals::gen::SetParams;
use mals::prelude::*;
use mals::util::ParallelConfig;

fn main() {
    let n_dags: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let n_tasks: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let dags = SetParams::small_rand().scaled(n_dags, n_tasks).generate();
    eprintln!("campaign over {n_dags} random DAGs of {n_tasks} tasks (P1 = P2 = 1)");

    let platform = Platform::single_pair(0.0, 0.0);
    let mut config = CampaignConfig {
        alphas: (0..=10).map(|i| i as f64 / 10.0).collect(),
        optimal_node_limit: 50_000,
        parallel: ParallelConfig::default(),
        ..Default::default()
    };
    if n_tasks <= 12 {
        // Small instances: add the exact branch-and-bound series by name.
        config = config.with_solver("bb");
    }
    let points = run_normalized_campaign(&dags, &platform, &config);
    print!("{}", campaign_to_csv(&points));

    // A one-line summary of the memory/makespan trade-off.
    if let Some(half) = points.iter().find(|p| (p.alpha - 0.5).abs() < 1e-9) {
        for m in &half.methods {
            eprintln!(
                "at 50% of HEFT's memory, {} schedules {:.0}% of the DAGs{}",
                m.name,
                m.success_rate * 100.0,
                m.mean_normalized_makespan
                    .map(|v| format!(" at {:.0}% of HEFT's makespan", v * 100.0))
                    .unwrap_or_default()
            );
        }
    }
}
