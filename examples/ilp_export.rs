//! Build the paper's ILP (Section 4) for the toy DAG D_ex and print it in
//! CPLEX LP format, ready to be handed to an external MILP solver.
//!
//! Run with: `cargo run --example ilp_export > dex.lp`

use mals::exact::ilp::ilp_stats;
use mals::prelude::*;

fn main() {
    let (graph, _) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let stats = ilp_stats(&graph, &platform);
    eprintln!(
        "ILP for D_ex on a 1+1 platform with 5 memory units per side: {} variables ({} binary), {} constraints",
        stats.n_variables, stats.n_binaries, stats.n_constraints
    );
    let model = build_ilp(&graph, &platform);
    print!("{}", model.to_lp_format());
}
