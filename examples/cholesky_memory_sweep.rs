//! Full memory sweep for a tiled Cholesky factorisation (the Figure 15
//! scenario), printed as CSV ready to plot.
//!
//! Run with: `cargo run --release --example cholesky_memory_sweep [tiles]`

use mals::experiments::csv::sweep_to_csv;
use mals::experiments::figures::{fig15, LinalgConfig};
use mals::util::ParallelConfig;

fn main() {
    let tiles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let sweep = fig15(&LinalgConfig {
        tiles,
        steps: 16,
        parallel: ParallelConfig::from_env(),
    });
    eprintln!(
        "Cholesky {tiles}x{tiles}: {} tasks, HEFT needs {:.0} tiles, lower bound {:.0} ms",
        sweep.graph.n_tasks(),
        sweep.heft_memory,
        sweep.lower_bound
    );
    print!("{}", sweep_to_csv(&sweep.points));
}
