//! Quickstart: build a small task graph by hand, schedule it through the
//! unified solver engine and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use mals::prelude::*;
use mals::sim::gantt;

fn main() {
    // The toy DAG D_ex of Figure 2 of the paper: four tasks, each with a CPU
    // (blue) time and an accelerator (red) time, and a file on every edge.
    let (graph, [t1, _t2, t3, _t4]) = dex();
    println!("D_ex: {} tasks, {} edges", graph.n_tasks(), graph.n_edges());
    println!(
        "T1 runs in {} on the CPU and {} on the accelerator",
        graph.task(t1).work_blue,
        graph.task(t1).work_red
    );
    println!("MemReq(T3) = {} memory units\n", graph.mem_req(t3));

    // One CPU and one accelerator, each with 5 units of memory.
    let platform = Platform::single_pair(5.0, 5.0);

    // One engine session over every registered solver (heuristics, ablation
    // variants and exact backends); solvers are selected by name.
    let engine = mals::exact::engine(EngineConfig::default());
    println!(
        "registered solvers: {}\n",
        engine.registry().keys().join(", ")
    );

    for solver in ["memheft", "memminmin"] {
        let outcome = engine.solve(solver, &graph, &platform).unwrap();
        let schedule = outcome.schedule.as_ref().expect("D_ex fits in 5 units");
        let report = validate(&graph, &platform, schedule);
        assert!(report.is_valid());
        println!("=== {solver} [{}] ===", outcome.status);
        println!(
            "makespan = {}, blue peak = {}, red peak = {}",
            report.makespan, report.peaks.blue, report.peaks.red
        );
        print!("{}", gantt::render_trace(&graph, &platform, schedule));
        println!("{}", gantt::render_gantt(&graph, &platform, schedule, 48));
    }

    // Exact solvers ride the same engine. Tighten the memory: with only 4
    // units per side the optimal schedule is slower (the paper's
    // memory/makespan trade-off).
    let with_5 = engine.solve("bb", &graph, &platform).unwrap();
    let with_4 = engine
        .solve("bb", &graph, &Platform::single_pair(4.0, 4.0))
        .unwrap();
    assert!(with_5.is_optimal() && with_4.is_optimal());
    println!(
        "optimal makespan with 5 units: {}  |  with 4 units: {}",
        with_5.makespan().unwrap(),
        with_4.makespan().unwrap()
    );
}
