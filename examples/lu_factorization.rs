//! Schedule a tiled LU factorisation on a CPU + accelerator node under
//! shrinking memory budgets, comparing the memory-oblivious HEFT baseline
//! with the memory-aware heuristics (the scenario behind Figure 14).
//!
//! Run with: `cargo run --release --example lu_factorization [tiles]`

use mals::prelude::*;
use mals::sim::memory_peaks;

fn main() {
    let tiles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let graph = lu_dag(tiles, &KernelCosts::table1());
    println!(
        "LU factorisation of a {tiles}x{tiles} tile matrix: {} tasks, {} edges",
        graph.n_tasks(),
        graph.n_edges()
    );

    // 12 CPU cores + 3 accelerators, like the paper's `mirage` node.
    let platform = Platform::mirage(f64::INFINITY, f64::INFINITY);

    // Memory-oblivious baseline: how much memory would HEFT need?
    let heft = Heft::new().schedule(&graph, &platform).unwrap();
    let peaks = memory_peaks(&graph, &platform, &heft);
    println!(
        "HEFT (no memory constraint): makespan = {:.0} ms, needs {:.0} tiles of CPU memory and {:.0} tiles of accelerator memory\n",
        heft.makespan(),
        peaks.blue,
        peaks.red
    );

    println!("{:>10} {:>14} {:>14}", "tiles", "MemHEFT", "MemMinMin");
    let full = peaks.max();
    for fraction in [1.0, 0.8, 0.6, 0.5, 0.4, 0.3] {
        let budget = (full * fraction).round();
        let bounded = platform.with_memory_bounds(budget, budget);
        let cell = |s: &dyn Scheduler| match s.schedule(&graph, &bounded) {
            Ok(schedule) => format!("{:.0} ms", schedule.makespan()),
            Err(ScheduleError::Infeasible { .. }) => "infeasible".to_string(),
            Err(e) => panic!("{e}"),
        };
        println!(
            "{:>10} {:>14} {:>14}",
            budget,
            cell(&MemHeft::new()),
            cell(&MemMinMin::new())
        );
    }
    println!("\nEach row halves nothing magically: smaller budgets trade memory for time,");
    println!("and below a point only MemHEFT (which follows the critical path) still succeeds.");
}
