//! Schedule a workload through the solver engine and print a full execution
//! report: Gantt chart, per-processor utilisation, memory occupancy and
//! transfer statistics — plus the JSON `SolveReport` of the same run, the
//! shape the `schedule` binary serves.
//!
//! Run with: `cargo run --release --example execution_report [tiles]`

use mals::prelude::*;
use mals::sim::replay::{execution_stats, render_stats};
use mals::sim::{gantt, memory_peaks};

fn main() {
    let tiles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let graph = cholesky_dag(tiles, &KernelCosts::table1());
    println!(
        "Cholesky {tiles}x{tiles}: {} tasks ({} kernels), {} edges\n",
        graph.n_tasks(),
        mals::gen::linalg::kernel_count(&graph),
        graph.n_edges()
    );
    println!("graph statistics:\n{}\n", mals::dag::graph_stats(&graph));

    // Budget: 60% of what memory-oblivious HEFT would use.
    let open = Platform::mirage(f64::INFINITY, f64::INFINITY);
    let engine = mals::exact::engine(EngineConfig::default());
    let heft = engine
        .solve("heft", &graph, &open)
        .unwrap()
        .schedule
        .unwrap();
    let budget = (memory_peaks(&graph, &open, &heft).max() * 0.6).ceil();
    let platform = Platform::mirage(budget, budget);
    println!("memory budget: {budget} tiles per side (60% of HEFT's footprint)\n");

    for solver in ["memheft", "memminmin"] {
        println!("=== {solver} ===");
        match engine.solve(solver, &graph, &platform).unwrap().schedule {
            Some(schedule) => {
                let report = validate(&graph, &platform, &schedule);
                assert!(report.is_valid(), "{:?}", report.errors);
                let stats = execution_stats(&graph, &platform, &schedule);
                print!("{}", render_stats(&stats));
                if graph.n_tasks() <= 60 {
                    println!("{}", gantt::render_gantt(&graph, &platform, &schedule, 72));
                }
            }
            None => println!("failed: infeasible within the memory bounds"),
        }
        println!();
    }

    // The same run through the service surface: a JSON report carrying the
    // schedule, the validation verdict and the provenance stamp.
    let request = SolveRequest::new(graph, platform, "memheft");
    let report = Service::with_engine(engine).handle(&request);
    println!(
        "service report: solver={} status={} makespan={} valid={:?} wall={:.2}ms",
        report.solver,
        report.status,
        report.makespan.unwrap_or(f64::NAN),
        report.valid,
        report.wall_time_ms
    );
}
