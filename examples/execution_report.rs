//! Schedule a workload and print a full execution report: Gantt chart,
//! per-processor utilisation, memory occupancy and transfer statistics.
//!
//! Run with: `cargo run --release --example execution_report [tiles]`

use mals::prelude::*;
use mals::sim::replay::{execution_stats, render_stats};
use mals::sim::{gantt, memory_peaks};

fn main() {
    let tiles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let graph = cholesky_dag(tiles, &KernelCosts::table1());
    println!(
        "Cholesky {tiles}x{tiles}: {} tasks ({} kernels), {} edges\n",
        graph.n_tasks(),
        mals::gen::linalg::kernel_count(&graph),
        graph.n_edges()
    );
    println!("graph statistics:\n{}\n", mals::dag::graph_stats(&graph));

    // Budget: 60% of what memory-oblivious HEFT would use.
    let open = Platform::mirage(f64::INFINITY, f64::INFINITY);
    let heft = Heft::new().schedule(&graph, &open).unwrap();
    let budget = (memory_peaks(&graph, &open, &heft).max() * 0.6).ceil();
    let platform = Platform::mirage(budget, budget);
    println!("memory budget: {budget} tiles per side (60% of HEFT's footprint)\n");

    for scheduler in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
        println!("=== {} ===", scheduler.name());
        match scheduler.schedule(&graph, &platform) {
            Ok(schedule) => {
                let report = validate(&graph, &platform, &schedule);
                assert!(report.is_valid(), "{:?}", report.errors);
                let stats = execution_stats(&graph, &platform, &schedule);
                print!("{}", render_stats(&stats));
                if graph.n_tasks() <= 60 {
                    println!("{}", gantt::render_gantt(&graph, &platform, &schedule, 72));
                }
            }
            Err(e) => println!("failed: {e}"),
        }
        println!();
    }
}
