//! Dual-memory hybrid platform model.
//!
//! The paper targets a node made of two pools of identical processors, each
//! pool attached to its own memory (Figure 1 of the paper):
//!
//! * `P1` **blue** processors sharing the blue memory of capacity `M⁽ᵇˡᵘᵉ⁾`
//!   (think: the multicore CPU and its RAM), and
//! * `P2` **red** processors sharing the red memory of capacity `M⁽ʳᵉᵈ⁾`
//!   (think: the GPU/FPGA accelerator and its device memory).
//!
//! This crate describes such platforms ([`Platform`], [`Memory`]) and
//! provides the two bookkeeping structures that every scheduler in the
//! workspace shares:
//!
//! * [`ProcessorState`] — per-processor earliest-availability times, and
//! * [`MemoryState`] — per-memory `free_mem(t)` staircase profiles with the
//!   reservation / release operations of the paper's memory model.

#![warn(missing_docs)]

pub mod mem_state;
pub mod memory;
pub mod platform;
pub mod proc_state;

pub use mem_state::MemoryState;
pub use memory::Memory;
pub use platform::{Platform, PlatformError, ProcId};
pub use proc_state::ProcessorState;
