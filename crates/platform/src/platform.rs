//! Description of a dual-memory platform.

use crate::memory::Memory;

/// Index of a processor. Processors `0..P1` are blue, `P1..P1+P2` are red
/// (0-based version of the paper's `1..=P1` / `P1+1..=P1+P2` convention).
pub type ProcId = usize;

/// Errors raised when constructing an invalid platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// At least one processor of each colour is required.
    NoProcessors,
    /// Memory capacities must be non-negative and not NaN.
    InvalidMemoryBound,
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::NoProcessors => {
                write!(
                    f,
                    "a dual-memory platform needs at least one processor of each colour"
                )
            }
            PlatformError::InvalidMemoryBound => write!(f, "memory bounds must be non-negative"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// A dual-memory platform: `P1` blue processors sharing `M⁽ᵇˡᵘᵉ⁾` and `P2`
/// red processors sharing `M⁽ʳᵉᵈ⁾` (Figure 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of blue (CPU-side) processors, `P1 ≥ 1`.
    pub blue_procs: usize,
    /// Number of red (accelerator-side) processors, `P2 ≥ 1`.
    pub red_procs: usize,
    /// Capacity of the blue memory, `M⁽ᵇˡᵘᵉ⁾` (may be `f64::INFINITY`).
    pub mem_blue: f64,
    /// Capacity of the red memory, `M⁽ʳᵉᵈ⁾` (may be `f64::INFINITY`).
    pub mem_red: f64,
}

impl Platform {
    /// Builds a platform, validating the parameters.
    pub fn new(
        blue_procs: usize,
        red_procs: usize,
        mem_blue: f64,
        mem_red: f64,
    ) -> Result<Self, PlatformError> {
        if blue_procs == 0 || red_procs == 0 {
            return Err(PlatformError::NoProcessors);
        }
        if mem_blue.is_nan() || mem_red.is_nan() || mem_blue < 0.0 || mem_red < 0.0 {
            return Err(PlatformError::InvalidMemoryBound);
        }
        Ok(Platform {
            blue_procs,
            red_procs,
            mem_blue,
            mem_red,
        })
    }

    /// The minimal platform of the paper's small experiments: one blue and
    /// one red processor (`P1 = P2 = 1`) with the given memory bounds.
    pub fn single_pair(mem_blue: f64, mem_red: f64) -> Self {
        Platform {
            blue_procs: 1,
            red_procs: 1,
            mem_blue,
            mem_red,
        }
    }

    /// A platform shaped like the *mirage* node used for the linear-algebra
    /// experiments: 12 CPU cores and 3 GPUs, with the given memory bounds
    /// expressed in number of tiles.
    pub fn mirage(mem_blue: f64, mem_red: f64) -> Self {
        Platform {
            blue_procs: 12,
            red_procs: 3,
            mem_blue,
            mem_red,
        }
    }

    /// Total number of processors `P1 + P2`.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.blue_procs + self.red_procs
    }

    /// Number of processors attached to memory `µ`.
    #[inline]
    pub fn procs_on(&self, mem: Memory) -> usize {
        match mem {
            Memory::Blue => self.blue_procs,
            Memory::Red => self.red_procs,
        }
    }

    /// The processor indices attached to memory `µ`.
    pub fn proc_range(&self, mem: Memory) -> std::ops::Range<ProcId> {
        match mem {
            Memory::Blue => 0..self.blue_procs,
            Memory::Red => self.blue_procs..self.n_procs(),
        }
    }

    /// The memory a processor operates on.
    #[inline]
    pub fn memory_of(&self, proc: ProcId) -> Memory {
        debug_assert!(proc < self.n_procs(), "processor index out of range");
        if proc < self.blue_procs {
            Memory::Blue
        } else {
            Memory::Red
        }
    }

    /// Capacity of memory `µ`.
    #[inline]
    pub fn memory_bound(&self, mem: Memory) -> f64 {
        match mem {
            Memory::Blue => self.mem_blue,
            Memory::Red => self.mem_red,
        }
    }

    /// Returns a copy of the platform with new memory bounds (used by the
    /// memory-sweep experiment drivers).
    pub fn with_memory_bounds(&self, mem_blue: f64, mem_red: f64) -> Self {
        Platform {
            mem_blue,
            mem_red,
            ..self.clone()
        }
    }

    /// Returns a copy of the platform with both memories unbounded — the
    /// platform the memory-oblivious HEFT / MinMin baselines schedule on.
    pub fn unbounded(&self) -> Self {
        self.with_memory_bounds(f64::INFINITY, f64::INFINITY)
    }

    /// Returns `true` if both memories are unbounded.
    pub fn is_unbounded(&self) -> bool {
        self.mem_blue.is_infinite() && self.mem_red.is_infinite()
    }

    /// Serialises the platform to the JSON shape of the service surface.
    /// Unbounded memories (`+∞` has no JSON spelling) are encoded as `null`.
    pub fn to_json(&self) -> mals_util::Json {
        use mals_util::Json;
        let mem = |capacity: f64| {
            if capacity.is_infinite() {
                Json::Null
            } else {
                Json::Num(capacity)
            }
        };
        Json::obj([
            ("blue_procs", Json::Num(self.blue_procs as f64)),
            ("red_procs", Json::Num(self.red_procs as f64)),
            ("mem_blue", mem(self.mem_blue)),
            ("mem_red", mem(self.mem_red)),
        ])
    }

    /// Parses the JSON shape produced by [`Platform::to_json`] (a `null` or
    /// absent memory capacity means unbounded), validating the parameters.
    pub fn from_json(json: &mals_util::Json) -> Result<Self, PlatformError> {
        use mals_util::Json;
        let procs = |key: &str| {
            json.get(key)
                .and_then(Json::as_usize)
                .ok_or(PlatformError::NoProcessors)
        };
        let mem = |key: &str| match json.get(key) {
            None | Some(Json::Null) => Ok(f64::INFINITY),
            Some(value) => value.as_f64().ok_or(PlatformError::InvalidMemoryBound),
        };
        Platform::new(
            procs("blue_procs")?,
            procs("red_procs")?,
            mem("mem_blue")?,
            mem("mem_red")?,
        )
    }
}

impl Default for Platform {
    /// A single blue / single red processor pair with unbounded memories.
    fn default() -> Self {
        Platform::single_pair(f64::INFINITY, f64::INFINITY)
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} blue procs (M={}), {} red procs (M={})",
            self.blue_procs, self.mem_blue, self.red_procs, self.mem_red
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Platform::new(1, 1, 10.0, 10.0).is_ok());
        assert_eq!(
            Platform::new(0, 1, 10.0, 10.0),
            Err(PlatformError::NoProcessors)
        );
        assert_eq!(
            Platform::new(1, 0, 10.0, 10.0),
            Err(PlatformError::NoProcessors)
        );
        assert_eq!(
            Platform::new(1, 1, -1.0, 10.0),
            Err(PlatformError::InvalidMemoryBound)
        );
        assert_eq!(
            Platform::new(1, 1, 1.0, f64::NAN),
            Err(PlatformError::InvalidMemoryBound)
        );
        assert!(Platform::new(1, 1, f64::INFINITY, 0.0).is_ok());
    }

    #[test]
    fn processor_to_memory_mapping() {
        let p = Platform::new(3, 2, 10.0, 5.0).unwrap();
        assert_eq!(p.n_procs(), 5);
        assert_eq!(p.memory_of(0), Memory::Blue);
        assert_eq!(p.memory_of(2), Memory::Blue);
        assert_eq!(p.memory_of(3), Memory::Red);
        assert_eq!(p.memory_of(4), Memory::Red);
        assert_eq!(p.proc_range(Memory::Blue), 0..3);
        assert_eq!(p.proc_range(Memory::Red), 3..5);
        assert_eq!(p.procs_on(Memory::Blue), 3);
        assert_eq!(p.procs_on(Memory::Red), 2);
    }

    #[test]
    fn memory_bounds_and_sweeps() {
        let p = Platform::new(1, 1, 10.0, 20.0).unwrap();
        assert_eq!(p.memory_bound(Memory::Blue), 10.0);
        assert_eq!(p.memory_bound(Memory::Red), 20.0);
        let swept = p.with_memory_bounds(4.0, 4.0);
        assert_eq!(swept.memory_bound(Memory::Blue), 4.0);
        assert_eq!(swept.blue_procs, p.blue_procs);
        assert!(!p.is_unbounded());
        assert!(p.unbounded().is_unbounded());
    }

    #[test]
    fn presets() {
        let m = Platform::mirage(100.0, 50.0);
        assert_eq!(m.blue_procs, 12);
        assert_eq!(m.red_procs, 3);
        let s = Platform::single_pair(5.0, 5.0);
        assert_eq!(s.n_procs(), 2);
        let d = Platform::default();
        assert!(d.is_unbounded());
    }

    #[test]
    fn json_roundtrip_preserves_bounds_and_infinity() {
        for platform in [
            Platform::new(3, 2, 10.0, 5.5).unwrap(),
            Platform::mirage(100.0, 50.0),
            Platform::default(), // unbounded → null capacities
            Platform::single_pair(f64::INFINITY, 4.0),
        ] {
            let json = platform.to_json();
            assert_eq!(Platform::from_json(&json).unwrap(), platform);
            let text = json.to_compact();
            let reparsed = mals_util::Json::parse(&text).unwrap();
            assert_eq!(Platform::from_json(&reparsed).unwrap(), platform);
        }
        // Absent capacities mean unbounded.
        let sparse = mals_util::Json::parse(r#"{"blue_procs": 1, "red_procs": 1}"#).unwrap();
        assert!(Platform::from_json(&sparse).unwrap().is_unbounded());
        // Invalid documents are rejected through the normal validation.
        let bad = mals_util::Json::parse(r#"{"blue_procs": 0, "red_procs": 1}"#).unwrap();
        assert_eq!(Platform::from_json(&bad), Err(PlatformError::NoProcessors));
        let bad_mem =
            mals_util::Json::parse(r#"{"blue_procs": 1, "red_procs": 1, "mem_blue": "x"}"#)
                .unwrap();
        assert_eq!(
            Platform::from_json(&bad_mem),
            Err(PlatformError::InvalidMemoryBound)
        );
    }

    #[test]
    fn display_contains_counts() {
        let p = Platform::new(2, 3, 7.0, 8.0).unwrap();
        let s = p.to_string();
        assert!(s.contains("2 blue"));
        assert!(s.contains("3 red"));
    }
}
