//! Per-processor availability tracking for list schedulers.

use crate::memory::Memory;
use crate::platform::{Platform, ProcId};

/// Tracks, for every processor, the completion time of the last task assigned
/// to it (`avail[proc]` in the paper's pseudo-code).
///
/// The list schedulers never insert tasks into idle gaps (non-insertion-based
/// HEFT, as in the paper), so a single scalar per processor is sufficient.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorState {
    blue_procs: usize,
    avail: Vec<f64>,
}

impl ProcessorState {
    /// Creates the state for `platform`, with every processor available at
    /// time 0.
    pub fn new(platform: &Platform) -> Self {
        ProcessorState {
            blue_procs: platform.blue_procs,
            avail: vec![0.0; platform.n_procs()],
        }
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.avail.len()
    }

    /// Availability time of a processor.
    #[inline]
    pub fn avail(&self, proc: ProcId) -> f64 {
        self.avail[proc]
    }

    /// The processor indices attached to memory `µ`.
    fn proc_range(&self, mem: Memory) -> std::ops::Range<ProcId> {
        match mem {
            Memory::Blue => 0..self.blue_procs,
            Memory::Red => self.blue_procs..self.avail.len(),
        }
    }

    /// `resource_EST⁽µ⁾`: the earliest time at which *some* processor of
    /// memory `µ` is available.
    pub fn earliest_available(&self, mem: Memory) -> f64 {
        self.proc_range(mem)
            .map(|p| self.avail[p])
            .fold(f64::INFINITY, f64::min)
    }

    /// Selects the processor of memory `µ` on which a task starting at
    /// `start` wastes the least idle time, i.e. the available processor with
    /// the largest `avail ≤ start` (the paper's "processor that minimizes
    /// `EST(i, µ) − avail_proc(p)`").
    ///
    /// Returns `None` if no processor of `µ` is available by `start` (cannot
    /// happen when `start ≥ earliest_available(µ)`).
    pub fn best_proc(&self, mem: Memory, start: f64) -> Option<ProcId> {
        self.proc_range(mem)
            .filter(|&p| self.avail[p] <= start + mals_util::EPSILON)
            .max_by(|&a, &b| self.avail[a].total_cmp(&self.avail[b]))
    }

    /// Marks `proc` as busy until `finish`.
    ///
    /// # Panics
    /// Panics (in debug builds) if this would move the availability backwards
    /// in a way that overlaps the previously assigned task.
    pub fn assign(&mut self, proc: ProcId, finish: f64) {
        debug_assert!(
            finish + mals_util::EPSILON >= self.avail[proc],
            "assignment finishing at {finish} overlaps previous availability {}",
            self.avail[proc]
        );
        self.avail[proc] = self.avail[proc].max(finish);
    }

    /// The latest availability over all processors — the makespan of the
    /// partial schedule restricted to already-assigned tasks.
    pub fn max_avail(&self) -> f64 {
        self.avail.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform_3_2() -> Platform {
        Platform::new(3, 2, 100.0, 100.0).unwrap()
    }

    #[test]
    fn initial_state_all_zero() {
        let s = ProcessorState::new(&platform_3_2());
        assert_eq!(s.n_procs(), 5);
        assert_eq!(s.earliest_available(Memory::Blue), 0.0);
        assert_eq!(s.earliest_available(Memory::Red), 0.0);
        assert_eq!(s.max_avail(), 0.0);
    }

    #[test]
    fn earliest_available_tracks_assignments() {
        let mut s = ProcessorState::new(&platform_3_2());
        s.assign(0, 10.0);
        s.assign(1, 5.0);
        assert_eq!(s.earliest_available(Memory::Blue), 0.0); // proc 2 still free
        s.assign(2, 7.0);
        assert_eq!(s.earliest_available(Memory::Blue), 5.0);
        assert_eq!(s.earliest_available(Memory::Red), 0.0);
        s.assign(3, 3.0);
        s.assign(4, 4.0);
        assert_eq!(s.earliest_available(Memory::Red), 3.0);
        assert_eq!(s.max_avail(), 10.0);
    }

    #[test]
    fn best_proc_minimizes_idle_time() {
        let mut s = ProcessorState::new(&platform_3_2());
        s.assign(0, 10.0);
        s.assign(1, 6.0);
        s.assign(2, 2.0);
        // Task starting at t=7: procs 1 (avail 6) and 2 (avail 2) qualify;
        // proc 1 wastes 1 unit of idle time, proc 2 wastes 5.
        assert_eq!(s.best_proc(Memory::Blue, 7.0), Some(1));
        // Task starting at t=1: only proc... none was assigned below 1 except none.
        // Procs with avail <= 1: proc with avail 0? all were assigned. proc 2 avail=2 > 1.
        assert_eq!(s.best_proc(Memory::Blue, 1.0), None);
        // Red processors are untouched: either of them is acceptable.
        let red = s.best_proc(Memory::Red, 0.0).unwrap();
        assert!(red == 3 || red == 4);
    }

    #[test]
    fn best_proc_exact_availability_boundary() {
        let mut s = ProcessorState::new(&platform_3_2());
        s.assign(0, 5.0);
        s.assign(1, 5.0);
        s.assign(2, 5.0);
        // Start exactly at the availability time is allowed.
        assert!(s.best_proc(Memory::Blue, 5.0).is_some());
    }

    #[test]
    fn assign_is_monotone() {
        let mut s = ProcessorState::new(&platform_3_2());
        s.assign(4, 8.0);
        assert_eq!(s.avail(4), 8.0);
        s.assign(4, 12.0);
        assert_eq!(s.avail(4), 12.0);
    }

    #[test]
    fn single_pair_platform() {
        let p = Platform::single_pair(10.0, 10.0);
        let mut s = ProcessorState::new(&p);
        assert_eq!(s.n_procs(), 2);
        s.assign(0, 4.0);
        assert_eq!(s.earliest_available(Memory::Blue), 4.0);
        assert_eq!(s.earliest_available(Memory::Red), 0.0);
        assert_eq!(s.best_proc(Memory::Red, 0.0), Some(1));
    }
}
