//! The two memory types of a dual-memory platform.

/// One of the two memories (and, by extension, processor pools) of a
/// dual-memory platform.
///
/// Following the paper's colour convention: **blue** is the CPU-side memory
/// shared by the `P1` blue processors, **red** is the accelerator-side memory
/// shared by the `P2` red processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Memory {
    /// CPU-side memory (the paper's first memory, processors `1..=P1`).
    Blue,
    /// Accelerator-side memory (the paper's second memory, processors
    /// `P1+1..=P1+P2`).
    Red,
}

impl Memory {
    /// Both memories, in a fixed order (Blue then Red). Convenient for
    /// `for µ in Memory::BOTH` loops in the heuristics.
    pub const BOTH: [Memory; 2] = [Memory::Blue, Memory::Red];

    /// The other memory.
    #[inline]
    pub fn other(self) -> Memory {
        match self {
            Memory::Blue => Memory::Red,
            Memory::Red => Memory::Blue,
        }
    }

    /// A stable index (Blue = 0, Red = 1) for array-based lookup tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Memory::Blue => 0,
            Memory::Red => 1,
        }
    }

    /// Inverse of [`Memory::index`].
    ///
    /// # Panics
    /// Panics if `index > 1`.
    #[inline]
    pub fn from_index(index: usize) -> Memory {
        match index {
            0 => Memory::Blue,
            1 => Memory::Red,
            _ => panic!("memory index out of range: {index}"),
        }
    }

    /// Returns `true` for the blue (CPU-side) memory.
    #[inline]
    pub fn is_blue(self) -> bool {
        matches!(self, Memory::Blue)
    }
}

impl std::fmt::Display for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Memory::Blue => write!(f, "blue"),
            Memory::Red => write!(f, "red"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for m in Memory::BOTH {
            assert_eq!(m.other().other(), m);
            assert_ne!(m.other(), m);
        }
    }

    #[test]
    fn index_roundtrip() {
        for m in Memory::BOTH {
            assert_eq!(Memory::from_index(m.index()), m);
        }
        assert_eq!(Memory::Blue.index(), 0);
        assert_eq!(Memory::Red.index(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = Memory::from_index(2);
    }

    #[test]
    fn display() {
        assert_eq!(Memory::Blue.to_string(), "blue");
        assert_eq!(Memory::Red.to_string(), "red");
    }

    #[test]
    fn is_blue() {
        assert!(Memory::Blue.is_blue());
        assert!(!Memory::Red.is_blue());
    }
}
