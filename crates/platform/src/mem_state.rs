//! Per-memory usage profiles (`free_mem⁽µ⁾(t)` in the paper).
//!
//! The memory-aware heuristics must know, for each memory and every instant
//! of the partial schedule, how much memory is already promised to files that
//! will be resident at that instant. [`MemoryState`] stores one usage
//! staircase per memory and exposes exactly the operations the heuristics
//! perform:
//!
//! * reserve space for a file on a time interval or from a time onwards,
//! * release space when a file is consumed, and
//! * find the earliest instant after which a given amount of space is
//!   available **for good** (the `task_mem_EST` / `comm_mem_EST` queries).

use crate::memory::Memory;
use crate::platform::Platform;
use mals_util::{Staircase, EPSILON};

/// Memory usage profiles for the two memories of a dual-memory platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryState {
    bounds: [f64; 2],
    used: [Staircase; 2],
}

impl MemoryState {
    /// Creates an empty state (no memory used) for `platform`.
    pub fn new(platform: &Platform) -> Self {
        MemoryState {
            bounds: [platform.mem_blue, platform.mem_red],
            used: [Staircase::constant(0.0), Staircase::constant(0.0)],
        }
    }

    /// Capacity of memory `µ` (possibly `+∞`).
    #[inline]
    pub fn bound(&self, mem: Memory) -> f64 {
        self.bounds[mem.index()]
    }

    /// Amount of memory `µ` in use at time `t`.
    #[inline]
    pub fn used_at(&self, mem: Memory, t: f64) -> f64 {
        self.used[mem.index()].value_at(t)
    }

    /// Amount of memory `µ` still free at time `t` (`+∞` for an unbounded
    /// memory).
    #[inline]
    pub fn free_at(&self, mem: Memory, t: f64) -> f64 {
        self.bound(mem) - self.used_at(mem, t)
    }

    /// Reserves `amount` units of memory `µ` from time `t` onwards
    /// (a file produced at `t` whose consumer is not scheduled yet).
    pub fn reserve_from(&mut self, mem: Memory, t: f64, amount: f64) {
        if amount != 0.0 {
            self.used[mem.index()].add_from(t, amount);
        }
    }

    /// Reserves `amount` units of memory `µ` on `[t1, t2)` (a file that is
    /// known to be consumed at `t2`, e.g. an input file of the task being
    /// scheduled, or a file in transit during a cross-memory copy).
    pub fn reserve_range(&mut self, mem: Memory, t1: f64, t2: f64, amount: f64) {
        if amount != 0.0 {
            self.used[mem.index()].add_range(t1, t2, amount);
        }
    }

    /// Releases `amount` units of memory `µ` from time `t` onwards (a file
    /// reserved with [`MemoryState::reserve_from`] whose consumer has now
    /// been scheduled to complete at `t`).
    pub fn release_from(&mut self, mem: Memory, t: f64, amount: f64) {
        if amount != 0.0 {
            self.used[mem.index()].add_from(t, -amount);
        }
    }

    /// Earliest time `t ≥ t_min` such that `amount` extra units fit in memory
    /// `µ` at every instant from `t` on. Returns `None` when the requirement
    /// can never be satisfied (the memory is permanently too full, or
    /// `amount` exceeds the capacity).
    pub fn earliest_fit(&self, mem: Memory, t_min: f64, amount: f64) -> Option<f64> {
        let bound = self.bound(mem);
        if amount <= EPSILON || bound.is_infinite() {
            return Some(t_min.max(0.0));
        }
        if amount > bound + EPSILON {
            return None;
        }
        self.used[mem.index()].earliest_sustained_le(t_min, bound - amount)
    }

    /// Returns `true` if `amount` extra units fit in `µ` at every instant
    /// from `t_min` on.
    pub fn fits(&self, mem: Memory, t_min: f64, amount: f64) -> bool {
        match self.earliest_fit(mem, t_min, amount) {
            Some(t) => t <= t_min + EPSILON,
            None => false,
        }
    }

    /// Peak usage of memory `µ` over the whole horizon.
    pub fn peak_usage(&self, mem: Memory) -> f64 {
        self.used[mem.index()].max_value()
    }

    /// Checks the internal invariants: usage is never negative and never
    /// exceeds the capacity (up to the shared tolerance).
    pub fn check_invariants(&self) -> Result<(), String> {
        for mem in Memory::BOTH {
            let profile = &self.used[mem.index()];
            for (x, v) in profile.breakpoints() {
                if v < -EPSILON {
                    return Err(format!("{mem} memory usage is negative ({v}) at t={x}"));
                }
                if v > self.bound(mem) + EPSILON {
                    return Err(format!(
                        "{mem} memory usage {v} exceeds bound {} at t={x}",
                        self.bound(mem)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Read-only access to the usage profile of memory `µ` (for tracing and
    /// tests).
    pub fn usage_profile(&self, mem: Memory) -> &Staircase {
        &self.used[mem.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_util::approx_eq;

    fn bounded(blue: f64, red: f64) -> MemoryState {
        MemoryState::new(&Platform::single_pair(blue, red))
    }

    #[test]
    fn initial_state_is_empty() {
        let m = bounded(10.0, 20.0);
        assert_eq!(m.used_at(Memory::Blue, 0.0), 0.0);
        assert_eq!(m.free_at(Memory::Blue, 5.0), 10.0);
        assert_eq!(m.free_at(Memory::Red, 5.0), 20.0);
        assert_eq!(m.peak_usage(Memory::Blue), 0.0);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn reserve_and_release() {
        let mut m = bounded(10.0, 10.0);
        m.reserve_from(Memory::Blue, 2.0, 4.0);
        assert_eq!(m.used_at(Memory::Blue, 1.0), 0.0);
        assert_eq!(m.used_at(Memory::Blue, 3.0), 4.0);
        assert_eq!(m.free_at(Memory::Blue, 3.0), 6.0);
        m.release_from(Memory::Blue, 6.0, 4.0);
        assert_eq!(m.used_at(Memory::Blue, 7.0), 0.0);
        assert_eq!(m.peak_usage(Memory::Blue), 4.0);
        assert!(m.check_invariants().is_ok());
        // The red memory was never touched.
        assert_eq!(m.peak_usage(Memory::Red), 0.0);
    }

    #[test]
    fn reserve_range_is_transient() {
        let mut m = bounded(10.0, 10.0);
        m.reserve_range(Memory::Red, 3.0, 8.0, 6.0);
        assert_eq!(m.used_at(Memory::Red, 2.0), 0.0);
        assert_eq!(m.used_at(Memory::Red, 5.0), 6.0);
        assert_eq!(m.used_at(Memory::Red, 8.0), 0.0);
    }

    #[test]
    fn earliest_fit_waits_for_release() {
        let mut m = bounded(10.0, 10.0);
        m.reserve_range(Memory::Blue, 0.0, 6.0, 8.0); // 8 used until t=6
                                                      // Need 5: must wait until t=6.
        assert_eq!(m.earliest_fit(Memory::Blue, 0.0, 5.0), Some(6.0));
        // Need 2: fits right away.
        assert_eq!(m.earliest_fit(Memory::Blue, 0.0, 2.0), Some(0.0));
        assert!(m.fits(Memory::Blue, 0.0, 2.0));
        assert!(!m.fits(Memory::Blue, 0.0, 5.0));
        assert!(m.fits(Memory::Blue, 6.0, 5.0));
    }

    #[test]
    fn earliest_fit_never_when_over_capacity() {
        let m = bounded(10.0, 10.0);
        assert_eq!(m.earliest_fit(Memory::Blue, 0.0, 11.0), None);
        let mut m2 = bounded(10.0, 10.0);
        m2.reserve_from(Memory::Blue, 0.0, 7.0); // 7 used forever
        assert_eq!(m2.earliest_fit(Memory::Blue, 0.0, 5.0), None);
    }

    #[test]
    fn unbounded_memory_always_fits() {
        let m = bounded(f64::INFINITY, f64::INFINITY);
        assert_eq!(m.earliest_fit(Memory::Blue, 3.0, 1e12), Some(3.0));
        assert!(m.fits(Memory::Red, 0.0, 1e12));
    }

    #[test]
    fn zero_amount_always_fits() {
        let mut m = bounded(5.0, 5.0);
        m.reserve_from(Memory::Blue, 0.0, 5.0);
        assert_eq!(m.earliest_fit(Memory::Blue, 2.0, 0.0), Some(2.0));
    }

    #[test]
    fn invariant_violation_detected() {
        let mut m = bounded(5.0, 5.0);
        m.reserve_from(Memory::Blue, 0.0, 7.0);
        assert!(m.check_invariants().is_err());
        let mut m2 = bounded(5.0, 5.0);
        m2.release_from(Memory::Red, 0.0, 1.0);
        assert!(m2.check_invariants().is_err());
    }

    #[test]
    fn peak_usage_tracks_maximum() {
        let mut m = bounded(100.0, 100.0);
        m.reserve_range(Memory::Blue, 0.0, 10.0, 30.0);
        m.reserve_range(Memory::Blue, 5.0, 8.0, 50.0);
        assert!(approx_eq(m.peak_usage(Memory::Blue), 80.0));
    }
}
