//! Graph algorithms on task graphs.
//!
//! Everything the schedulers and generators need: topological orders
//! (Kahn's algorithm), reachability / ancestor sets, levels, longest
//! (critical) paths with arbitrary node and edge cost functions, and
//! transitive closure / reduction.

use crate::error::GraphError;
use crate::graph::TaskGraph;
use crate::ids::{EdgeId, TaskId};

/// Computes a topological order of the tasks (Kahn's algorithm).
///
/// Returns [`GraphError::Cycle`] if the graph has a dependency cycle; the
/// reported task is one of the tasks left with unresolved predecessors.
pub fn topological_order(g: &TaskGraph) -> Result<Vec<TaskId>, GraphError> {
    let n = g.n_tasks();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(TaskId::from_index(i))).collect();
    let mut queue: Vec<TaskId> = (0..n)
        .map(TaskId::from_index)
        .filter(|&t| in_deg[t.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let t = queue[head];
        head += 1;
        order.push(t);
        for c in g.children(t) {
            in_deg[c.index()] -= 1;
            if in_deg[c.index()] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != n {
        let culprit = (0..n)
            .map(TaskId::from_index)
            .find(|&t| in_deg[t.index()] > 0)
            .expect("cycle implies a task with remaining in-degree");
        return Err(GraphError::Cycle(culprit));
    }
    Ok(order)
}

/// Computes, for every task, its *level*: the length (in edges) of the
/// longest path from any source to that task. Sources have level 0.
///
/// # Panics
/// Panics if the graph has a cycle.
pub fn levels(g: &TaskGraph) -> Vec<usize> {
    let order = topological_order(g).expect("levels requires an acyclic graph");
    let mut level = vec![0usize; g.n_tasks()];
    for &t in &order {
        for c in g.children(t) {
            level[c.index()] = level[c.index()].max(level[t.index()] + 1);
        }
    }
    level
}

/// Returns the set of ancestors of `task` (tasks that must complete before
/// it), as a boolean membership vector indexed by task index. The task itself
/// is not included.
pub fn ancestors(g: &TaskGraph, task: TaskId) -> Vec<bool> {
    let mut seen = vec![false; g.n_tasks()];
    let mut stack: Vec<TaskId> = g.parents(task).collect();
    while let Some(t) = stack.pop() {
        if !seen[t.index()] {
            seen[t.index()] = true;
            stack.extend(g.parents(t));
        }
    }
    seen
}

/// Returns the set of descendants of `task` as a boolean membership vector.
/// The task itself is not included.
pub fn descendants(g: &TaskGraph, task: TaskId) -> Vec<bool> {
    let mut seen = vec![false; g.n_tasks()];
    let mut stack: Vec<TaskId> = g.children(task).collect();
    while let Some(t) = stack.pop() {
        if !seen[t.index()] {
            seen[t.index()] = true;
            stack.extend(g.children(t));
        }
    }
    seen
}

/// Returns `true` if there is a directed path from `from` to `to`
/// (`from == to` counts as reachable).
pub fn is_reachable(g: &TaskGraph, from: TaskId, to: TaskId) -> bool {
    if from == to {
        return true;
    }
    descendants(g, from)[to.index()]
}

/// Dense transitive closure as a bitset matrix: `closure[i]` has bit `j` set
/// iff there is a directed path from task `i` to task `j` (including `i == j`).
///
/// Uses one `u64` word per 64 tasks; suitable for the graph sizes used in the
/// paper's experiments (up to a few thousand tasks).
pub fn transitive_closure(g: &TaskGraph) -> Vec<Vec<u64>> {
    let n = g.n_tasks();
    let words = n.div_ceil(64);
    let mut closure = vec![vec![0u64; words]; n];
    let order = topological_order(g).expect("transitive closure requires an acyclic graph");
    // Process in reverse topological order so children are complete first.
    for &t in order.iter().rev() {
        let i = t.index();
        closure[i][i / 64] |= 1u64 << (i % 64);
        let children: Vec<usize> = g.children(t).map(|c| c.index()).collect();
        for c in children {
            // closure[i] |= closure[c]; split borrows via indices.
            let (a, b) = if i < c {
                let (lo, hi) = closure.split_at_mut(c);
                (&mut lo[i], &hi[0])
            } else {
                let (lo, hi) = closure.split_at_mut(i);
                (&mut hi[0], &lo[c])
            };
            for (wa, wb) in a.iter_mut().zip(b.iter()) {
                *wa |= *wb;
            }
        }
    }
    closure
}

/// Tests bit `j` in a bitset row produced by [`transitive_closure`].
#[inline]
pub fn closure_contains(row: &[u64], j: usize) -> bool {
    (row[j / 64] >> (j % 64)) & 1 == 1
}

/// Returns the edges that are *transitively redundant*: `(i, j)` such that a
/// path `i → ... → j` of length at least 2 exists. Removing them does not
/// change precedence constraints (but does change data files, so the
/// schedulers never do this — it is used by generators and analysis only).
pub fn redundant_edges(g: &TaskGraph) -> Vec<EdgeId> {
    let closure = transitive_closure(g);
    let mut redundant = Vec::new();
    for e in g.edge_ids() {
        let edge = g.edge(e);
        // Is dst reachable from src through some *other* child?
        let via_other = g
            .children(edge.src)
            .any(|c| c != edge.dst && closure_contains(&closure[c.index()], edge.dst.index()));
        if via_other {
            redundant.push(e);
        }
    }
    redundant
}

/// The result of a critical-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total length (sum of node and edge costs along the path).
    pub length: f64,
    /// The tasks on the path, in execution order.
    pub tasks: Vec<TaskId>,
}

/// Computes the longest path through the DAG where task `i` costs
/// `node_cost(i)` and edge `e` costs `edge_cost(e)`.
///
/// With `node_cost = min(W⁽¹⁾, W⁽²⁾)` and `edge_cost = 0` this is the
/// classical makespan lower bound; with mean costs it is the HEFT critical
/// path.
///
/// # Panics
/// Panics if the graph has a cycle. Returns a zero-length path for an empty
/// graph.
pub fn critical_path(
    g: &TaskGraph,
    node_cost: impl Fn(TaskId) -> f64,
    edge_cost: impl Fn(EdgeId) -> f64,
) -> CriticalPath {
    if g.is_empty() {
        return CriticalPath {
            length: 0.0,
            tasks: Vec::new(),
        };
    }
    let order = topological_order(g).expect("critical path requires an acyclic graph");
    let n = g.n_tasks();
    // dist[i] = longest path ending at i, including node_cost(i).
    let mut dist = vec![0.0f64; n];
    let mut pred: Vec<Option<TaskId>> = vec![None; n];
    for &t in &order {
        dist[t.index()] += node_cost(t);
        for &e in g.out_edges(t) {
            let edge = g.edge(e);
            let cand = dist[t.index()] + edge_cost(e);
            if cand > dist[edge.dst.index()] {
                dist[edge.dst.index()] = cand;
                pred[edge.dst.index()] = Some(t);
            }
        }
    }
    let (end, &length) = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty graph");
    let mut tasks = vec![TaskId::from_index(end)];
    while let Some(p) = pred[tasks.last().unwrap().index()] {
        tasks.push(p);
    }
    tasks.reverse();
    CriticalPath { length, tasks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn diamond() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 2.0, 1.0);
        let b = g.add_task("b", 3.0, 3.0);
        let c = g.add_task("c", 1.0, 5.0);
        let d = g.add_task("d", 2.0, 2.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(a, c, 1.0, 1.0).unwrap();
        g.add_edge(b, d, 1.0, 1.0).unwrap();
        g.add_edge(c, d, 1.0, 1.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, _) = diamond();
        let order = topological_order(&g).unwrap();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|t| t.index() == i).unwrap())
            .collect();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn topo_order_empty_graph() {
        let g = TaskGraph::new();
        assert!(topological_order(&g).unwrap().is_empty());
    }

    #[test]
    fn chain_topo_order_is_the_chain() {
        let mut g = TaskGraph::new();
        let t: Vec<TaskId> = (0..5)
            .map(|i| g.add_task(format!("t{i}"), 1.0, 1.0))
            .collect();
        for w in t.windows(2) {
            g.add_edge(w[0], w[1], 1.0, 1.0).unwrap();
        }
        assert_eq!(topological_order(&g).unwrap(), t);
    }

    #[test]
    fn levels_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let lv = levels(&g);
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[b.index()], 1);
        assert_eq!(lv[c.index()], 1);
        assert_eq!(lv[d.index()], 2);
    }

    #[test]
    fn ancestors_and_descendants() {
        let (g, [a, b, c, d]) = diamond();
        let anc_d = ancestors(&g, d);
        assert!(anc_d[a.index()] && anc_d[b.index()] && anc_d[c.index()]);
        assert!(!anc_d[d.index()]);
        let desc_a = descendants(&g, a);
        assert!(desc_a[b.index()] && desc_a[c.index()] && desc_a[d.index()]);
        assert!(!desc_a[a.index()]);
        let anc_a = ancestors(&g, a);
        assert!(anc_a.iter().all(|&x| !x));
    }

    #[test]
    fn reachability() {
        let (g, [a, b, c, d]) = diamond();
        assert!(is_reachable(&g, a, d));
        assert!(is_reachable(&g, a, a));
        assert!(!is_reachable(&g, b, c));
        assert!(!is_reachable(&g, d, a));
    }

    #[test]
    fn transitive_closure_diamond() {
        let (g, [a, b, c, d]) = diamond();
        let cl = transitive_closure(&g);
        assert!(closure_contains(&cl[a.index()], d.index()));
        assert!(closure_contains(&cl[a.index()], a.index()));
        assert!(!closure_contains(&cl[b.index()], c.index()));
        assert!(!closure_contains(&cl[d.index()], a.index()));
    }

    #[test]
    fn redundant_edge_detection() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        let c = g.add_task("c", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, c, 1.0, 1.0).unwrap();
        let shortcut = g.add_edge(a, c, 1.0, 1.0).unwrap();
        assert_eq!(redundant_edges(&g), vec![shortcut]);
    }

    #[test]
    fn no_redundant_edges_in_diamond() {
        let (g, _) = diamond();
        assert!(redundant_edges(&g).is_empty());
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, a, 1.0, 1.0).unwrap();
        assert!(matches!(topological_order(&g), Err(GraphError::Cycle(_))));
        assert!(g.validate().is_err());
    }

    #[test]
    fn critical_path_diamond_min_work() {
        let (g, [a, _b, c, d]) = diamond();
        // min works: a=1, b=3, c=1, d=2. Longest path a->b->d = 1+3+2 = 6.
        let cp = critical_path(&g, |t| g.task(t).min_work(), |_| 0.0);
        assert_eq!(cp.length, 6.0);
        assert_eq!(cp.tasks.first(), Some(&a));
        assert_eq!(cp.tasks.last(), Some(&d));
        // With edge costs the path through c may win: a=1,c=1,d=2 +2 edges of 10 = 24.
        let cp2 = critical_path(&g, |t| g.task(t).min_work(), |_| 10.0);
        assert_eq!(cp2.length, 26.0);
        let _ = c;
    }

    #[test]
    fn critical_path_single_task() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 5.0, 7.0);
        let cp = critical_path(&g, |t| g.task(t).mean_work(), |_| 0.0);
        assert_eq!(cp.length, 6.0);
        assert_eq!(cp.tasks, vec![a]);
    }

    #[test]
    fn critical_path_empty_graph() {
        let g = TaskGraph::new();
        let cp = critical_path(&g, |_| 1.0, |_| 1.0);
        assert_eq!(cp.length, 0.0);
        assert!(cp.tasks.is_empty());
    }

    #[test]
    fn closure_handles_more_than_64_tasks() {
        let mut g = TaskGraph::new();
        let tasks: Vec<TaskId> = (0..130)
            .map(|i| g.add_task(format!("t{i}"), 1.0, 1.0))
            .collect();
        for w in tasks.windows(2) {
            g.add_edge(w[0], w[1], 1.0, 1.0).unwrap();
        }
        let cl = transitive_closure(&g);
        assert!(closure_contains(&cl[0], 129));
        assert!(!closure_contains(&cl[129], 0));
        assert!(is_reachable(&g, tasks[0], tasks[129]));
    }
}
