//! DOT (Graphviz) export of task graphs.
//!
//! Used by the figure-reproduction binaries (`--dump-dot`) to reproduce the
//! DAG drawings of Figures 8 and 9 of the paper, and handy when debugging
//! generators.

use crate::graph::TaskGraph;

/// Options controlling the DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name used in the `digraph` header.
    pub name: String,
    /// Include `W⁽¹⁾ / W⁽²⁾` in node labels.
    pub show_work: bool,
    /// Include `F` and `C` in edge labels.
    pub show_edge_weights: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "taskgraph".to_string(),
            show_work: true,
            show_edge_weights: true,
        }
    }
}

/// Renders the graph in DOT format with default options.
pub fn to_dot(g: &TaskGraph) -> String {
    to_dot_with(g, &DotOptions::default())
}

/// Renders the graph in DOT format.
pub fn to_dot_with(g: &TaskGraph, opts: &DotOptions) -> String {
    let mut out = String::with_capacity(64 * (g.n_tasks() + g.n_edges()) + 64);
    out.push_str(&format!("digraph {} {{\n", sanitize(&opts.name)));
    out.push_str("  rankdir=TB;\n  node [shape=ellipse];\n");
    for t in g.task_ids() {
        let data = g.task(t);
        let label = if opts.show_work {
            format!("{}\\nW1={} W2={}", data.name, data.work_blue, data.work_red)
        } else {
            data.name.clone()
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\"];\n",
            t.index(),
            escape(&label)
        ));
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        if opts.show_edge_weights {
            out.push_str(&format!(
                "  n{} -> n{} [label=\"F={} C={}\"];\n",
                edge.src.index(),
                edge.dst.index(),
                edge.size,
                edge.comm_cost
            ));
        } else {
            out.push_str(&format!(
                "  n{} -> n{};\n",
                edge.src.index(),
                edge.dst.index()
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "taskgraph".to_string()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;

    fn small() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("A", 1.0, 2.0);
        let b = g.add_task("B", 3.0, 4.0);
        g.add_edge(a, b, 5.0, 6.0).unwrap();
        g
    }

    #[test]
    fn contains_nodes_and_edges() {
        let dot = to_dot(&small());
        assert!(dot.starts_with("digraph taskgraph {"));
        assert!(dot.contains("n0 [label=\"A\\nW1=1 W2=2\"]"));
        assert!(dot.contains("n1 [label=\"B\\nW1=3 W2=4\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"F=5 C=6\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn options_hide_weights() {
        let opts = DotOptions {
            name: "g".into(),
            show_work: false,
            show_edge_weights: false,
        };
        let dot = to_dot_with(&small(), &opts);
        assert!(dot.contains("n0 [label=\"A\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(!dot.contains("F="));
    }

    #[test]
    fn sanitizes_graph_name() {
        let opts = DotOptions {
            name: "my graph/1".into(),
            ..Default::default()
        };
        let dot = to_dot_with(&small(), &opts);
        assert!(dot.starts_with("digraph my_graph_1 {"));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let mut g = TaskGraph::new();
        g.add_task("say \"hi\"", 1.0, 1.0);
        let dot = to_dot(&g);
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_graph_renders() {
        let g = TaskGraph::new();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains('}'));
    }
}
