//! The task-graph data structure.
//!
//! [`TaskGraph`] is an arena-based DAG: tasks and edges live in flat vectors
//! and are referenced through [`TaskId`] / [`EdgeId`] indices, with
//! per-task incoming / outgoing adjacency lists. This layout keeps the hot
//! loops of the schedulers (EST evaluation over parents and children) free of
//! pointer chasing and hashing.

use crate::error::GraphError;
use crate::ids::{EdgeId, TaskId};

/// Per-task data: a human-readable name and the two processing times.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskData {
    /// Human-readable label (used in DOT exports and traces).
    pub name: String,
    /// Processing time `W⁽¹⁾` on a blue (CPU-side) processor.
    pub work_blue: f64,
    /// Processing time `W⁽²⁾` on a red (accelerator-side) processor.
    pub work_red: f64,
}

impl TaskData {
    /// Processing time on the resource selected by `blue`.
    #[inline]
    pub fn work_on(&self, blue: bool) -> f64 {
        if blue {
            self.work_blue
        } else {
            self.work_red
        }
    }

    /// Mean of the two processing times, used by the upward-rank priority.
    #[inline]
    pub fn mean_work(&self) -> f64 {
        0.5 * (self.work_blue + self.work_red)
    }

    /// The smaller of the two processing times (used by lower bounds).
    #[inline]
    pub fn min_work(&self) -> f64 {
        self.work_blue.min(self.work_red)
    }

    /// The larger of the two processing times.
    #[inline]
    pub fn max_work(&self) -> f64 {
        self.work_blue.max(self.work_red)
    }
}

/// Per-edge data: endpoints, file size and cross-memory transfer time.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeData {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// Size `F_{i,j}` of the file carried by this dependency.
    pub size: f64,
    /// Time `C_{i,j}` needed to copy the file across memories.
    pub comm_cost: f64,
}

/// A directed acyclic task graph with dual processing times and data files on
/// edges (the application model of Section 3 of the paper).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<TaskData>,
    edges: Vec<EdgeData>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Creates an empty graph with pre-allocated capacity.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(tasks),
            in_edges: Vec::with_capacity(tasks),
        }
    }

    /// Assembles a graph from already-validated parts (the
    /// [`crate::builder::GraphBuilder`] fast path).
    pub(crate) fn from_parts(
        tasks: Vec<TaskData>,
        edges: Vec<EdgeData>,
        out_edges: Vec<Vec<EdgeId>>,
        in_edges: Vec<Vec<EdgeId>>,
    ) -> Self {
        debug_assert_eq!(tasks.len(), out_edges.len());
        debug_assert_eq!(tasks.len(), in_edges.len());
        TaskGraph {
            tasks,
            edges,
            out_edges,
            in_edges,
        }
    }

    /// Number of tasks `|V|`.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task with processing times `work_blue` / `work_red` and returns
    /// its id.
    pub fn add_task(&mut self, name: impl Into<String>, work_blue: f64, work_red: f64) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(TaskData {
            name: name.into(),
            work_blue,
            work_red,
        });
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a dependency edge `src → dst` carrying a file of size `size` with
    /// cross-memory transfer time `comm_cost`.
    ///
    /// Rejects self loops, duplicate edges, unknown endpoints and negative
    /// weights. Adding an edge cannot create a cycle detection eagerly; call
    /// [`TaskGraph::validate`] (or any traversal) to check acyclicity.
    pub fn add_edge(
        &mut self,
        src: TaskId,
        dst: TaskId,
        size: f64,
        comm_cost: f64,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(src));
        }
        if dst.index() >= self.tasks.len() {
            return Err(GraphError::UnknownTask(dst));
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        if !(size.is_finite() && size >= 0.0 && comm_cost.is_finite() && comm_cost >= 0.0) {
            return Err(GraphError::InvalidEdgeWeight(src, dst));
        }
        if self.edge_between(src, dst).is_some() {
            return Err(GraphError::DuplicateEdge(src, dst));
        }
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeData {
            src,
            dst,
            size,
            comm_cost,
        });
        self.out_edges[src.index()].push(id);
        self.in_edges[dst.index()].push(id);
        Ok(id)
    }

    /// Returns the task data for `id`.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskData {
        &self.tasks[id.index()]
    }

    /// Returns a mutable reference to the task data for `id`.
    #[inline]
    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskData {
        &mut self.tasks[id.index()]
    }

    /// Returns the edge data for `id`.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &EdgeData {
        &self.edges[id.index()]
    }

    /// Returns a mutable reference to the edge data for `id`.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut EdgeData {
        &mut self.edges[id.index()]
    }

    /// Iterates over all task ids in arena order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// Iterates over all edge ids in arena order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Edges leaving `id` (files produced by `id`).
    #[inline]
    pub fn out_edges(&self, id: TaskId) -> &[EdgeId] {
        &self.out_edges[id.index()]
    }

    /// Edges entering `id` (files consumed by `id`).
    #[inline]
    pub fn in_edges(&self, id: TaskId) -> &[EdgeId] {
        &self.in_edges[id.index()]
    }

    /// Children (immediate successors) of `id`.
    pub fn children(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.out_edges[id.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].dst)
    }

    /// Parents (immediate predecessors) of `id`.
    pub fn parents(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.in_edges[id.index()]
            .iter()
            .map(move |&e| self.edges[e.index()].src)
    }

    /// Number of parents of `id`.
    #[inline]
    pub fn in_degree(&self, id: TaskId) -> usize {
        self.in_edges[id.index()].len()
    }

    /// Number of children of `id`.
    #[inline]
    pub fn out_degree(&self, id: TaskId) -> usize {
        self.out_edges[id.index()].len()
    }

    /// Returns the edge `src → dst` if it exists.
    pub fn edge_between(&self, src: TaskId, dst: TaskId) -> Option<EdgeId> {
        self.out_edges
            .get(src.index())?
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Tasks with no parents (graph entry points).
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.in_degree(t) == 0)
            .collect()
    }

    /// Tasks with no children (graph exit points).
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.out_degree(t) == 0)
            .collect()
    }

    /// Total size of the input files of `id` (`Σ_{j ∈ Parents(i)} F_{j,i}`).
    pub fn input_size(&self, id: TaskId) -> f64 {
        self.in_edges[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].size)
            .sum()
    }

    /// Total size of the output files of `id` (`Σ_{j ∈ Children(i)} F_{i,j}`).
    pub fn output_size(&self, id: TaskId) -> f64 {
        self.out_edges[id.index()]
            .iter()
            .map(|&e| self.edges[e.index()].size)
            .sum()
    }

    /// Memory requirement `MemReq(i)` of the paper: the memory hosting task
    /// `i` must simultaneously contain all its input and output files.
    pub fn mem_req(&self, id: TaskId) -> f64 {
        self.input_size(id) + self.output_size(id)
    }

    /// The largest `MemReq(i)` over all tasks — a trivial lower bound on the
    /// memory needed by *any* schedule that may run every task on either
    /// side.
    pub fn max_mem_req(&self) -> f64 {
        self.task_ids().map(|t| self.mem_req(t)).fold(0.0, f64::max)
    }

    /// Sum of all file sizes (an upper bound on any memory peak).
    pub fn total_file_size(&self) -> f64 {
        self.edges.iter().map(|e| e.size).sum()
    }

    /// Sum of blue processing times over all tasks.
    pub fn total_work_blue(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_blue).sum()
    }

    /// Sum of red processing times over all tasks.
    pub fn total_work_red(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_red).sum()
    }

    /// Sum of the smaller processing time of every task (used by makespan
    /// lower bounds).
    pub fn total_min_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.min_work()).sum()
    }

    /// Sum of all cross-memory communication costs.
    pub fn total_comm_cost(&self) -> f64 {
        self.edges.iter().map(|e| e.comm_cost).sum()
    }

    /// The `M_max` horizon of the ILP formulation:
    /// `Σ W⁽¹⁾ + Σ W⁽²⁾ + Σ C` — no valid schedule can exceed this makespan.
    pub fn makespan_horizon(&self) -> f64 {
        self.total_work_blue() + self.total_work_red() + self.total_comm_cost()
    }

    /// Structural validation: finite non-negative weights and acyclicity.
    pub fn validate(&self) -> Result<(), GraphError> {
        for id in self.task_ids() {
            let t = self.task(id);
            if !(t.work_blue.is_finite()
                && t.work_blue >= 0.0
                && t.work_red.is_finite()
                && t.work_red >= 0.0)
            {
                return Err(GraphError::InvalidWeight(id));
            }
        }
        // Acyclicity via Kahn's algorithm.
        crate::algo::topological_order(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the toy DAG D_ex of Figure 2 of the paper.
    pub(crate) fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    #[test]
    fn build_and_query_dex() {
        let (g, [t1, t2, t3, t4]) = dex();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.sources(), vec![t1]);
        assert_eq!(g.sinks(), vec![t4]);
        assert_eq!(g.children(t1).collect::<Vec<_>>(), vec![t2, t3]);
        assert_eq!(g.parents(t4).collect::<Vec<_>>(), vec![t2, t3]);
        assert_eq!(g.in_degree(t1), 0);
        assert_eq!(g.out_degree(t1), 2);
        assert_eq!(g.task(t1).work_blue, 3.0);
        assert_eq!(g.task(t1).work_red, 1.0);
    }

    #[test]
    fn mem_req_matches_paper_example() {
        let (g, [_, _, t3, _]) = dex();
        // MemReq(T3) = F_{1,3} + F_{3,4} = 2 + 2 = 4 (paper, Section 3.2).
        assert_eq!(g.mem_req(t3), 4.0);
    }

    #[test]
    fn input_output_sizes() {
        let (g, [t1, t2, _, t4]) = dex();
        assert_eq!(g.input_size(t1), 0.0);
        assert_eq!(g.output_size(t1), 3.0);
        assert_eq!(g.input_size(t2), 1.0);
        assert_eq!(g.output_size(t2), 1.0);
        assert_eq!(g.input_size(t4), 3.0);
        assert_eq!(g.output_size(t4), 0.0);
    }

    #[test]
    fn aggregate_quantities() {
        let (g, _) = dex();
        assert_eq!(g.total_work_blue(), 12.0);
        assert_eq!(g.total_work_red(), 7.0);
        assert_eq!(g.total_min_work(), 1.0 + 2.0 + 3.0 + 1.0);
        assert_eq!(g.total_comm_cost(), 4.0);
        assert_eq!(g.total_file_size(), 6.0);
        assert_eq!(g.makespan_horizon(), 12.0 + 7.0 + 4.0);
        assert_eq!(g.max_mem_req(), 4.0);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = TaskGraph::new();
        let t = g.add_task("a", 1.0, 1.0);
        assert_eq!(g.add_edge(t, t, 1.0, 1.0), Err(GraphError::SelfLoop(t)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        assert_eq!(
            g.add_edge(a, b, 2.0, 2.0),
            Err(GraphError::DuplicateEdge(a, b))
        );
    }

    #[test]
    fn rejects_unknown_task() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let ghost = TaskId::from_index(10);
        assert_eq!(
            g.add_edge(a, ghost, 1.0, 1.0),
            Err(GraphError::UnknownTask(ghost))
        );
        assert_eq!(
            g.add_edge(ghost, a, 1.0, 1.0),
            Err(GraphError::UnknownTask(ghost))
        );
    }

    #[test]
    fn rejects_negative_edge_weights() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        assert!(matches!(
            g.add_edge(a, b, -1.0, 1.0),
            Err(GraphError::InvalidEdgeWeight(_, _))
        ));
        assert!(matches!(
            g.add_edge(a, b, 1.0, f64::NAN),
            Err(GraphError::InvalidEdgeWeight(_, _))
        ));
    }

    #[test]
    fn validate_rejects_negative_work() {
        let mut g = TaskGraph::new();
        let t = g.add_task("a", -1.0, 1.0);
        assert_eq!(g.validate(), Err(GraphError::InvalidWeight(t)));
    }

    #[test]
    fn zero_cost_tasks_are_allowed() {
        // The linear-algebra generators insert zero-cost broadcast tasks.
        let mut g = TaskGraph::new();
        let a = g.add_task("broadcast", 0.0, 0.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 0.0, 0.0).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_between_lookup() {
        let (g, [t1, t2, t3, t4]) = dex();
        assert!(g.edge_between(t1, t2).is_some());
        assert!(g.edge_between(t2, t1).is_none());
        assert!(g.edge_between(t1, t4).is_none());
        let e = g.edge_between(t3, t4).unwrap();
        assert_eq!(g.edge(e).size, 2.0);
    }

    #[test]
    fn task_and_edge_mutation() {
        let (mut g, [t1, ..]) = dex();
        g.task_mut(t1).work_blue = 9.0;
        assert_eq!(g.task(t1).work_blue, 9.0);
        let e = g.edge_ids().next().unwrap();
        g.edge_mut(e).size = 5.0;
        assert_eq!(g.edge(e).size, 5.0);
    }

    #[test]
    fn work_on_and_mean() {
        let t = TaskData {
            name: "x".into(),
            work_blue: 3.0,
            work_red: 1.0,
        };
        assert_eq!(t.work_on(true), 3.0);
        assert_eq!(t.work_on(false), 1.0);
        assert_eq!(t.mean_work(), 2.0);
        assert_eq!(t.min_work(), 1.0);
        assert_eq!(t.max_work(), 3.0);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.sources(), Vec::<TaskId>::new());
        assert_eq!(g.max_mem_req(), 0.0);
        assert!(g.validate().is_ok());
    }
}
