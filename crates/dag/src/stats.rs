//! Structural statistics of task graphs.
//!
//! The experiment reports characterise each DAG set by a handful of numbers
//! (depth, width, degree distribution, communication-to-computation ratio,
//! memory pressure); this module computes them.

use crate::algo::levels;
use crate::graph::TaskGraph;

/// Summary statistics of one task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Number of edges.
    pub n_edges: usize,
    /// Number of source tasks (no parents).
    pub n_sources: usize,
    /// Number of sink tasks (no children).
    pub n_sinks: usize,
    /// Number of levels (longest path length in edges, plus one).
    pub depth: usize,
    /// Largest number of tasks on one level (a proxy for the available
    /// parallelism).
    pub max_width: usize,
    /// Mean number of parents per task.
    pub mean_in_degree: f64,
    /// Largest number of parents of any task.
    pub max_in_degree: usize,
    /// Total processing time on blue processors.
    pub total_work_blue: f64,
    /// Total processing time on red processors.
    pub total_work_red: f64,
    /// Mean acceleration factor `W_blue / W_red` over tasks with non-zero
    /// red time (how much the accelerator helps on average).
    pub mean_speedup: f64,
    /// Communication-to-computation ratio: total cross-memory transfer time
    /// over total mean computation time.
    pub ccr: f64,
    /// Largest single-task memory requirement `MemReq(i)`.
    pub max_mem_req: f64,
    /// Total size of all files (an upper bound on any memory peak).
    pub total_file_size: f64,
}

/// Computes the statistics of `graph`.
///
/// # Panics
/// Panics if the graph has a cycle.
pub fn graph_stats(graph: &TaskGraph) -> GraphStats {
    let n_tasks = graph.n_tasks();
    let n_edges = graph.n_edges();
    if n_tasks == 0 {
        return GraphStats {
            n_tasks: 0,
            n_edges: 0,
            n_sources: 0,
            n_sinks: 0,
            depth: 0,
            max_width: 0,
            mean_in_degree: 0.0,
            max_in_degree: 0,
            total_work_blue: 0.0,
            total_work_red: 0.0,
            mean_speedup: 0.0,
            ccr: 0.0,
            max_mem_req: 0.0,
            total_file_size: 0.0,
        };
    }
    let level_of = levels(graph);
    let depth = level_of.iter().copied().max().unwrap_or(0) + 1;
    let mut width_per_level = vec![0usize; depth];
    for &l in &level_of {
        width_per_level[l] += 1;
    }
    let max_width = width_per_level.into_iter().max().unwrap_or(0);

    let mut max_in_degree = 0usize;
    for t in graph.task_ids() {
        max_in_degree = max_in_degree.max(graph.in_degree(t));
    }

    let speedups: Vec<f64> = graph
        .task_ids()
        .map(|t| graph.task(t))
        .filter(|d| d.work_red > 0.0)
        .map(|d| d.work_blue / d.work_red)
        .collect();
    let mean_speedup = if speedups.is_empty() {
        0.0
    } else {
        speedups.iter().sum::<f64>() / speedups.len() as f64
    };

    let total_mean_work: f64 = graph.task_ids().map(|t| graph.task(t).mean_work()).sum();
    let ccr = if total_mean_work > 0.0 {
        graph.total_comm_cost() / total_mean_work
    } else {
        0.0
    };

    GraphStats {
        n_tasks,
        n_edges,
        n_sources: graph.sources().len(),
        n_sinks: graph.sinks().len(),
        depth,
        max_width,
        mean_in_degree: n_edges as f64 / n_tasks as f64,
        max_in_degree,
        total_work_blue: graph.total_work_blue(),
        total_work_red: graph.total_work_red(),
        mean_speedup,
        ccr,
        max_mem_req: graph.max_mem_req(),
        total_file_size: graph.total_file_size(),
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} tasks, {} edges ({} sources, {} sinks), depth {}, max width {}",
            self.n_tasks, self.n_edges, self.n_sources, self.n_sinks, self.depth, self.max_width
        )?;
        writeln!(
            f,
            "in-degree: mean {:.2}, max {}; speedup x{:.1}; CCR {:.2}",
            self.mean_in_degree, self.max_in_degree, self.mean_speedup, self.ccr
        )?;
        write!(
            f,
            "memory: max MemReq {}, total files {}",
            self.max_mem_req, self.total_file_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dex() -> TaskGraph {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        g
    }

    #[test]
    fn stats_of_dex() {
        let s = graph_stats(&dex());
        assert_eq!(s.n_tasks, 4);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.n_sources, 1);
        assert_eq!(s.n_sinks, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_width, 2);
        assert_eq!(s.mean_in_degree, 1.0);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.total_work_blue, 12.0);
        assert_eq!(s.total_work_red, 7.0);
        // Speedups: 3, 1, 2, 1 -> mean 1.75.
        assert!((s.mean_speedup - 1.75).abs() < 1e-9);
        // CCR = 4 / 9.5.
        assert!((s.ccr - 4.0 / 9.5).abs() < 1e-9);
        assert_eq!(s.max_mem_req, 4.0);
        assert_eq!(s.total_file_size, 6.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = graph_stats(&TaskGraph::new());
        assert_eq!(s.n_tasks, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.mean_speedup, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let text = graph_stats(&dex()).to_string();
        assert!(text.contains("4 tasks"));
        assert!(text.contains("depth 3"));
        assert!(text.contains("CCR"));
    }

    #[test]
    fn zero_red_work_does_not_divide_by_zero() {
        let mut g = TaskGraph::new();
        g.add_task("a", 1.0, 0.0);
        let s = graph_stats(&g);
        assert_eq!(s.mean_speedup, 0.0);
        assert!(s.ccr.is_finite());
    }
}
