//! Error type for task-graph construction and validation.

use crate::ids::TaskId;

/// Errors reported while building or validating a [`crate::TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge would connect a task to itself.
    SelfLoop(TaskId),
    /// An edge between the two tasks already exists (the model allows a
    /// single file per task pair).
    DuplicateEdge(TaskId, TaskId),
    /// A task id does not belong to this graph.
    UnknownTask(TaskId),
    /// The graph contains a dependency cycle (so it is not a DAG); the
    /// payload is one task on the cycle.
    Cycle(TaskId),
    /// A task has a negative processing time or a non-finite value.
    InvalidWeight(TaskId),
    /// An edge has a negative file size or communication cost.
    InvalidEdgeWeight(TaskId, TaskId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SelfLoop(t) => write!(f, "self loop on task {t}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::UnknownTask(t) => write!(f, "unknown task {t}"),
            GraphError::Cycle(t) => write!(f, "dependency cycle involving task {t}"),
            GraphError::InvalidWeight(t) => write!(f, "invalid processing time on task {t}"),
            GraphError::InvalidEdgeWeight(a, b) => {
                write!(
                    f,
                    "invalid file size or communication cost on edge {a} -> {b}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let t = TaskId::from_index(1);
        let u = TaskId::from_index(2);
        assert!(GraphError::SelfLoop(t).to_string().contains("self loop"));
        assert!(GraphError::DuplicateEdge(t, u)
            .to_string()
            .contains("duplicate"));
        assert!(GraphError::Cycle(t).to_string().contains("cycle"));
        assert!(GraphError::UnknownTask(t).to_string().contains("unknown"));
    }
}
