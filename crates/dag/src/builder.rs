//! Flat, two-phase graph construction for large generated DAGs.
//!
//! [`TaskGraph::add_edge`] is the right API for hand-built graphs: it
//! validates every edge eagerly (duplicate detection by scanning the source's
//! adjacency list) and grows the per-task adjacency vectors one push at a
//! time. For generated workloads in the 10⁴–10⁵-task range both habits hurt:
//! duplicate scans make edge insertion `O(out-degree)`, and 2·|V| adjacency
//! vectors each reallocate several times.
//!
//! [`GraphBuilder`] accumulates tasks and edge records in flat vectors (CSR
//! style: just `(src, dst, size, comm)` rows) and assembles the final
//! [`TaskGraph`] in one pass: count the degrees, allocate every adjacency
//! list at its exact final capacity, fill. Validation (bounds, weights,
//! self-loops, duplicates) happens once, in `O(|V| + |E|)`, at
//! [`GraphBuilder::build`] time.
//!
//! A graph built this way is [`PartialEq`]-identical to one built
//! incrementally with the same task and edge order: edge ids are insertion
//! ids, and adjacency lists hold them in insertion order either way.

use crate::error::GraphError;
use crate::graph::{EdgeData, TaskData, TaskGraph};
use crate::ids::{EdgeId, TaskId};
use std::collections::HashSet;

/// Accumulates tasks and edges in flat storage; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    tasks: Vec<TaskData>,
    edges: Vec<EdgeData>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Creates an empty builder with pre-allocated capacity.
    pub fn with_capacity(tasks: usize, edges: usize) -> Self {
        GraphBuilder {
            tasks: Vec::with_capacity(tasks),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of tasks added so far.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edges added so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a task and returns its id (same contract as
    /// [`TaskGraph::add_task`]).
    pub fn add_task(&mut self, name: impl Into<String>, work_blue: f64, work_red: f64) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(TaskData {
            name: name.into(),
            work_blue,
            work_red,
        });
        id
    }

    /// Records a dependency edge `src → dst`. Validation is deferred to
    /// [`GraphBuilder::build`].
    pub fn add_edge(&mut self, src: TaskId, dst: TaskId, size: f64, comm_cost: f64) {
        self.edges.push(EdgeData {
            src,
            dst,
            size,
            comm_cost,
        });
    }

    /// Assembles the graph: validates every record with the rules of
    /// [`TaskGraph::add_edge`] (known endpoints, no self-loops, no duplicate
    /// edges, finite non-negative weights), then builds the adjacency lists
    /// at their exact final sizes. `O(|V| + |E|)`.
    ///
    /// Acyclicity is *not* checked here (matching the incremental API);
    /// call [`TaskGraph::validate`] for that.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        let n = self.tasks.len();
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(self.edges.len());
        let mut out_degree = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        for edge in &self.edges {
            if edge.src.index() >= n {
                return Err(GraphError::UnknownTask(edge.src));
            }
            if edge.dst.index() >= n {
                return Err(GraphError::UnknownTask(edge.dst));
            }
            if edge.src == edge.dst {
                return Err(GraphError::SelfLoop(edge.src));
            }
            if !(edge.size.is_finite()
                && edge.size >= 0.0
                && edge.comm_cost.is_finite()
                && edge.comm_cost >= 0.0)
            {
                return Err(GraphError::InvalidEdgeWeight(edge.src, edge.dst));
            }
            if !seen.insert((edge.src.index() as u32, edge.dst.index() as u32)) {
                return Err(GraphError::DuplicateEdge(edge.src, edge.dst));
            }
            out_degree[edge.src.index()] += 1;
            in_degree[edge.dst.index()] += 1;
        }
        let mut out_edges: Vec<Vec<EdgeId>> = out_degree
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        let mut in_edges: Vec<Vec<EdgeId>> = in_degree
            .iter()
            .map(|&d| Vec::with_capacity(d as usize))
            .collect();
        for (i, edge) in self.edges.iter().enumerate() {
            let id = EdgeId::from_index(i);
            out_edges[edge.src.index()].push(id);
            in_edges[edge.dst.index()].push(id);
        }
        Ok(TaskGraph::from_parts(
            self.tasks, self.edges, out_edges, in_edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incremental_reference() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 2.0);
        let b = g.add_task("b", 3.0, 4.0);
        let c = g.add_task("c", 5.0, 6.0);
        g.add_edge(a, b, 1.0, 0.5).unwrap();
        g.add_edge(a, c, 2.0, 0.25).unwrap();
        g.add_edge(b, c, 3.0, 0.75).unwrap();
        g
    }

    #[test]
    fn built_graph_equals_incremental_construction() {
        let mut builder = GraphBuilder::with_capacity(3, 3);
        let a = builder.add_task("a", 1.0, 2.0);
        let b = builder.add_task("b", 3.0, 4.0);
        let c = builder.add_task("c", 5.0, 6.0);
        builder.add_edge(a, b, 1.0, 0.5);
        builder.add_edge(a, c, 2.0, 0.25);
        builder.add_edge(b, c, 3.0, 0.75);
        let built = builder.build().unwrap();
        assert_eq!(built, incremental_reference());
    }

    #[test]
    fn rejects_what_add_edge_rejects() {
        let bad_endpoint = {
            let mut b = GraphBuilder::new();
            let a = b.add_task("a", 1.0, 1.0);
            b.add_edge(a, TaskId::from_index(9), 1.0, 1.0);
            b.build()
        };
        assert!(matches!(bad_endpoint, Err(GraphError::UnknownTask(_))));

        let self_loop = {
            let mut b = GraphBuilder::new();
            let a = b.add_task("a", 1.0, 1.0);
            b.add_edge(a, a, 1.0, 1.0);
            b.build()
        };
        assert!(matches!(self_loop, Err(GraphError::SelfLoop(_))));

        let duplicate = {
            let mut b = GraphBuilder::new();
            let a = b.add_task("a", 1.0, 1.0);
            let c = b.add_task("c", 1.0, 1.0);
            b.add_edge(a, c, 1.0, 1.0);
            b.add_edge(a, c, 2.0, 2.0);
            b.build()
        };
        assert!(matches!(duplicate, Err(GraphError::DuplicateEdge(_, _))));

        let negative = {
            let mut b = GraphBuilder::new();
            let a = b.add_task("a", 1.0, 1.0);
            let c = b.add_task("c", 1.0, 1.0);
            b.add_edge(a, c, -1.0, 1.0);
            b.build()
        };
        assert!(matches!(negative, Err(GraphError::InvalidEdgeWeight(_, _))));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn adjacency_capacity_is_exact() {
        let mut b = GraphBuilder::new();
        let hub = b.add_task("hub", 1.0, 1.0);
        let leaves: Vec<_> = (0..64)
            .map(|i| b.add_task(format!("l{i}"), 1.0, 1.0))
            .collect();
        for &leaf in &leaves {
            b.add_edge(hub, leaf, 1.0, 1.0);
        }
        let g = b.build().unwrap();
        assert_eq!(g.out_degree(hub), 64);
        for &leaf in &leaves {
            assert_eq!(g.in_degree(leaf), 1);
            assert_eq!(g.parents(leaf).next(), Some(hub));
        }
    }
}
