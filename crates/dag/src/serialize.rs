//! Plain-text and JSON serialisation of task graphs.
//!
//! Two formats are provided:
//!
//! * a tiny line-oriented format ("MTG" — MALS task graph) so DAG sets can
//!   be archived next to experiment results and re-loaded bit-for-bit,
//!   without pulling a serialisation framework into the workspace:
//!
//!   ```text
//!   # comment
//!   mtg 1
//!   task <id> <work_blue> <work_red> <name with spaces allowed>
//!   edge <src> <dst> <size> <comm_cost>
//!   ```
//!
//!   Task ids must be `0..n` in order (they are arena indices); edges may
//!   appear in any order after the tasks they reference.
//!
//! * a JSON tree ([`to_json`] / [`from_json`]) used by the solver-service
//!   request/report surface (`SolveRequest` embeds the graph):
//!
//!   ```json
//!   {"tasks": [{"name": "T1", "blue": 3.0, "red": 1.0}, …],
//!    "edges": [{"src": 0, "dst": 1, "size": 1.0, "comm": 1.0}, …]}
//!   ```

use crate::graph::TaskGraph;
use crate::ids::TaskId;
use mals_util::Json;

/// Errors raised while parsing the text or JSON formats.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The `mtg <version>` header is missing or unsupported.
    BadHeader,
    /// A line could not be parsed; the payload is the 1-based line number and
    /// a description.
    BadLine(usize, String),
    /// A JSON document does not describe a valid graph.
    Json(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or unsupported `mtg` header"),
            ParseError::BadLine(line, reason) => write!(f, "line {line}: {reason}"),
            ParseError::Json(reason) => write!(f, "bad graph JSON: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialises a graph to the MTG text format.
pub fn to_text(graph: &TaskGraph) -> String {
    let mut out = String::with_capacity(32 * (graph.n_tasks() + graph.n_edges()) + 16);
    out.push_str("mtg 1\n");
    for t in graph.task_ids() {
        let data = graph.task(t);
        out.push_str(&format!(
            "task {} {} {} {}\n",
            t.index(),
            data.work_blue,
            data.work_red,
            data.name
        ));
    }
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        out.push_str(&format!(
            "edge {} {} {} {}\n",
            edge.src.index(),
            edge.dst.index(),
            edge.size,
            edge.comm_cost
        ));
    }
    out
}

/// Parses a graph from the MTG text format.
pub fn from_text(text: &str) -> Result<TaskGraph, ParseError> {
    let mut graph = TaskGraph::new();
    let mut saw_header = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !saw_header {
            if line == "mtg 1" {
                saw_header = true;
                continue;
            }
            return Err(ParseError::BadHeader);
        }
        let mut parts = line.splitn(2, ' ');
        let keyword = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match keyword {
            "task" => {
                let mut fields = rest.splitn(4, ' ');
                let id: usize = parse_field(&mut fields, line_no, "task id")?;
                let work_blue: f64 = parse_field(&mut fields, line_no, "blue time")?;
                let work_red: f64 = parse_field(&mut fields, line_no, "red time")?;
                let name = fields.next().unwrap_or("").to_string();
                if id != graph.n_tasks() {
                    return Err(ParseError::BadLine(
                        line_no,
                        format!("task ids must be consecutive, expected {}", graph.n_tasks()),
                    ));
                }
                graph.add_task(name, work_blue, work_red);
            }
            "edge" => {
                let mut fields = rest.split(' ');
                let src: usize = parse_field(&mut fields, line_no, "source id")?;
                let dst: usize = parse_field(&mut fields, line_no, "destination id")?;
                let size: f64 = parse_field(&mut fields, line_no, "file size")?;
                let comm: f64 = parse_field(&mut fields, line_no, "communication cost")?;
                if src >= graph.n_tasks() || dst >= graph.n_tasks() {
                    return Err(ParseError::BadLine(
                        line_no,
                        "edge references unknown task".into(),
                    ));
                }
                graph
                    .add_edge(TaskId::from_index(src), TaskId::from_index(dst), size, comm)
                    .map_err(|e| ParseError::BadLine(line_no, e.to_string()))?;
            }
            other => {
                return Err(ParseError::BadLine(
                    line_no,
                    format!("unknown record `{other}`"),
                ));
            }
        }
    }
    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    Ok(graph)
}

/// Serialises a graph to the JSON shape of the service surface.
pub fn to_json(graph: &TaskGraph) -> Json {
    let tasks = graph
        .task_ids()
        .map(|t| {
            let data = graph.task(t);
            Json::obj([
                ("name", Json::str(&data.name)),
                ("blue", Json::Num(data.work_blue)),
                ("red", Json::Num(data.work_red)),
            ])
        })
        .collect();
    let edges = graph
        .edge_ids()
        .map(|e| {
            let edge = graph.edge(e);
            Json::obj([
                ("src", Json::Num(edge.src.index() as f64)),
                ("dst", Json::Num(edge.dst.index() as f64)),
                ("size", Json::Num(edge.size)),
                ("comm", Json::Num(edge.comm_cost)),
            ])
        })
        .collect();
    Json::obj([("tasks", Json::Arr(tasks)), ("edges", Json::Arr(edges))])
}

fn json_f64(obj: &Json, key: &str, what: &str) -> Result<f64, ParseError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ParseError::Json(format!("{what}: missing or non-numeric `{key}`")))
}

/// Parses a graph from the JSON shape produced by [`to_json`].
pub fn from_json(json: &Json) -> Result<TaskGraph, ParseError> {
    let tasks = json
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| ParseError::Json("missing `tasks` array".into()))?;
    let edges = json
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| ParseError::Json("missing `edges` array".into()))?;
    let mut graph = TaskGraph::new();
    for (i, task) in tasks.iter().enumerate() {
        let what = format!("task {i}");
        let name = task
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ParseError::Json(format!("{what}: missing `name`")))?;
        let blue = json_f64(task, "blue", &what)?;
        let red = json_f64(task, "red", &what)?;
        graph.add_task(name, blue, red);
    }
    for (i, edge) in edges.iter().enumerate() {
        let what = format!("edge {i}");
        let src = edge
            .get("src")
            .and_then(Json::as_usize)
            .ok_or_else(|| ParseError::Json(format!("{what}: missing `src`")))?;
        let dst = edge
            .get("dst")
            .and_then(Json::as_usize)
            .ok_or_else(|| ParseError::Json(format!("{what}: missing `dst`")))?;
        let size = json_f64(edge, "size", &what)?;
        let comm = json_f64(edge, "comm", &what)?;
        if src >= graph.n_tasks() || dst >= graph.n_tasks() {
            return Err(ParseError::Json(format!("{what}: references unknown task")));
        }
        graph
            .add_edge(TaskId::from_index(src), TaskId::from_index(dst), size, comm)
            .map_err(|e| ParseError::Json(format!("{what}: {e}")))?;
    }
    Ok(graph)
}

fn parse_field<'a, T: std::str::FromStr>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
    what: &str,
) -> Result<T, ParseError> {
    let raw = fields
        .next()
        .ok_or_else(|| ParseError::BadLine(line_no, format!("missing {what}")))?;
    raw.parse::<T>()
        .map_err(|_| ParseError::BadLine(line_no, format!("invalid {what}: `{raw}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dex() -> TaskGraph {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4 final", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let original = dex();
        let text = to_text(&original);
        let parsed = from_text(&text).unwrap();
        assert_eq!(original, parsed);
    }

    #[test]
    fn names_with_spaces_survive() {
        let parsed = from_text(&to_text(&dex())).unwrap();
        assert_eq!(parsed.task(TaskId::from_index(3)).name, "T4 final");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\nmtg 1\n# another\ntask 0 1 2 a\n\ntask 1 3 4 b\nedge 0 1 5 6\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.n_tasks(), 2);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.edge(g.edge_ids().next().unwrap()).size, 5.0);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(from_text("task 0 1 2 a\n"), Err(ParseError::BadHeader));
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
        assert_eq!(from_text("mtg 2\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        let err = from_text("mtg 1\ntask 0 1 2 a\nedge 0 5 1 1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(3, _)));
        let err = from_text("mtg 1\ntask 7 1 2 a\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
        let err = from_text("mtg 1\ntask 0 x 2 a\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
        let err = from_text("mtg 1\nblob 0\n").unwrap_err();
        assert!(matches!(err, ParseError::BadLine(2, _)));
    }

    #[test]
    fn duplicate_edge_rejected_via_graph_error() {
        let text = "mtg 1\ntask 0 1 1 a\ntask 1 1 1 b\nedge 0 1 1 1\nedge 0 1 2 2\n";
        let err = from_text(text).unwrap_err();
        assert!(matches!(err, ParseError::BadLine(5, _)));
    }

    #[test]
    fn error_display() {
        assert!(ParseError::BadHeader.to_string().contains("header"));
        assert!(ParseError::BadLine(3, "oops".into())
            .to_string()
            .contains("line 3"));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = TaskGraph::new();
        let parsed = from_text(&to_text(&g)).unwrap();
        assert_eq!(parsed.n_tasks(), 0);
    }

    #[test]
    fn json_roundtrip_preserves_graph() {
        let original = dex();
        let json = to_json(&original);
        assert_eq!(from_json(&json).unwrap(), original);
        // And through the textual JSON representation.
        let reparsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(from_json(&reparsed).unwrap(), original);
    }

    #[test]
    fn json_empty_graph_roundtrip() {
        let g = TaskGraph::new();
        assert_eq!(from_json(&to_json(&g)).unwrap(), g);
    }

    #[test]
    fn json_errors_are_descriptive() {
        let missing = Json::parse(r#"{"edges": []}"#).unwrap();
        assert!(matches!(from_json(&missing), Err(ParseError::Json(_))));
        let bad_edge =
            Json::parse(r#"{"tasks": [{"name": "a", "blue": 1, "red": 1}], "edges": [{"src": 0, "dst": 5, "size": 1, "comm": 1}]}"#)
                .unwrap();
        let err = from_json(&bad_edge).unwrap_err();
        assert!(err.to_string().contains("unknown task"), "{err}");
        let bad_task =
            Json::parse(r#"{"tasks": [{"name": "a", "blue": "x", "red": 1}], "edges": []}"#)
                .unwrap();
        assert!(from_json(&bad_task).is_err());
    }
}
