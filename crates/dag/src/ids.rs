//! Strongly-typed identifiers for tasks and edges.
//!
//! Tasks and edges are stored in arenas inside [`crate::TaskGraph`]; these
//! newtypes prevent mixing up the two index spaces and keep the index width
//! explicit (`u32` — a DAG with more than four billion tasks is out of scope
//! for this simulator).

/// Identifier of a task (node) in a [`crate::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

/// Identifier of a dependency edge in a [`crate::TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl TaskId {
    /// Returns the underlying arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TaskId` from a raw index.
    ///
    /// Intended for (de)serialisation and test helpers; using an index that
    /// does not exist in the graph it is used with will panic at the point of
    /// use.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TaskId(u32::try_from(index).expect("task index overflows u32"))
    }
}

impl EdgeId {
    /// Returns the underlying arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index (see [`TaskId::from_index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        let t = TaskId::from_index(17);
        assert_eq!(t.index(), 17);
        let e = EdgeId::from_index(3);
        assert_eq!(e.index(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(TaskId::from_index(2).to_string(), "T2");
        assert_eq!(EdgeId::from_index(5).to_string(), "e5");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TaskId::from_index(1) < TaskId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
