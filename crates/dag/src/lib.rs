//! Task-graph substrate for memory-aware list scheduling.
//!
//! The paper (*Memory-aware list scheduling for hybrid platforms*, Herrmann,
//! Marchal, Robert, 2014) models an application as a Directed Acyclic Graph
//! `D = (V, E)` where:
//!
//! * each task `i ∈ V` has two processing times — `W⁽¹⁾_i` on a *blue*
//!   processor (CPU-side) and `W⁽²⁾_i` on a *red* processor (accelerator),
//! * each edge `(i, j) ∈ E` carries a data file of size `F_{i,j}` that must
//!   reside in memory from the start of `i` until the completion of `j`, and
//!   costs `C_{i,j}` time units to copy across memories when `i` and `j`
//!   execute on different sides of the platform.
//!
//! This crate provides that DAG as a standalone, dependency-free data
//! structure plus the graph algorithms the schedulers need: topological
//! orders, reachability, levels, critical paths, the HEFT *upward rank*, DOT
//! export and structural validation.
//!
//! # Example
//!
//! ```
//! use mals_dag::TaskGraph;
//!
//! // The toy DAG D_ex of Figure 2 in the paper.
//! let mut g = TaskGraph::new();
//! let t1 = g.add_task("T1", 3.0, 1.0);
//! let t2 = g.add_task("T2", 2.0, 2.0);
//! let t3 = g.add_task("T3", 6.0, 3.0);
//! let t4 = g.add_task("T4", 1.0, 1.0);
//! g.add_edge(t1, t2, 1.0, 1.0).unwrap();
//! g.add_edge(t1, t3, 2.0, 1.0).unwrap();
//! g.add_edge(t2, t4, 1.0, 1.0).unwrap();
//! g.add_edge(t3, t4, 2.0, 1.0).unwrap();
//!
//! assert_eq!(g.n_tasks(), 4);
//! assert_eq!(g.mem_req(t3), 2.0 + 2.0); // F_{1,3} + F_{3,4}
//! assert!(g.validate().is_ok());
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod ids;
pub mod rank;
pub mod serialize;
pub mod stats;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeData, TaskData, TaskGraph};
pub use ids::{EdgeId, TaskId};
pub use rank::{downward_ranks, mean_work, upward_ranks};
pub use stats::{graph_stats, GraphStats};
