//! Task priorities: upward and downward ranks.
//!
//! The HEFT-family heuristics order tasks by their *upward rank*. The paper
//! (Section 5.1, "Task prioritizing phase") defines it on the dual-memory
//! platform as
//!
//! ```text
//! rank(i) = (W_red(i) + W_blue(i)) / 2 + max_{j ∈ Children(i)} { rank(j) + C_{i,j} / 2 }
//! ```
//!
//! i.e. the classical HEFT upward rank with the mean of the two processing
//! times as the computation cost and half the cross-memory transfer time as
//! the expected communication cost (the file crosses memories with
//! probability one half under a uniformly random mapping).

use crate::algo::topological_order;
use crate::graph::TaskGraph;
use crate::ids::TaskId;

/// Mean processing time of a task over the two resource types.
pub fn mean_work(g: &TaskGraph, t: TaskId) -> f64 {
    g.task(t).mean_work()
}

/// Computes the upward rank of every task (indexed by task index).
///
/// # Panics
/// Panics if the graph has a cycle.
pub fn upward_ranks(g: &TaskGraph) -> Vec<f64> {
    let order = topological_order(g).expect("upward ranks require an acyclic graph");
    let mut rank = vec![0.0f64; g.n_tasks()];
    for &t in order.iter().rev() {
        let mut best_child = 0.0f64;
        for &e in g.out_edges(t) {
            let edge = g.edge(e);
            let cand = rank[edge.dst.index()] + edge.comm_cost / 2.0;
            if cand > best_child {
                best_child = cand;
            }
        }
        rank[t.index()] = g.task(t).mean_work() + best_child;
    }
    rank
}

/// Computes the downward rank of every task: the length of the longest path
/// from a source to the task, *excluding* the task itself, using mean
/// computation costs and half communication costs. Sources have downward
/// rank 0.
///
/// `rank_u(i) + rank_d(i)` is maximal on the critical path; the sum is useful
/// for critical-path-first tie-breaking.
pub fn downward_ranks(g: &TaskGraph) -> Vec<f64> {
    let order = topological_order(g).expect("downward ranks require an acyclic graph");
    let mut rank = vec![0.0f64; g.n_tasks()];
    for &t in &order {
        for &e in g.out_edges(t) {
            let edge = g.edge(e);
            let cand = rank[t.index()] + g.task(t).mean_work() + edge.comm_cost / 2.0;
            if cand > rank[edge.dst.index()] {
                rank[edge.dst.index()] = cand;
            }
        }
    }
    rank
}

/// Returns the task ids sorted by non-increasing upward rank, the order in
/// which MemHEFT considers tasks. Ties are broken by task index so the order
/// is deterministic (the paper breaks ties randomly; see
/// `mals-sched::ablation` for the randomized variant).
pub fn rank_sorted_tasks(g: &TaskGraph) -> Vec<TaskId> {
    let ranks = upward_ranks(g);
    let mut tasks: Vec<TaskId> = g.task_ids().collect();
    tasks.sort_by(|&a, &b| {
        ranks[b.index()]
            .total_cmp(&ranks[a.index()])
            .then_with(|| a.index().cmp(&b.index()))
    });
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_util::approx_eq;

    /// D_ex from Figure 2 of the paper.
    fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    #[test]
    fn upward_ranks_dex() {
        let (g, [t1, t2, t3, t4]) = dex();
        let r = upward_ranks(&g);
        // rank(T4) = (1+1)/2 = 1
        assert!(approx_eq(r[t4.index()], 1.0));
        // rank(T2) = (2+2)/2 + rank(T4) + 1/2 = 2 + 1.5 = 3.5
        assert!(approx_eq(r[t2.index()], 3.5));
        // rank(T3) = (6+3)/2 + rank(T4) + 1/2 = 4.5 + 1.5 = 6.0
        assert!(approx_eq(r[t3.index()], 6.0));
        // rank(T1) = (3+1)/2 + max(3.5, 6.0) + 1/2 = 2 + 6.5 = 8.5
        assert!(approx_eq(r[t1.index()], 8.5));
    }

    #[test]
    fn rank_sorted_order_dex() {
        let (g, [t1, t2, t3, t4]) = dex();
        assert_eq!(rank_sorted_tasks(&g), vec![t1, t3, t2, t4]);
    }

    #[test]
    fn source_rank_dominates_all() {
        let (g, _) = dex();
        let r = upward_ranks(&g);
        let max = r.iter().cloned().fold(f64::MIN, f64::max);
        // The source has the largest upward rank in a single-source DAG.
        assert!(approx_eq(r[0], max));
    }

    #[test]
    fn downward_ranks_dex() {
        let (g, [t1, t2, t3, t4]) = dex();
        let d = downward_ranks(&g);
        assert!(approx_eq(d[t1.index()], 0.0));
        // T2: via T1 = 2 + 0.5 = 2.5
        assert!(approx_eq(d[t2.index()], 2.5));
        // T3: via T1 = 2 + 0.5 = 2.5
        assert!(approx_eq(d[t3.index()], 2.5));
        // T4: max(via T2 = 2.5 + 2 + 0.5, via T3 = 2.5 + 4.5 + 0.5) = 7.5
        assert!(approx_eq(d[t4.index()], 7.5));
    }

    #[test]
    fn rank_sum_constant_on_critical_path() {
        let (g, _) = dex();
        let u = upward_ranks(&g);
        let d = downward_ranks(&g);
        let max_sum = (0..g.n_tasks())
            .map(|i| u[i] + d[i])
            .fold(f64::MIN, f64::max);
        // T1, T3 and T4 form the critical path: their sums equal the maximum.
        assert!(approx_eq(u[0] + d[0], max_sum));
        assert!(approx_eq(u[2] + d[2], max_sum));
        assert!(approx_eq(u[3] + d[3], max_sum));
    }

    #[test]
    fn upward_rank_of_isolated_task_is_mean_work() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 4.0, 2.0);
        let r = upward_ranks(&g);
        assert!(approx_eq(r[a.index()], 3.0));
    }

    #[test]
    fn ranks_monotone_along_edges() {
        let (g, _) = dex();
        let r = upward_ranks(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(
                r[edge.src.index()] > r[edge.dst.index()],
                "upward rank must strictly decrease along edges when works are positive"
            );
        }
    }
}
