//! MinMin — the memory-oblivious dynamic reference heuristic.
//!
//! MinMin (Braun et al. 2001) repeatedly picks, among the ready tasks, the
//! one with the smallest earliest finish time and runs it on the resource
//! achieving that finish time. In the dual-memory model it is MemMinMin with
//! both memory capacities set to `+∞`.

use crate::error::ScheduleError;
use crate::memminmin::MemMinMin;
use crate::traits::Scheduler;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sim::Schedule;

/// The memory-oblivious MinMin baseline.
#[derive(Debug, Clone, Copy)]
pub struct MinMin {
    parallel: mals_util::ParallelConfig,
}

impl Default for MinMin {
    fn default() -> Self {
        Self::new()
    }
}

impl MinMin {
    /// Creates a (sequential) MinMin scheduler.
    pub fn new() -> Self {
        MinMin {
            parallel: mals_util::ParallelConfig::sequential(),
        }
    }

    /// Creates a MinMin scheduler whose ready-list evaluation uses the given
    /// thread configuration (same engine as [`MemMinMin`], so the schedule
    /// is identical for every thread count).
    pub fn with_parallelism(parallel: mals_util::ParallelConfig) -> Self {
        MinMin { parallel }
    }
}

impl Scheduler for MinMin {
    fn name(&self) -> &'static str {
        "MinMin"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        MemMinMin::with_parallelism(self.parallel).schedule(graph, &platform.unbounded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_sim::validate;

    #[test]
    fn ignores_memory_bounds() {
        let (g, _) = dex();
        let platform = Platform::single_pair(1.0, 1.0);
        let s = MinMin::new().schedule(&g, &platform).unwrap();
        assert!(s.is_complete(&g));
        assert!(validate(&g, &platform.unbounded(), &s).is_valid());
    }

    #[test]
    fn equals_memminmin_with_infinite_memory() {
        let (g, _) = dex();
        let platform = Platform::single_pair(3.0, 3.0);
        let a = MinMin::new().schedule(&g, &platform).unwrap();
        let b = MemMinMin::new()
            .schedule(&g, &platform.unbounded())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MinMin::new().name(), "MinMin");
    }
}
