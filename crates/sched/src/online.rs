//! Online rolling-horizon scheduling: an event-driven replay of an
//! [`ArrivalTrace`] with dynamic re-planning.
//!
//! The static heuristics see the whole DAG before the first commit. The
//! online layer replays a release timeline instead: tasks become known to
//! the scheduler at their arrival instants, completions are reported back,
//! and the plan for the *unscheduled suffix* is revised without ever
//! touching the committed prefix. The event loop runs on a
//! [`VirtualClock`] — time jumps from event to event, so a 10⁴-task replay
//! takes seconds of wall time and is bit-reproducible.
//!
//! # The event loop
//!
//! Three event kinds interleave on one priority queue, ordered by virtual
//! time (ties: arrivals before completions before re-plans, then FIFO):
//!
//! * **TaskArrived** — the tasks of one trace event become visible; those
//!   whose parents are all committed join the candidate set;
//! * **TaskCompleted** — a previously committed task reaches its planned
//!   finish time (bookkeeping: it advances the clock and counts toward
//!   [`ReplanPolicy::EveryK`]);
//! * **ReplanTriggered** — a deferred re-plan fires (pushed by
//!   [`ReplanPolicy::Horizon`] when a candidate's start lies beyond the
//!   current window).
//!
//! A *re-plan* greedily commits candidates — MemHEFT order or MemMinMin
//! order, per [`OnlineFlavor`] — through the same incremental machinery as
//! the static solvers ([`PartialSchedule`], [`EstCache`]), with one twist:
//! every evaluation is **floored at the virtual now** (`est' = max(est,
//! now)`, `eft' = est' + work`) because the online scheduler cannot start a
//! task in its past. Flooring is safe — memory fits are sustained-forever
//! and processor availability and precedence are monotone, so a later start
//! is always still valid — and it is a no-op at `t = 0`, which yields the
//! static-equivalence oracle: a trace releasing the whole DAG at `t = 0`
//! with [`ReplanPolicy::EveryArrival`] reproduces the static solver's
//! schedule bit for bit, at any thread count.
//!
//! The committed prefix is immutable by construction: a commit only ever
//! appends to the [`PartialSchedule`], and re-plans only look at
//! uncommitted candidates.

use crate::error::ScheduleError;
use crate::incremental::EstCache;
use crate::partial::{CommitEffects, EstBreakdown, PartialSchedule};
use crate::solver::{OptimalityStatus, SolveCtx, SolveOutcome, Solver};
use mals_dag::{algo::topological_order, TaskGraph, TaskId};
use mals_gen::ArrivalTrace;
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{ChunkedIndexSet, F64Ord, VirtualClock};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// When the rolling-horizon scheduler re-plans the unscheduled suffix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplanPolicy {
    /// Re-plan at every arrival event (the most reactive policy, and the
    /// static-equivalence oracle when the whole DAG arrives at `t = 0`).
    EveryArrival,
    /// Re-plan every K processed events (arrivals and completions alike),
    /// plus a final pass when the timeline is exhausted. `K = 1` re-plans
    /// on every event; larger K batches decisions.
    EveryK(u32),
    /// Re-plan at every arrival, but only commit candidates whose (floored)
    /// start time lies within `now + window`; starts beyond the window are
    /// deferred and a re-plan event is scheduled at the earliest deferred
    /// start.
    Horizon(f64),
}

impl ReplanPolicy {
    /// Parses the CLI spelling: `every-arrival`, `every-k:<K>` or
    /// `horizon:<window>`.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "every-arrival" {
            return Some(ReplanPolicy::EveryArrival);
        }
        if let Some(k) = s.strip_prefix("every-k:") {
            let k: u32 = k.parse().ok()?;
            return (k >= 1).then_some(ReplanPolicy::EveryK(k));
        }
        if let Some(w) = s.strip_prefix("horizon:") {
            let w: f64 = w.parse().ok()?;
            return (w.is_finite() && w >= 0.0).then_some(ReplanPolicy::Horizon(w));
        }
        None
    }

    /// The stable CLI spelling parsed by [`ReplanPolicy::parse`].
    pub fn key(&self) -> String {
        match self {
            ReplanPolicy::EveryArrival => "every-arrival".into(),
            ReplanPolicy::EveryK(k) => format!("every-k:{k}"),
            ReplanPolicy::Horizon(w) => format!("horizon:{w}"),
        }
    }
}

/// Which static heuristic the online scheduler re-plans with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineFlavor {
    /// MemHEFT order: upward ranks over the *arrived* subgraph, first
    /// feasible candidate in priority order commits.
    MemHeft,
    /// MemMinMin order: the candidate with the globally smallest (floored)
    /// EFT commits.
    MemMinMin,
}

impl OnlineFlavor {
    /// Parses `memheft` / `memminmin`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "memheft" => Some(OnlineFlavor::MemHeft),
            "memminmin" => Some(OnlineFlavor::MemMinMin),
            _ => None,
        }
    }
}

/// Configuration of one online replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// The re-planning heuristic.
    pub flavor: OnlineFlavor,
    /// When re-plans fire.
    pub policy: ReplanPolicy,
}

impl OnlineConfig {
    /// A config with the given flavor and policy.
    pub fn new(flavor: OnlineFlavor, policy: ReplanPolicy) -> Self {
        OnlineConfig { flavor, policy }
    }
}

/// The result of a completed online replay: the schedule plus the event and
/// re-plan accounting of the run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The complete schedule (passes `mals_sim::validate`).
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: f64,
    /// Total events processed (arrivals + completions + re-plan triggers).
    pub events: u64,
    /// Arrival events processed.
    pub arrivals: u64,
    /// Completion events processed.
    pub completions: u64,
    /// Re-plan passes run (including the final drain).
    pub replans: u64,
    /// Wall-clock time spent inside re-plan passes, summed.
    pub replan_total: Duration,
    /// Wall-clock time of the most expensive single re-plan pass.
    pub replan_max: Duration,
    /// The virtual time of the last processed event.
    pub virtual_end: f64,
}

impl OnlineOutcome {
    /// Mean wall-clock cost of one re-plan pass, in seconds.
    pub fn replan_mean_secs(&self) -> f64 {
        if self.replans == 0 {
            0.0
        } else {
            self.replan_total.as_secs_f64() / self.replans as f64
        }
    }
}

/// Event-queue tie-break ranks: at equal virtual times, arrivals are
/// processed before completions before re-plan triggers.
const RANK_ARRIVAL: u8 = 0;
const RANK_COMPLETION: u8 = 1;
const RANK_REPLAN: u8 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Payload {
    /// Index into the trace's event list.
    Arrival(u32),
    Completion,
    Replan,
}

/// One queued event, ordered by `(virtual time, kind rank, FIFO sequence)`.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    at: F64Ord,
    rank: u8,
    seq: u64,
    payload: Payload,
}

impl QueuedEvent {
    fn key(&self) -> (F64Ord, u8, u64) {
        (self.at, self.rank, self.seq)
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Replays `trace` against `graph` on `platform` with rolling-horizon
/// re-planning (see the module docs for the event-loop semantics).
///
/// The schedule is bit-identical for every thread count of `ctx.pool`, and
/// a trace releasing the whole DAG at `t = 0` under
/// [`ReplanPolicy::EveryArrival`] reproduces the corresponding static
/// solver exactly.
///
/// # Errors
///
/// * [`ScheduleError::InvalidGraph`] — the graph fails validation;
/// * [`ScheduleError::InvalidTrace`] — the trace does not fit the graph;
/// * [`ScheduleError::Infeasible`] — some suffix cannot be placed within
///   the memory bounds (same condition as the static solvers);
/// * [`ScheduleError::Cancelled`] — `ctx.cancel` tripped mid-replay.
pub fn replay(
    graph: &TaskGraph,
    platform: &Platform,
    trace: &ArrivalTrace,
    config: OnlineConfig,
    ctx: &SolveCtx,
) -> Result<OnlineOutcome, ScheduleError> {
    graph.validate()?;
    trace
        .validate_for(graph)
        .map_err(|e| ScheduleError::InvalidTrace(e.to_string()))?;
    if let ReplanPolicy::EveryK(0) = config.policy {
        return Err(ScheduleError::InvalidTrace(
            "every-k policy needs K >= 1".into(),
        ));
    }
    if let ReplanPolicy::Horizon(w) = config.policy {
        if !(w.is_finite() && w >= 0.0) {
            return Err(ScheduleError::InvalidTrace(format!(
                "horizon window must be finite and non-negative, got {w}"
            )));
        }
    }
    Replayer::new(graph, platform, trace, config).run(ctx)
}

/// The mutable state of one replay (see the module docs).
struct Replayer<'a> {
    graph: &'a TaskGraph,
    trace: &'a ArrivalTrace,
    config: OnlineConfig,
    partial: PartialSchedule<'a>,
    cache: EstCache,
    clock: VirtualClock,
    /// `arrived[t]`: task `t` has been released by the trace.
    arrived: Vec<bool>,
    /// Task ids that are arrived, ready and uncommitted — the set re-plans
    /// choose from.
    candidates: ChunkedIndexSet,
    /// A topological order of the full graph, computed once; the arrived-
    /// subgraph rank walk visits it in reverse, skipping unarrived tasks.
    full_topo: Vec<TaskId>,
    /// Upward ranks over the arrived subgraph (MemHEFT flavor). Reused
    /// across refreshes: every arrived task is overwritten before any
    /// arrived parent reads it, exactly like the from-scratch walk.
    rank: Vec<f64>,
    /// Arrived tasks in priority order (MemHEFT flavor).
    order: Vec<TaskId>,
    /// `position_of[t]`: index of task `t` in `order` (valid for arrived
    /// tasks since the last refresh).
    position_of: Vec<u32>,
    /// Candidate tasks keyed by priority position (MemHEFT flavor); rebuilt
    /// at each refresh, maintained incrementally between refreshes.
    ready_positions: ChunkedIndexSet,
    // Per-replay scratch, reused so steady-state passes allocate nothing.
    ready_buf: Vec<TaskId>,
    stale: Vec<TaskId>,
    pairs: Vec<[Option<EstBreakdown>; 2]>,
    effects: CommitEffects,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    /// Earliest floored start among the candidates the horizon deferred in
    /// the last selection pass.
    deferred_min: Option<f64>,
    // Accounting.
    events: u64,
    arrivals: u64,
    completions: u64,
    replans: u64,
    replan_total: Duration,
    replan_max: Duration,
}

impl<'a> Replayer<'a> {
    fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        trace: &'a ArrivalTrace,
        config: OnlineConfig,
    ) -> Self {
        let n = graph.n_tasks();
        Replayer {
            graph,
            trace,
            config,
            partial: PartialSchedule::new(graph, platform),
            cache: EstCache::new(n),
            clock: VirtualClock::new(),
            arrived: vec![false; n],
            candidates: ChunkedIndexSet::new(),
            full_topo: topological_order(graph).expect("graph validated before replay"),
            rank: vec![0.0; n],
            order: Vec::with_capacity(n),
            position_of: vec![u32::MAX; n],
            ready_positions: ChunkedIndexSet::new(),
            ready_buf: Vec::new(),
            stale: Vec::new(),
            pairs: Vec::new(),
            effects: CommitEffects::empty(),
            queue: BinaryHeap::new(),
            seq: 0,
            deferred_min: None,
            events: 0,
            arrivals: 0,
            completions: 0,
            replans: 0,
            replan_total: Duration::ZERO,
            replan_max: Duration::ZERO,
        }
    }

    fn run(mut self, ctx: &SolveCtx) -> Result<OnlineOutcome, ScheduleError> {
        for (i, event) in self.trace.events().iter().enumerate() {
            self.push(event.at, RANK_ARRIVAL, Payload::Arrival(i as u32));
        }
        while let Some(Reverse(event)) = self.queue.pop() {
            self.clock.advance_to_secs(event.at.0);
            self.events += 1;
            let mut replan = false;
            match event.payload {
                Payload::Arrival(i) => {
                    self.arrivals += 1;
                    self.admit(i as usize);
                    replan = matches!(
                        self.config.policy,
                        ReplanPolicy::EveryArrival | ReplanPolicy::Horizon(_)
                    );
                }
                Payload::Completion => self.completions += 1,
                Payload::Replan => {
                    replan = matches!(self.config.policy, ReplanPolicy::Horizon(_));
                }
            }
            if let ReplanPolicy::EveryK(k) = self.config.policy {
                replan = self.events.is_multiple_of(u64::from(k));
            }
            if replan {
                let window = match self.config.policy {
                    ReplanPolicy::Horizon(w) => Some(self.clock.now_secs() + w),
                    _ => None,
                };
                self.drain(ctx, window)?;
                if let Some(at) = self.deferred_min {
                    // The deferred start lies strictly beyond `now + window`,
                    // so the re-plan event is strictly in the future and the
                    // loop makes progress.
                    self.push(at, RANK_REPLAN, Payload::Replan);
                }
            }
        }
        // Final unrestricted pass: commits whatever the policy batched or
        // deferred past the last event. For the `t = 0` oracle this re-scan
        // finds nothing new (the state only changes through commits), so
        // the outcome — including Infeasible counts — matches the static
        // solver.
        self.drain(ctx, None)?;
        let schedule = self.partial.finish_or_error()?;
        let makespan = schedule.makespan();
        Ok(OnlineOutcome {
            schedule,
            makespan,
            events: self.events,
            arrivals: self.arrivals,
            completions: self.completions,
            replans: self.replans,
            replan_total: self.replan_total,
            replan_max: self.replan_max,
            virtual_end: self.clock.now_secs(),
        })
    }

    /// Marks the tasks of trace event `i` as arrived and admits the ready
    /// ones to the candidate set; the MemHEFT flavor re-derives its
    /// priority order over the enlarged arrived subgraph.
    fn admit(&mut self, i: usize) {
        for &task in &self.trace.events()[i].tasks {
            self.arrived[task.index()] = true;
            if self.partial.is_ready(task) {
                self.candidates.insert(task.index() as u32);
            }
        }
        if self.config.flavor == OnlineFlavor::MemHeft {
            self.refresh_priorities();
        }
    }

    /// Recomputes upward ranks over the arrived subgraph and rebuilds the
    /// priority order. The walk mirrors `mals_dag::rank::upward_ranks`
    /// operation for operation (same reverse-topological visit sequence,
    /// same float fold, same sort comparator) restricted to arrived tasks,
    /// so once everything has arrived the order equals
    /// `rank_sorted_tasks(graph)` bit for bit.
    fn refresh_priorities(&mut self) {
        let graph = self.graph;
        let arrived = &self.arrived;
        let rank = &mut self.rank;
        for &t in self.full_topo.iter().rev() {
            if !arrived[t.index()] {
                continue;
            }
            let mut best_child = 0.0f64;
            for &e in graph.out_edges(t) {
                let edge = graph.edge(e);
                if !arrived[edge.dst.index()] {
                    continue;
                }
                let cand = rank[edge.dst.index()] + edge.comm_cost / 2.0;
                if cand > best_child {
                    best_child = cand;
                }
            }
            rank[t.index()] = graph.task(t).mean_work() + best_child;
        }
        self.order.clear();
        self.order
            .extend(graph.task_ids().filter(|t| arrived[t.index()]));
        let rank = &self.rank;
        self.order.sort_by(|&a, &b| {
            rank[b.index()]
                .total_cmp(&rank[a.index()])
                .then_with(|| a.index().cmp(&b.index()))
        });
        for (position, &task) in self.order.iter().enumerate() {
            self.position_of[task.index()] = position as u32;
        }
        let position_of = &self.position_of;
        let mut positions: Vec<u32> = self
            .candidates
            .iter()
            .map(|id| position_of[id as usize])
            .collect();
        positions.sort_unstable();
        self.ready_positions = ChunkedIndexSet::from_sorted(positions);
    }

    /// One re-plan pass: greedily commits candidates until none is feasible
    /// (or none starts inside `window`, when given as an absolute latest
    /// allowed start).
    fn drain(&mut self, ctx: &SolveCtx, window: Option<f64>) -> Result<(), ScheduleError> {
        let started = Instant::now();
        self.replans += 1;
        loop {
            if ctx.is_cancelled() {
                return Err(ScheduleError::Cancelled {
                    scheduled: self.partial.n_scheduled(),
                    total: self.graph.n_tasks(),
                });
            }
            // The last (non-committing) pass leaves the definitive set of
            // horizon-deferred starts.
            self.deferred_min = None;
            let chosen = match self.config.flavor {
                OnlineFlavor::MemMinMin => self.select_min_eft(ctx, window),
                OnlineFlavor::MemHeft => self.select_priority(ctx, window),
            };
            let Some((task, breakdown)) = chosen else {
                break;
            };
            self.commit(task, &breakdown);
        }
        let elapsed = started.elapsed();
        self.replan_total += elapsed;
        if elapsed > self.replan_max {
            self.replan_max = elapsed;
        }
        Ok(())
    }

    /// Floors an evaluation pair at the virtual `now`: the online scheduler
    /// cannot start a task in its past, so `est' = max(est, now)` and the
    /// EFT is recomputed with the same `est + work` formula the evaluator
    /// uses. At `now = 0` every pair is returned untouched (raw ESTs are
    /// never negative), which is what makes the `t = 0` replay bit-identical
    /// to the static solvers.
    fn floored(
        graph: &TaskGraph,
        task: TaskId,
        pair: [Option<EstBreakdown>; 2],
        now: f64,
    ) -> [Option<EstBreakdown>; 2] {
        pair.map(|side| {
            side.map(|bd| {
                if bd.est >= now {
                    bd
                } else {
                    EstBreakdown {
                        est: now,
                        eft: now + graph.task(task).work_on(bd.memory.is_blue()),
                        ..bd
                    }
                }
            })
        })
    }

    /// Refreshes the cache for every stale candidate in one pool fan-out
    /// (the raw, floor-free pairs — floors are applied at read time). With
    /// no pool the sequential cache reads recompute lazily instead.
    fn refresh_stale(&mut self, ctx: &SolveCtx) {
        let Some(pool) = ctx.parallel_pool() else {
            return;
        };
        let cache = &self.cache;
        self.stale.clear();
        self.stale.extend(
            self.candidates
                .iter()
                .map(|id| TaskId::from_index(id as usize))
                .filter(|&t| !cache.is_fresh(t)),
        );
        self.partial
            .evaluate_pairs_into(&self.stale, pool, &mut self.pairs);
        for (&task, &pair) in self.stale.iter().zip(self.pairs.iter()) {
            self.cache.store_pair(task, pair);
        }
    }

    /// MemMinMin selection: the candidate with the globally smallest
    /// floored EFT (same comparison as the static loop). Beyond-window
    /// candidates are recorded as deferred instead of competing.
    fn select_min_eft(
        &mut self,
        ctx: &SolveCtx,
        window: Option<f64>,
    ) -> Option<(TaskId, EstBreakdown)> {
        self.refresh_stale(ctx);
        let now = self.clock.now_secs();
        self.ready_buf.clear();
        self.ready_buf.extend(
            self.candidates
                .iter()
                .map(|id| TaskId::from_index(id as usize)),
        );
        let mut best: Option<(TaskId, EstBreakdown)> = None;
        for i in 0..self.ready_buf.len() {
            let task = self.ready_buf[i];
            let raw = self.cache.pair(&self.partial, task);
            let pair = Self::floored(self.graph, task, raw, now);
            if let Some(bd) = PartialSchedule::combine_pair(pair, false) {
                if window.is_some_and(|limit| bd.est > limit) {
                    self.note_deferred(bd.est);
                } else if PartialSchedule::is_better_choice(&best, task, &bd) {
                    best = Some((task, bd));
                }
            }
        }
        best
    }

    /// MemHEFT selection: the first candidate in priority order whose
    /// floored evaluation is feasible (and starts inside the window, when
    /// one applies) — the same "move down the list" rule as the static
    /// engine.
    fn select_priority(
        &mut self,
        ctx: &SolveCtx,
        window: Option<f64>,
    ) -> Option<(TaskId, EstBreakdown)> {
        self.refresh_stale(ctx);
        let now = self.clock.now_secs();
        self.ready_buf.clear();
        let order = &self.order;
        self.ready_buf
            .extend(self.ready_positions.iter().map(|p| order[p as usize]));
        for i in 0..self.ready_buf.len() {
            let task = self.ready_buf[i];
            let raw = self.cache.pair(&self.partial, task);
            let pair = Self::floored(self.graph, task, raw, now);
            if let Some(bd) = PartialSchedule::combine_pair(pair, false) {
                if window.is_some_and(|limit| bd.est > limit) {
                    self.note_deferred(bd.est);
                } else {
                    return Some((task, bd));
                }
            }
        }
        None
    }

    fn note_deferred(&mut self, est: f64) {
        self.deferred_min = Some(match self.deferred_min {
            Some(d) => d.min(est),
            None => est,
        });
    }

    /// Commits one placement and maintains the candidate sets, the cache
    /// epochs and the completion timeline.
    fn commit(&mut self, task: TaskId, breakdown: &EstBreakdown) {
        let mut effects = std::mem::take(&mut self.effects);
        self.partial.commit_into(task, breakdown, &mut effects);
        self.candidates.remove(task.index() as u32);
        if self.config.flavor == OnlineFlavor::MemHeft {
            self.ready_positions.remove(self.position_of[task.index()]);
        }
        for &child in &effects.newly_ready {
            if self.arrived[child.index()] {
                self.candidates.insert(child.index() as u32);
                if self.config.flavor == OnlineFlavor::MemHeft {
                    self.ready_positions.insert(self.position_of[child.index()]);
                }
            }
        }
        self.cache.apply(&effects);
        self.effects = effects;
        self.push(breakdown.eft, RANK_COMPLETION, Payload::Completion);
    }

    fn push(&mut self, at: f64, rank: u8, payload: Payload) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            at: F64Ord(at),
            rank,
            seq: self.seq,
            payload,
        }));
    }
}

/// The registry face of the online layer: solves by replaying the
/// whole-DAG-at-`t = 0` trace with re-plan-on-every-arrival, which makes it
/// exactly the corresponding static heuristic (the oracle the equivalence
/// tests pin down) while exercising the full online code path.
#[derive(Debug, Clone, Copy)]
pub struct OnlineSolver {
    config: OnlineConfig,
}

impl OnlineSolver {
    /// An online solver with the given config (the registry entries use the
    /// every-arrival policy).
    pub fn new(config: OnlineConfig) -> Self {
        OnlineSolver { config }
    }

    /// Online MemHEFT with re-plan-on-every-arrival.
    pub fn memheft() -> Self {
        Self::new(OnlineConfig::new(
            OnlineFlavor::MemHeft,
            ReplanPolicy::EveryArrival,
        ))
    }

    /// Online MemMinMin with re-plan-on-every-arrival.
    pub fn memminmin() -> Self {
        Self::new(OnlineConfig::new(
            OnlineFlavor::MemMinMin,
            ReplanPolicy::EveryArrival,
        ))
    }

    /// The replay configuration this solver uses.
    pub fn config(&self) -> OnlineConfig {
        self.config
    }
}

impl Solver for OnlineSolver {
    fn name(&self) -> &str {
        match self.config.flavor {
            OnlineFlavor::MemHeft => "Online(MemHEFT)",
            OnlineFlavor::MemMinMin => "Online(MemMinMin)",
        }
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        let trace = ArrivalTrace::at_once(graph.n_tasks());
        match replay(graph, platform, &trace, self.config, ctx) {
            Ok(outcome) => {
                SolveOutcome::with_schedule(outcome.schedule, OptimalityStatus::Heuristic, 0)
            }
            Err(e) => SolveOutcome::from_heuristic(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memheft::MemHeft;
    use crate::memminmin::MemMinMin;
    use crate::traits::Scheduler;
    use mals_gen::{dex, ArrivalProcess, DaggenParams, WeightRanges};
    use mals_sim::validate;
    use mals_util::{ParallelConfig, Pcg64, WorkerPool};

    fn sample_graph(seed: u64) -> TaskGraph {
        let mut rng = Pcg64::new(seed);
        mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        )
    }

    fn every_arrival(flavor: OnlineFlavor) -> OnlineConfig {
        OnlineConfig::new(flavor, ReplanPolicy::EveryArrival)
    }

    #[test]
    fn at_once_replay_equals_static_memheft_on_dex() {
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let static_schedule = MemHeft::new().schedule(&g, &platform).unwrap();
        let trace = ArrivalTrace::at_once(g.n_tasks());
        let outcome = replay(
            &g,
            &platform,
            &trace,
            every_arrival(OnlineFlavor::MemHeft),
            &SolveCtx::sequential(),
        )
        .unwrap();
        assert_eq!(outcome.schedule, static_schedule);
        assert_eq!(outcome.arrivals, 1);
        assert_eq!(outcome.completions as usize, g.n_tasks());
    }

    #[test]
    fn at_once_replay_equals_static_memminmin_on_random_graphs() {
        for seed in [1, 2, 3] {
            let g = sample_graph(seed);
            let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
            let static_schedule = MemMinMin::new().schedule(&g, &platform).unwrap();
            let trace = ArrivalTrace::at_once(g.n_tasks());
            let outcome = replay(
                &g,
                &platform,
                &trace,
                every_arrival(OnlineFlavor::MemMinMin),
                &SolveCtx::sequential(),
            )
            .unwrap();
            assert_eq!(outcome.schedule, static_schedule, "seed {seed}");
        }
    }

    #[test]
    fn replay_is_thread_invariant() {
        let g = sample_graph(10);
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let trace = ArrivalProcess::Poisson { rate: 0.7 }.generate(&g, 5);
        for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
            let sequential = replay(
                &g,
                &platform,
                &trace,
                every_arrival(flavor),
                &SolveCtx::sequential(),
            )
            .unwrap();
            for threads in [2, 4] {
                let pool = WorkerPool::new(ParallelConfig::with_threads(threads));
                let ctx = SolveCtx::pooled(Default::default(), &pool);
                let pooled = replay(&g, &platform, &trace, every_arrival(flavor), &ctx).unwrap();
                assert_eq!(
                    pooled.schedule, sequential.schedule,
                    "{flavor:?} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn poisson_replay_is_valid_and_deterministic() {
        let g = sample_graph(21);
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let trace = ArrivalProcess::Poisson { rate: 1.5 }.generate(&g, 77);
        for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
            let a = replay(
                &g,
                &platform,
                &trace,
                every_arrival(flavor),
                &SolveCtx::sequential(),
            )
            .unwrap();
            let b = replay(
                &g,
                &platform,
                &trace,
                every_arrival(flavor),
                &SolveCtx::sequential(),
            )
            .unwrap();
            assert_eq!(a.schedule, b.schedule, "{flavor:?} replay not reproducible");
            let report = validate(&g, &platform, &a.schedule);
            assert!(report.is_valid(), "{flavor:?}: {:?}", report.errors);
            // No task may start before it arrived.
            let mut released = vec![0.0f64; g.n_tasks()];
            for event in trace.events() {
                for &t in &event.tasks {
                    released[t.index()] = event.at;
                }
            }
            for t in g.task_ids() {
                let placement = a.schedule.task(t).unwrap();
                assert!(
                    placement.start >= released[t.index()] - 1e-12,
                    "task {t} started at {} but arrived at {}",
                    placement.start,
                    released[t.index()]
                );
            }
        }
    }

    #[test]
    fn every_k_and_horizon_policies_produce_valid_schedules() {
        let g = sample_graph(33);
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let trace = ArrivalProcess::Bursty {
            batch: 4,
            rate: 2.0,
        }
        .generate(&g, 3);
        for policy in [
            ReplanPolicy::EveryK(1),
            ReplanPolicy::EveryK(5),
            ReplanPolicy::Horizon(0.0),
            ReplanPolicy::Horizon(2.5),
        ] {
            for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
                let outcome = replay(
                    &g,
                    &platform,
                    &trace,
                    OnlineConfig::new(flavor, policy),
                    &SolveCtx::sequential(),
                )
                .unwrap();
                let report = validate(&g, &platform, &outcome.schedule);
                assert!(
                    report.is_valid(),
                    "{flavor:?}/{policy:?}: {:?}",
                    report.errors
                );
                assert!(outcome.replans >= 1);
            }
        }
    }

    #[test]
    fn infeasible_instances_report_static_counts() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let static_err = MemHeft::new().schedule(&g, &platform).unwrap_err();
        let trace = ArrivalTrace::at_once(g.n_tasks());
        let online_err = replay(
            &g,
            &platform,
            &trace,
            every_arrival(OnlineFlavor::MemHeft),
            &SolveCtx::sequential(),
        )
        .unwrap_err();
        assert_eq!(online_err, static_err);
    }

    #[test]
    fn mismatched_trace_is_rejected() {
        let (g, _) = dex();
        let platform = Platform::single_pair(10.0, 10.0);
        let trace = ArrivalTrace::at_once(g.n_tasks() + 1);
        let err = replay(
            &g,
            &platform,
            &trace,
            every_arrival(OnlineFlavor::MemHeft),
            &SolveCtx::sequential(),
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidTrace(_)));
        assert!(err.to_string().contains("trace"));
    }

    #[test]
    fn policy_parse_round_trips() {
        for policy in [
            ReplanPolicy::EveryArrival,
            ReplanPolicy::EveryK(7),
            ReplanPolicy::Horizon(1.5),
        ] {
            assert_eq!(ReplanPolicy::parse(&policy.key()), Some(policy));
        }
        assert_eq!(ReplanPolicy::parse("every-k:0"), None);
        assert_eq!(ReplanPolicy::parse("horizon:-1"), None);
        assert_eq!(ReplanPolicy::parse("bogus"), None);
        assert_eq!(OnlineFlavor::parse("memheft"), Some(OnlineFlavor::MemHeft));
        assert_eq!(
            OnlineFlavor::parse("memminmin"),
            Some(OnlineFlavor::MemMinMin)
        );
        assert_eq!(OnlineFlavor::parse("heft"), None);
    }

    #[test]
    fn online_solver_matches_static_through_solver_trait() {
        let g = sample_graph(44);
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let ctx = SolveCtx::sequential();
        let static_outcome = Solver::solve(&MemHeft::new(), &g, &platform, &ctx);
        let online_outcome = OnlineSolver::memheft().solve(&g, &platform, &ctx);
        assert_eq!(online_outcome.status, OptimalityStatus::Heuristic);
        assert_eq!(online_outcome.schedule, static_outcome.schedule);
        assert_eq!(OnlineSolver::memheft().name(), "Online(MemHEFT)");
        assert_eq!(OnlineSolver::memminmin().name(), "Online(MemMinMin)");
    }

    #[test]
    fn replan_accounting_is_populated() {
        let g = sample_graph(55);
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let trace = ArrivalProcess::Poisson { rate: 2.0 }.generate(&g, 8);
        let outcome = replay(
            &g,
            &platform,
            &trace,
            every_arrival(OnlineFlavor::MemMinMin),
            &SolveCtx::sequential(),
        )
        .unwrap();
        assert_eq!(outcome.arrivals as usize, trace.events().len());
        assert_eq!(outcome.completions as usize, g.n_tasks());
        // Every arrival replans, plus the final drain.
        assert_eq!(outcome.replans, outcome.arrivals + 1);
        assert_eq!(outcome.events, outcome.arrivals + outcome.completions);
        assert!(outcome.replan_total >= outcome.replan_max);
        assert!(outcome.replan_mean_secs() >= 0.0);
        assert!(outcome.virtual_end > 0.0);
        assert!(outcome.makespan > 0.0);
    }
}
