//! The generic memory-oblivious adapter and the HEFT / MinMin baselines.
//!
//! The paper's memory-oblivious baselines are *literally* the memory-aware
//! heuristics run with both capacities set to `+∞`: HEFT is MemHEFT on the
//! unbounded platform, MinMin is MemMinMin on the unbounded platform. This
//! used to be two copy-pasted wrapper structs; [`Unbounded`] is the one
//! generic adapter that replaces them — it forwards every solve to its inner
//! scheduler with [`Platform::unbounded`] substituted, under a display name
//! of its own.
//!
//! [`Heft`] and [`MinMin`] are type aliases over the adapter, with inherent
//! constructors so existing call sites (`Heft::new()`,
//! `MinMin::with_parallelism(..)`) keep working unchanged. The solver
//! registry builds its `"heft"` / `"minmin"` entries from the same adapter.

use crate::error::ScheduleError;
use crate::memheft::MemHeft;
use crate::memminmin::MemMinMin;
use crate::traits::Scheduler;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::ParallelConfig;

/// Runs any scheduler with both memory capacities set to `+∞`, under its own
/// display name.
#[derive(Debug, Clone, Copy)]
pub struct Unbounded<S> {
    inner: S,
    name: &'static str,
}

impl<S> Unbounded<S> {
    /// Wraps `inner`, reporting `name` as the scheduler name.
    pub fn of(inner: S, name: &'static str) -> Self {
        Unbounded { inner, name }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The display name of the adapter (`"HEFT"`, `"MinMin"`, …).
    pub fn display_name(&self) -> &'static str {
        self.name
    }
}

impl<S: Scheduler> Scheduler for Unbounded<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        self.inner.schedule(graph, &platform.unbounded())
    }
}

/// The memory-oblivious HEFT baseline (Topcuoglu et al. 2002): MemHEFT on
/// the unbounded platform. The schedule it produces ignores the platform's
/// memory bounds; the experiment drivers measure its memory peaks with
/// `mals_sim::memory_peaks` and use them as the normalisation baseline of
/// Figures 10 and 12.
pub type Heft = Unbounded<MemHeft>;

/// The memory-oblivious MinMin baseline (Braun et al. 2001): MemMinMin on
/// the unbounded platform.
pub type MinMin = Unbounded<MemMinMin>;

impl Unbounded<MemHeft> {
    /// Creates a (sequential) HEFT scheduler.
    pub fn new() -> Heft {
        Unbounded::of(MemHeft::new(), "HEFT")
    }

    /// Creates a HEFT scheduler whose selection loop evaluates ready
    /// candidates with the given thread configuration (same engine as
    /// [`MemHeft`], so the schedule is identical for every thread count).
    pub fn with_parallelism(parallel: ParallelConfig) -> Heft {
        Unbounded::of(MemHeft::with_parallelism(parallel), "HEFT")
    }
}

impl Default for Unbounded<MemHeft> {
    fn default() -> Self {
        Heft::new()
    }
}

impl Unbounded<MemMinMin> {
    /// Creates a (sequential) MinMin scheduler.
    pub fn new() -> MinMin {
        Unbounded::of(MemMinMin::new(), "MinMin")
    }

    /// Creates a MinMin scheduler whose ready-list evaluation uses the given
    /// thread configuration (same engine as [`MemMinMin`], so the schedule
    /// is identical for every thread count).
    pub fn with_parallelism(parallel: ParallelConfig) -> MinMin {
        Unbounded::of(MemMinMin::with_parallelism(parallel), "MinMin")
    }
}

impl Default for Unbounded<MemMinMin> {
    fn default() -> Self {
        MinMin::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::{memory_peaks, validate};
    use mals_util::Pcg64;

    #[test]
    fn heft_ignores_memory_bounds() {
        let (g, _) = dex();
        // A bound of 1 makes the graph impossible for MemHEFT, but HEFT does
        // not care: it always succeeds.
        let platform = Platform::single_pair(1.0, 1.0);
        let s = Heft::new().schedule(&g, &platform).unwrap();
        assert!(s.is_complete(&g));
        // Validation against the *unbounded* platform passes; against the
        // bounded one the memory constraint is (expectedly) violated.
        let unbounded_report = validate(&g, &platform.unbounded(), &s);
        assert!(unbounded_report.is_valid(), "{:?}", unbounded_report.errors);
    }

    #[test]
    fn minmin_ignores_memory_bounds() {
        let (g, _) = dex();
        let platform = Platform::single_pair(1.0, 1.0);
        let s = MinMin::new().schedule(&g, &platform).unwrap();
        assert!(s.is_complete(&g));
        assert!(validate(&g, &platform.unbounded(), &s).is_valid());
    }

    #[test]
    fn heft_equals_memheft_with_infinite_memory() {
        let mut rng = Pcg64::new(5);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::new(2, 1, 40.0, 40.0).unwrap();
        let heft = Heft::new().schedule(&g, &platform).unwrap();
        let memheft_unbounded = MemHeft::new().schedule(&g, &platform.unbounded()).unwrap();
        assert_eq!(heft, memheft_unbounded);
    }

    #[test]
    fn minmin_equals_memminmin_with_infinite_memory() {
        let (g, _) = dex();
        let platform = Platform::single_pair(3.0, 3.0);
        let a = MinMin::new().schedule(&g, &platform).unwrap();
        let b = MemMinMin::new()
            .schedule(&g, &platform.unbounded())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heft_memory_peaks_are_positive_for_dex() {
        let (g, _) = dex();
        let platform = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let s = Heft::new().schedule(&g, &platform).unwrap();
        let peaks = memory_peaks(&g, &platform, &s);
        assert!(peaks.max() > 0.0);
        // The total file volume of D_ex is 6: no schedule can exceed that.
        assert!(peaks.blue <= 6.0 && peaks.red <= 6.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Heft::new().name(), "HEFT");
        assert_eq!(MinMin::new().name(), "MinMin");
        assert_eq!(Heft::default().name(), "HEFT");
        assert_eq!(MinMin::default().name(), "MinMin");
        assert_eq!(
            Unbounded::of(MemHeft::new(), "custom").display_name(),
            "custom"
        );
    }
}
