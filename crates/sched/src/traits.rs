//! The common interface of all schedulers in the workspace.

use crate::error::ScheduleError;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sim::Schedule;

/// A scheduling algorithm mapping a task graph onto a dual-memory platform.
///
/// Implementations must produce schedules that satisfy the flow, resource and
/// memory constraints of the model (this is checked independently by
/// `mals_sim::validate` in the test suites), or return
/// [`ScheduleError::Infeasible`] when they cannot.
pub trait Scheduler {
    /// A short human-readable name, used in experiment outputs
    /// (e.g. `"MemHEFT"`).
    fn name(&self) -> &'static str;

    /// Computes a schedule of `graph` on `platform`.
    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError>;
}

/// Blanket implementation so `&S` can be used wherever a `Scheduler` is
/// expected (e.g. storing `&dyn Scheduler` lists in the experiment drivers).
impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        (**self).schedule(graph, platform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Scheduler for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn schedule(
            &self,
            graph: &TaskGraph,
            _platform: &Platform,
        ) -> Result<Schedule, ScheduleError> {
            Ok(Schedule::for_graph(graph))
        }
    }

    #[test]
    fn reference_impl_delegates() {
        let d = Dummy;
        let r: &dyn Scheduler = &d;
        assert_eq!(r.name(), "dummy");
        let g = TaskGraph::new();
        let p = Platform::default();
        assert!(Scheduler::schedule(&r, &g, &p).is_ok());
    }
}
