//! The scheduling engine shared by every list scheduler in the workspace.
//!
//! [`PartialSchedule`] owns the state of an in-construction schedule:
//!
//! * per-processor availability ([`ProcessorState`]),
//! * per-memory usage profiles ([`MemoryState`]),
//! * the placements committed so far.
//!
//! Its two key operations follow Section 5.1 of the paper:
//!
//! * [`PartialSchedule::evaluate`] computes, for a ready task and a candidate
//!   memory, the four components of the earliest start time —
//!   `resource_EST`, `precedence_EST`, `task_mem_EST`, `comm_mem_EST` — and
//!   the resulting earliest finish time `EFT`, or `None` when the task can
//!   never fit in that memory given the current reservations;
//! * [`PartialSchedule::commit`] places the task at its `EST`, schedules its
//!   incoming cross-memory transfers *as late as possible* and updates the
//!   memory profiles (reserving output files until their consumers are
//!   scheduled, releasing input files when the task completes).
//!
//! MemHEFT and MemMinMin differ only in the order in which they call these
//! two operations; the memory-oblivious HEFT and MinMin baselines call them
//! on a platform whose memory bounds are infinite.

use crate::error::ScheduleError;
use mals_dag::{TaskGraph, TaskId};
use mals_platform::{Memory, MemoryState, Platform, ProcessorState};
use mals_sim::{CommPlacement, Schedule, TaskPlacement};
use mals_util::{ChunkedIndexSet, WorkerPool};

/// Below this many candidate tasks a "parallel" evaluation runs inline on
/// the calling thread: dispatching a handful of microsecond-scale EST
/// evaluations to the pool costs more than it saves. The cutoff changes only
/// where the work runs, never its result. Callers that batch candidates
/// (MemHEFT's block scan) must size their batches at least this large or
/// the pool is never engaged.
pub(crate) const PAR_EVAL_CUTOFF: usize = 16;

/// The decomposition of the earliest start / finish time of a task on a
/// candidate memory (Section 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstBreakdown {
    /// Candidate memory this evaluation refers to.
    pub memory: Memory,
    /// `resource_EST⁽µ⁾`: earliest availability of a processor of `µ`.
    pub resource: f64,
    /// `precedence_EST⁽µ⁾`: all parents finished and their files arrived.
    pub precedence: f64,
    /// `task_mem_EST⁽µ⁾`: earliest time from which the new files of the task
    /// (cross-memory inputs + outputs) fit in `µ` forever.
    pub task_mem: f64,
    /// `comm_mem_EST⁽µ⁾`: earliest time from which the cross-memory input
    /// files alone fit in `µ` forever.
    pub comm_mem: f64,
    /// `C⁽µ⁾_i`: the longest incoming cross-memory transfer (0 if none); the
    /// transfers are scheduled inside the window `[EST − C⁽µ⁾_i, EST)`.
    pub comm_window: f64,
    /// The earliest start time: `max(resource, precedence, task_mem,
    /// comm_mem + C⁽µ⁾_i)`.
    pub est: f64,
    /// The earliest finish time: `EST + W⁽µ⁾_i`.
    pub eft: f64,
}

/// What a [`PartialSchedule::commit`] changed, in exactly the terms an
/// incremental driver needs:
///
/// * which per-memory state (processor availability and/or usage profile)
///   was touched — the commit's own memory always is; the *other* memory only
///   when a cross-memory transfer released a file there;
/// * which tasks became ready (their cached evaluations cannot exist yet —
///   a task is evaluated only once ready, and it was not ready before).
///
/// An EST cache keyed on these facts ([`crate::EstCache`]) is exact: an
/// evaluation `evaluate(task, µ)` reads only `µ`'s processor/memory state and
/// the placements of `task`'s (already committed) parents.
#[derive(Debug, Clone)]
pub struct CommitEffects {
    /// The task that was committed.
    pub task: TaskId,
    /// The memory it was placed on.
    pub memory: Memory,
    /// `true` when the commit also mutated the *other* memory's profile
    /// (a cross-memory transfer released the file from the producer side).
    pub other_memory_touched: bool,
    /// Tasks whose last parent this commit scheduled, in child-list order.
    pub newly_ready: Vec<TaskId>,
}

impl CommitEffects {
    /// A blank effects record to pass to [`PartialSchedule::commit_into`];
    /// reuse one per schedule so the `newly_ready` vector is allocated once.
    pub fn empty() -> Self {
        CommitEffects {
            task: TaskId::from_index(0),
            memory: Memory::Blue,
            other_memory_touched: false,
            newly_ready: Vec::new(),
        }
    }
}

impl Default for CommitEffects {
    fn default() -> Self {
        Self::empty()
    }
}

/// State of a schedule under construction.
#[derive(Debug, Clone)]
pub struct PartialSchedule<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    procs: ProcessorState,
    mem: MemoryState,
    schedule: Schedule,
    assigned_memory: Vec<Option<Memory>>,
    finish: Vec<f64>,
    remaining_parents: Vec<usize>,
    /// Indices of the ready tasks, kept incrementally by `commit` so no loop
    /// ever rescans the whole task set to find them. Chunked storage
    /// ([`ChunkedIndexSet`]): a 10⁵-task layered DAG keeps thousands of
    /// tasks ready at once, where a flat sorted vector's per-commit
    /// `Vec::insert` memmove becomes the dominant cost.
    ready: ChunkedIndexSet,
    n_scheduled: usize,
}

impl<'a> PartialSchedule<'a> {
    /// Creates an empty partial schedule for `graph` on `platform`.
    pub fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Self {
        let remaining_parents: Vec<usize> = graph.task_ids().map(|t| graph.in_degree(t)).collect();
        let ready = ChunkedIndexSet::from_sorted(
            remaining_parents
                .iter()
                .enumerate()
                .filter(|&(_, &parents)| parents == 0)
                .map(|(i, _)| i as u32),
        );
        PartialSchedule {
            graph,
            platform,
            procs: ProcessorState::new(platform),
            mem: MemoryState::new(platform),
            schedule: Schedule::for_graph(graph),
            assigned_memory: vec![None; graph.n_tasks()],
            finish: vec![0.0; graph.n_tasks()],
            remaining_parents,
            ready,
            n_scheduled: 0,
        }
    }

    /// The task graph being scheduled.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The target platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Number of tasks already placed.
    pub fn n_scheduled(&self) -> usize {
        self.n_scheduled
    }

    /// Number of tasks not placed yet.
    pub fn n_remaining(&self) -> usize {
        self.graph.n_tasks() - self.n_scheduled
    }

    /// Returns `true` once every task is placed.
    pub fn is_complete(&self) -> bool {
        self.n_remaining() == 0
    }

    /// Returns `true` if `task` has been placed.
    pub fn is_scheduled(&self, task: TaskId) -> bool {
        self.assigned_memory[task.index()].is_some()
    }

    /// Returns `true` if `task` is ready: not placed yet and all its parents
    /// placed.
    pub fn is_ready(&self, task: TaskId) -> bool {
        !self.is_scheduled(task) && self.remaining_parents[task.index()] == 0
    }

    /// All ready tasks, in task-id order (the `available_tasks` set of
    /// MemMinMin). `O(|ready|)` — the set is maintained incrementally.
    pub fn ready_tasks(&self) -> Vec<TaskId> {
        self.ready_iter().collect()
    }

    /// Iterates the ready tasks in task-id order without allocating (the
    /// allocation-free counterpart of [`PartialSchedule::ready_tasks`]);
    /// callers that need a materialised list extend a reusable buffer.
    pub fn ready_iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.ready.iter().map(|i| TaskId::from_index(i as usize))
    }

    /// Number of ready tasks.
    pub fn n_ready(&self) -> usize {
        self.ready.len()
    }

    /// Actual finish time of a placed task.
    pub fn finish_time(&self, task: TaskId) -> Option<f64> {
        self.is_scheduled(task).then(|| self.finish[task.index()])
    }

    /// Memory a placed task was assigned to.
    pub fn memory_of(&self, task: TaskId) -> Option<Memory> {
        self.assigned_memory[task.index()]
    }

    /// Makespan of the placements committed so far.
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }

    /// Read-only access to the memory profiles (used by tests and tracing).
    pub fn memory_state(&self) -> &MemoryState {
        &self.mem
    }

    /// Read-only access to the processor availabilities.
    pub fn processor_state(&self) -> &ProcessorState {
        &self.procs
    }

    /// Consumes the partial schedule and returns the placements committed so
    /// far (complete or not).
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// Consumes the partial schedule; returns the schedule if complete, or
    /// the paper's "cannot be processed within the memory bounds" error.
    pub fn finish_or_error(self) -> Result<Schedule, ScheduleError> {
        if self.is_complete() {
            Ok(self.schedule)
        } else {
            Err(ScheduleError::Infeasible {
                scheduled: self.n_scheduled,
                total: self.graph.n_tasks(),
            })
        }
    }

    /// Sum of the input files of `task` that would have to be brought into
    /// `mem` (files produced on the other memory).
    fn incoming_cross_size(&self, task: TaskId, mem: Memory) -> f64 {
        self.graph
            .in_edges(task)
            .iter()
            .filter(|&&e| {
                let src = self.graph.edge(e).src;
                self.assigned_memory[src.index()] == Some(mem.other())
            })
            .map(|&e| self.graph.edge(e).size)
            .sum()
    }

    /// Longest incoming cross-memory transfer of `task` if placed on `mem`
    /// (`C⁽µ⁾_i` in the paper).
    fn comm_window(&self, task: TaskId, mem: Memory) -> f64 {
        self.graph
            .in_edges(task)
            .iter()
            .filter(|&&e| {
                let src = self.graph.edge(e).src;
                self.assigned_memory[src.index()] == Some(mem.other())
            })
            .map(|&e| self.graph.edge(e).comm_cost)
            .fold(0.0, f64::max)
    }

    /// Evaluates the earliest start / finish time of `task` on `mem`.
    ///
    /// Returns `None` when the task is not ready (some parent unplaced) or
    /// when its memory requirement can never be satisfied on `mem` given the
    /// current reservations (the paper's `EFT = +∞` case).
    pub fn evaluate(&self, task: TaskId, mem: Memory) -> Option<EstBreakdown> {
        if !self.is_ready(task) {
            return None;
        }
        let data = self.graph.task(task);

        // resource_EST: a processor of `mem` must be free.
        let resource = self.procs.earliest_available(mem);

        // precedence_EST: every parent finished, plus the transfer time for
        // parents hosted on the other memory.
        let mut precedence = 0.0f64;
        for &e in self.graph.in_edges(task) {
            let edge = self.graph.edge(e);
            let parent_mem = self.assigned_memory[edge.src.index()]
                .expect("ready task implies scheduled parents");
            let arrival = self.finish[edge.src.index()]
                + if parent_mem == mem {
                    0.0
                } else {
                    edge.comm_cost
                };
            precedence = precedence.max(arrival);
        }

        // Memory requirements: new files that must fit in `mem`.
        let cross_inputs = self.incoming_cross_size(task, mem);
        let outputs = self.graph.output_size(task);
        let task_need = cross_inputs + outputs;
        let comm_window = self.comm_window(task, mem);

        let task_mem = self.mem.earliest_fit(mem, 0.0, task_need)?;
        let comm_mem = self.mem.earliest_fit(mem, 0.0, cross_inputs)?;

        let est = resource
            .max(precedence)
            .max(task_mem)
            .max(comm_mem + comm_window);
        let eft = est + data.work_on(mem.is_blue());
        Some(EstBreakdown {
            memory: mem,
            resource,
            precedence,
            task_mem,
            comm_mem,
            comm_window,
            est,
            eft,
        })
    }

    /// Evaluates `task` on both memories, returning the per-memory
    /// breakdowns as `[blue, red]` (the cacheable unit of the incremental
    /// engine).
    pub fn evaluate_pair(&self, task: TaskId) -> [Option<EstBreakdown>; 2] {
        [
            self.evaluate(task, Memory::Blue),
            self.evaluate(task, Memory::Red),
        ]
    }

    /// Combines a `[blue, red]` evaluation pair into the preferred
    /// breakdown: smaller EFT wins, exact ties go to the blue memory unless
    /// `prefer_red` is set (the ablation variants exercise both policies).
    pub fn combine_pair(pair: [Option<EstBreakdown>; 2], prefer_red: bool) -> Option<EstBreakdown> {
        let [blue, red] = pair;
        match (blue, red) {
            (Some(b), Some(r)) => Some(match prefer_red {
                false => {
                    if b.eft <= r.eft {
                        b
                    } else {
                        r
                    }
                }
                true => {
                    if r.eft <= b.eft {
                        r
                    } else {
                        b
                    }
                }
            }),
            (Some(b), None) => Some(b),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    /// Evaluates `task` on both memories and returns the breakdown with the
    /// smallest EFT (ties broken in favour of the blue memory), or `None` if
    /// the task fits on neither memory.
    pub fn evaluate_best(&self, task: TaskId) -> Option<EstBreakdown> {
        self.evaluate_best_with(task, false)
    }

    /// Like [`PartialSchedule::evaluate_best`], but EFT ties between the two
    /// memories are broken in favour of the red memory when `prefer_red` is
    /// set.
    pub fn evaluate_best_with(&self, task: TaskId, prefer_red: bool) -> Option<EstBreakdown> {
        Self::combine_pair(self.evaluate_pair(task), prefer_red)
    }

    /// Evaluates [`PartialSchedule::evaluate_best_with`] for every task in
    /// `tasks`, spreading the evaluations over `pool` and returning the
    /// breakdowns in input order.
    ///
    /// Every evaluation reads the same immutable staircase / processor state,
    /// so the result is bit-identical to the sequential
    /// `tasks.iter().map(...)` loop regardless of the thread count or the
    /// partitioning (short lists are evaluated inline — dispatching a
    /// handful of microsecond-scale evaluations costs more than it saves).
    pub fn evaluate_tasks_par(
        &self,
        tasks: &[TaskId],
        prefer_red: bool,
        pool: &WorkerPool,
    ) -> Vec<Option<EstBreakdown>> {
        if pool.threads() <= 1 || tasks.len() < PAR_EVAL_CUTOFF {
            tasks
                .iter()
                .map(|&t| self.evaluate_best_with(t, prefer_red))
                .collect()
        } else {
            pool.run_indexed(tasks.len(), |i| {
                self.evaluate_best_with(tasks[i], prefer_red)
            })
        }
    }

    /// [`PartialSchedule::evaluate_pair`] for every task in `tasks`, spread
    /// over `pool`, in input order (the cache-fill fan-out of the
    /// incremental engine; short lists are evaluated inline, like
    /// [`PartialSchedule::evaluate_tasks_par`]).
    pub fn evaluate_pairs_par(
        &self,
        tasks: &[TaskId],
        pool: &WorkerPool,
    ) -> Vec<[Option<EstBreakdown>; 2]> {
        if pool.threads() <= 1 || tasks.len() < PAR_EVAL_CUTOFF {
            tasks.iter().map(|&t| self.evaluate_pair(t)).collect()
        } else {
            pool.run_indexed(tasks.len(), |i| self.evaluate_pair(tasks[i]))
        }
    }

    /// [`PartialSchedule::evaluate_pairs_par`] into a caller-owned buffer:
    /// `out` is cleared and refilled in input order, reusing its capacity.
    /// The solver loops call this with a per-schedule scratch vector so the
    /// per-step fan-out allocates nothing in steady state; the results are
    /// bit-identical to [`PartialSchedule::evaluate_pairs_par`].
    pub fn evaluate_pairs_into(
        &self,
        tasks: &[TaskId],
        pool: &WorkerPool,
        out: &mut Vec<[Option<EstBreakdown>; 2]>,
    ) {
        if pool.threads() <= 1 || tasks.len() < PAR_EVAL_CUTOFF {
            out.clear();
            out.extend(tasks.iter().map(|&t| self.evaluate_pair(t)));
        } else {
            pool.run_indexed_into(tasks.len(), |i| self.evaluate_pair(tasks[i]), out);
        }
    }

    /// Evaluates every ready task on both memories concurrently and returns
    /// `(task, best breakdown)` pairs in task-id order (the parallel
    /// counterpart of mapping [`PartialSchedule::evaluate_best`] over
    /// [`PartialSchedule::ready_tasks`]).
    pub fn evaluate_ready_par(&self, pool: &WorkerPool) -> Vec<(TaskId, Option<EstBreakdown>)> {
        let ready = self.ready_tasks();
        let breakdowns = self.evaluate_tasks_par(&ready, false, pool);
        ready.into_iter().zip(breakdowns).collect()
    }

    /// The ready task with the globally smallest EFT and its breakdown — the
    /// selection step of MemMinMin — with the EST evaluations spread over
    /// `pool`. The reduction runs on the calling thread in task-id order
    /// with the exact comparison of the sequential path, so the choice is
    /// bit-identical to [`PartialSchedule::best_ready_choice`].
    pub fn evaluate_best_par(&self, pool: &WorkerPool) -> Option<(TaskId, EstBreakdown)> {
        let ready = self.ready_tasks();
        let breakdowns = self.evaluate_tasks_par(&ready, false, pool);
        let mut best: Option<(TaskId, EstBreakdown)> = None;
        for (&task, bd) in ready.iter().zip(breakdowns) {
            if let Some(bd) = bd {
                if Self::is_better_choice(&best, task, &bd) {
                    best = Some((task, bd));
                }
            }
        }
        best
    }

    /// Sequential counterpart of [`PartialSchedule::evaluate_best_par`]: one
    /// MemMinMin selection step on the calling thread.
    pub fn best_ready_choice(&self) -> Option<(TaskId, EstBreakdown)> {
        let mut best: Option<(TaskId, EstBreakdown)> = None;
        for task in self.ready_iter() {
            if let Some(bd) = self.evaluate_best(task) {
                if Self::is_better_choice(&best, task, &bd) {
                    best = Some((task, bd));
                }
            }
        }
        best
    }

    /// The (EFT, task-index) ordering shared by the sequential and parallel
    /// MemMinMin selection: smaller EFT wins, near-ties (within
    /// [`mals_util::EPSILON`]) go to the smaller task id.
    pub(crate) fn is_better_choice(
        best: &Option<(TaskId, EstBreakdown)>,
        task: TaskId,
        bd: &EstBreakdown,
    ) -> bool {
        match best {
            None => true,
            Some((best_task, best_bd)) => {
                bd.eft < best_bd.eft - mals_util::EPSILON
                    || (mals_util::approx_eq(bd.eft, best_bd.eft)
                        && task.index() < best_task.index())
            }
        }
    }

    /// Commits the placement described by `breakdown` (obtained from
    /// [`PartialSchedule::evaluate`] on the *current* state): places the task
    /// on the best-fitting processor of the chosen memory, schedules its
    /// incoming cross-memory transfers as late as possible, and updates the
    /// memory profiles.
    ///
    /// Returns the [`CommitEffects`] — which per-memory state the commit
    /// touched and which tasks became ready — so incremental drivers can
    /// invalidate exactly the evaluations this placement stales.
    ///
    /// # Panics
    /// Panics if the task is not ready or the breakdown is stale (no
    /// processor available at the chosen start time).
    pub fn commit(&mut self, task: TaskId, breakdown: &EstBreakdown) -> CommitEffects {
        let mut effects = CommitEffects::empty();
        self.commit_into(task, breakdown, &mut effects);
        effects
    }

    /// [`PartialSchedule::commit`] into a caller-owned [`CommitEffects`]:
    /// `effects` is overwritten (its `newly_ready` vector cleared and
    /// refilled, reusing its capacity). The solver loops hold one effects
    /// record per schedule, so steady state commits allocate nothing.
    ///
    /// # Panics
    /// Panics if the task is not ready or the breakdown is stale (no
    /// processor available at the chosen start time).
    pub fn commit_into(
        &mut self,
        task: TaskId,
        breakdown: &EstBreakdown,
        effects: &mut CommitEffects,
    ) {
        assert!(self.is_ready(task), "commit on a non-ready task");
        let mem = breakdown.memory;
        let est = breakdown.est;
        let eft = breakdown.eft;
        let mut other_memory_touched = false;

        // Processor selection: the available processor wasting the least idle
        // time (paper: minimise `EST(i, µ) − avail_proc(p)`).
        let proc = self
            .procs
            .best_proc(mem, est)
            .expect("evaluate guarantees a processor is available by EST");
        self.procs.assign(proc, eft);
        self.schedule.place_task(TaskPlacement {
            task,
            proc,
            start: est,
            finish: eft,
        });

        // Incoming files.
        for &e in self.graph.in_edges(task) {
            let edge = self.graph.edge(e);
            let parent_mem = self.assigned_memory[edge.src.index()]
                .expect("ready task implies scheduled parents");
            if parent_mem == mem {
                // The file was reserved in `mem` when the parent was placed;
                // it is consumed (discarded) when this task completes.
                self.mem.release_from(mem, eft, edge.size);
            } else {
                // Cross-memory transfer, scheduled as late as possible: it
                // completes exactly at EST. The file occupies the destination
                // memory from the (conservative) start of the transfer window
                // until this task completes, and leaves the source memory
                // when the transfer completes.
                let window_start = est - breakdown.comm_window;
                let transfer_start = est - edge.comm_cost;
                self.schedule.place_comm(CommPlacement {
                    edge: e,
                    start: transfer_start,
                    finish: est,
                });
                self.mem.reserve_range(mem, window_start, eft, edge.size);
                self.mem.release_from(parent_mem, est, edge.size);
                other_memory_touched |= edge.size != 0.0;
            }
        }

        // Output files: resident in `mem` from the start of the task until
        // their consumers are scheduled (released by the consumers' commits).
        let outputs = self.graph.output_size(task);
        self.mem.reserve_from(mem, est, outputs);

        // Bookkeeping.
        self.assigned_memory[task.index()] = Some(mem);
        self.finish[task.index()] = eft;
        self.n_scheduled += 1;
        self.ready.remove(task.index() as u32);
        effects.task = task;
        effects.memory = mem;
        effects.other_memory_touched = other_memory_touched;
        effects.newly_ready.clear();
        for child in self.graph.children(task) {
            self.remaining_parents[child.index()] -= 1;
            if self.remaining_parents[child.index()] == 0 {
                self.ready.insert(child.index() as u32);
                effects.newly_ready.push(child);
            }
        }

        debug_assert!(
            self.mem.check_invariants().is_ok(),
            "memory invariant violated after committing {task}: {:?}",
            self.mem.check_invariants()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_util::approx_eq;

    fn single_pair(mem: f64) -> Platform {
        Platform::single_pair(mem, mem)
    }

    #[test]
    fn initial_state() {
        let (g, [t1, ..]) = dex();
        let p = single_pair(10.0);
        let ps = PartialSchedule::new(&g, &p);
        assert_eq!(ps.n_scheduled(), 0);
        assert_eq!(ps.n_remaining(), 4);
        assert!(!ps.is_complete());
        assert!(ps.is_ready(t1));
        assert_eq!(ps.ready_tasks(), vec![t1]);
    }

    #[test]
    fn evaluate_source_task() {
        let (g, [t1, ..]) = dex();
        let p = single_pair(10.0);
        let ps = PartialSchedule::new(&g, &p);
        let blue = ps.evaluate(t1, Memory::Blue).unwrap();
        assert_eq!(blue.est, 0.0);
        assert_eq!(blue.eft, 3.0); // W1(T1) = 3
        let red = ps.evaluate(t1, Memory::Red).unwrap();
        assert_eq!(red.eft, 1.0); // W2(T1) = 1
                                  // Best memory for T1 is red.
        assert_eq!(ps.evaluate_best(t1).unwrap().memory, Memory::Red);
    }

    #[test]
    fn evaluate_not_ready_returns_none() {
        let (g, [_, t2, ..]) = dex();
        let p = single_pair(10.0);
        let ps = PartialSchedule::new(&g, &p);
        assert!(ps.evaluate(t2, Memory::Blue).is_none());
        assert!(ps.evaluate_best(t2).is_none());
    }

    #[test]
    fn memory_too_small_returns_none() {
        // T1's outputs are F12 + F13 = 3 units: a memory of 2 can never host it.
        let (g, [t1, ..]) = dex();
        let p = single_pair(2.0);
        let ps = PartialSchedule::new(&g, &p);
        assert!(ps.evaluate(t1, Memory::Blue).is_none());
        assert!(ps.evaluate(t1, Memory::Red).is_none());
    }

    #[test]
    fn commit_updates_state_and_readiness() {
        let (g, [t1, t2, t3, _t4]) = dex();
        let p = single_pair(10.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let bd = ps.evaluate(t1, Memory::Red).unwrap();
        ps.commit(t1, &bd);
        assert!(ps.is_scheduled(t1));
        assert_eq!(ps.finish_time(t1), Some(1.0));
        assert_eq!(ps.memory_of(t1), Some(Memory::Red));
        assert_eq!(ps.n_scheduled(), 1);
        // T2 and T3 become ready, T4 does not.
        assert!(ps.is_ready(t2) && ps.is_ready(t3));
        assert_eq!(ps.ready_tasks(), vec![t2, t3]);
        // T1's outputs (3 units) are now resident in red memory.
        assert!(approx_eq(ps.memory_state().used_at(Memory::Red, 2.0), 3.0));
        assert!(approx_eq(ps.memory_state().used_at(Memory::Blue, 2.0), 0.0));
    }

    #[test]
    fn cross_memory_child_pays_transfer_and_reserves_both() {
        let (g, [t1, t2, ..]) = dex();
        let p = single_pair(10.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let bd1 = ps.evaluate(t1, Memory::Red).unwrap();
        ps.commit(t1, &bd1);
        // Schedule T2 on blue: the file F12 (1 unit) must cross memories,
        // paying C12 = 1 after T1 completes at t=1.
        let bd2 = ps.evaluate(t2, Memory::Blue).unwrap();
        assert!(approx_eq(bd2.precedence, 1.0 + 1.0));
        assert!(approx_eq(bd2.comm_window, 1.0));
        assert!(approx_eq(bd2.est, 2.0));
        assert!(approx_eq(bd2.eft, 4.0));
        ps.commit(t2, &bd2);
        // The transfer is placed as late as possible: [1, 2).
        let sched = ps.clone().into_schedule();
        let e12 = g.edge_between(t1, t2).unwrap();
        let comm = sched.comm(e12).unwrap();
        assert!(approx_eq(comm.start, 1.0));
        assert!(approx_eq(comm.finish, 2.0));
        // Blue memory holds F12 (in transit / input) plus T2's output F24.
        assert!(ps.memory_state().used_at(Memory::Blue, 2.5) >= 2.0 - 1e-9);
        // Red memory released F12 when the transfer completed, keeps F13.
        assert!(approx_eq(ps.memory_state().used_at(Memory::Red, 3.0), 2.0));
    }

    #[test]
    fn same_memory_child_releases_input_at_completion() {
        let (g, [t1, t3, ..]) = {
            let (g, [t1, _t2, t3, t4]) = dex();
            (g, [t1, t3, t4, t4])
        };
        let p = single_pair(10.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let bd1 = ps.evaluate(t1, Memory::Red).unwrap();
        ps.commit(t1, &bd1);
        let bd3 = ps.evaluate(t3, Memory::Red).unwrap();
        // Same memory: no transfer, starts right after T1.
        assert!(approx_eq(bd3.precedence, 1.0));
        assert!(approx_eq(bd3.comm_window, 0.0));
        ps.commit(t3, &bd3);
        // After T3 completes (t = 1 + 3 = 4), its input F13 is released:
        // red memory holds F12 (1, still waiting for T2) + F34 (2) = 3.
        assert!(approx_eq(ps.memory_state().used_at(Memory::Red, 5.0), 3.0));
    }

    #[test]
    fn full_manual_schedule_is_valid() {
        let (g, [t1, t2, t3, t4]) = dex();
        let p = single_pair(10.0);
        let mut ps = PartialSchedule::new(&g, &p);
        for t in [t1, t3, t2, t4] {
            let bd = ps.evaluate_best(t).expect("feasible");
            ps.commit(t, &bd);
        }
        assert!(ps.is_complete());
        let makespan = ps.makespan();
        let schedule = ps.finish_or_error().unwrap();
        let report = mals_sim::validate(&g, &p, &schedule);
        assert!(report.is_valid(), "errors: {:?}", report.errors);
        assert!(approx_eq(report.makespan, makespan));
    }

    #[test]
    fn finish_or_error_reports_infeasibility() {
        let (g, _) = dex();
        let p = single_pair(2.0); // too small for T1's outputs
        let ps = PartialSchedule::new(&g, &p);
        match ps.finish_or_error() {
            Err(ScheduleError::Infeasible { scheduled, total }) => {
                assert_eq!(scheduled, 0);
                assert_eq!(total, 4);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn resource_est_waits_for_processor() {
        // Two source tasks, single pair of processors: the second task on the
        // same memory must wait for the first.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 5.0, 5.0);
        let b = g.add_task("b", 5.0, 5.0);
        let c = g.add_task("c", 1.0, 1.0);
        g.add_edge(a, c, 1.0, 1.0).unwrap();
        g.add_edge(b, c, 1.0, 1.0).unwrap();
        let p = single_pair(100.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let bda = ps.evaluate(a, Memory::Blue).unwrap();
        ps.commit(a, &bda);
        let bdb = ps.evaluate(b, Memory::Blue).unwrap();
        assert!(approx_eq(bdb.resource, 5.0));
        assert!(approx_eq(bdb.est, 5.0));
        // On the red memory it could start immediately.
        let bdb_red = ps.evaluate(b, Memory::Red).unwrap();
        assert!(approx_eq(bdb_red.est, 0.0));
    }

    #[test]
    fn task_mem_est_waits_for_memory_release() {
        // A chain a -> b -> c with large files; a small memory forces the
        // scheduler to wait for releases before placing later tasks.
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        let c = g.add_task("c", 1.0, 1.0);
        let d = g.add_task("d", 1.0, 1.0);
        g.add_edge(a, b, 6.0, 1.0).unwrap();
        g.add_edge(b, c, 6.0, 1.0).unwrap();
        g.add_edge(c, d, 6.0, 1.0).unwrap();
        let p = single_pair(12.0);
        let mut ps = PartialSchedule::new(&g, &p);
        for t in [a, b, c, d] {
            let bd = ps.evaluate(t, Memory::Blue).expect("feasible on 12 units");
            ps.commit(t, &bd);
        }
        let schedule = ps.finish_or_error().unwrap();
        let report = mals_sim::validate(&g, &p, &schedule);
        assert!(report.is_valid(), "errors: {:?}", report.errors);
        assert!(report.peaks.blue <= 12.0 + 1e-9);
    }

    /// A graph wide enough (40 ready sources) to push the parallel paths
    /// past [`PAR_EVAL_CUTOFF`].
    fn wide_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let sources: Vec<_> = (0..40)
            .map(|i| g.add_task(format!("s{i}"), 1.0 + i as f64, 2.0 + (i % 7) as f64))
            .collect();
        let sink = g.add_task("sink", 1.0, 1.0);
        for (i, &s) in sources.iter().enumerate() {
            g.add_edge(s, sink, 1.0 + (i % 3) as f64, 0.5).unwrap();
        }
        g
    }

    #[test]
    fn parallel_ready_evaluation_matches_sequential() {
        let g = wide_graph();
        let p = single_pair(500.0);
        let ps = PartialSchedule::new(&g, &p);
        let pool = mals_util::WorkerPool::new(mals_util::ParallelConfig::with_threads(4));
        let par = ps.evaluate_ready_par(&pool);
        let seq: Vec<_> = ps
            .ready_tasks()
            .into_iter()
            .map(|t| (t, ps.evaluate_best(t)))
            .collect();
        assert_eq!(par.len(), seq.len());
        for ((ta, ba), (tb, bb)) in par.iter().zip(&seq) {
            assert_eq!(ta, tb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn parallel_best_choice_matches_sequential() {
        let g = wide_graph();
        let p = single_pair(500.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let pool = mals_util::WorkerPool::new(mals_util::ParallelConfig::with_threads(8));
        while !ps.is_complete() {
            let par = ps.evaluate_best_par(&pool);
            let seq = ps.best_ready_choice();
            match (par, seq) {
                (Some((tp, bp)), Some((ts, bs))) => {
                    assert_eq!(tp, ts);
                    assert_eq!(bp, bs);
                    ps.commit(tp, &bp);
                }
                (None, None) => break,
                (par, seq) => panic!("parallel/sequential disagree: {par:?} vs {seq:?}"),
            }
        }
        assert!(ps.is_complete());
    }

    #[test]
    fn memory_preference_flips_only_exact_ties() {
        // Two identical memories: every evaluation ties, so the preferred
        // memory wins; with distinct work costs the preference is inert.
        let mut g = TaskGraph::new();
        let t = g.add_task("t", 2.0, 2.0);
        let p = single_pair(10.0);
        let ps = PartialSchedule::new(&g, &p);
        assert_eq!(
            ps.evaluate_best_with(t, false).unwrap().memory,
            Memory::Blue
        );
        assert_eq!(ps.evaluate_best_with(t, true).unwrap().memory, Memory::Red);
    }

    #[test]
    fn clone_preserves_state() {
        let (g, [t1, ..]) = dex();
        let p = single_pair(10.0);
        let mut ps = PartialSchedule::new(&g, &p);
        let bd = ps.evaluate(t1, Memory::Red).unwrap();
        ps.commit(t1, &bd);
        let copy = ps.clone();
        assert_eq!(copy.n_scheduled(), ps.n_scheduled());
        assert_eq!(copy.finish_time(t1), ps.finish_time(t1));
    }
}
