//! Memory-aware list scheduling heuristics for hybrid (dual-memory)
//! platforms — the core contribution of the paper.
//!
//! Four schedulers are provided behind the common [`Scheduler`] trait:
//!
//! | Scheduler | Paper reference | Memory aware? | Task ordering |
//! |---|---|---|---|
//! | [`Heft`] | HEFT \[Topcuoglu et al. 2002\] | no | static, upward rank |
//! | [`MinMin`] | MinMin \[Braun et al. 2001\] | no | dynamic, smallest EFT |
//! | [`MemHeft`] | **MemHEFT** (Algorithm 1) | yes | static, upward rank |
//! | [`MemMinMin`] | **MemMinMin** (Algorithm 2) | yes | dynamic, smallest EFT |
//!
//! The memory-aware heuristics keep, for each memory, the staircase profile
//! of available capacity and refuse (or delay) placements that would exceed
//! the bounds; the memory-oblivious baselines are literally the same code run
//! with both capacities set to `+∞`, which preserves the paper's property
//! that *MemHEFT takes exactly the same decisions as HEFT whenever the bounds
//! are at least HEFT's own memory peaks*.
//!
//! The scheduling engine shared by all four lives in [`partial`]: it
//! maintains the partial schedule, evaluates the four components of the
//! earliest start time of a task on a memory (`resource`, `precedence`,
//! `task_mem`, `comm_mem`; Section 5.1 of the paper) and commits placements
//! together with their late-as-possible cross-memory transfers. The
//! selection loops are incremental: `commit` maintains the ready frontier
//! and reports what it changed ([`CommitEffects`]), and an exact
//! epoch-based evaluation cache ([`incremental::EstCache`]) skips every
//! re-evaluation whose inputs no commit touched — schedules are
//! bit-identical to the scan-everything engines at a fraction of the work,
//! which is what scales the heuristics to 10⁴–10⁵-task DAGs.
//!
//! The **online layer** ([`online`]) replays an arrival timeline
//! (`mals_gen::ArrivalTrace`) through an event-driven simulator on a virtual
//! clock and re-plans the unscheduled suffix with the same incremental
//! machinery — releasing the whole DAG at `t = 0` reproduces the static
//! solvers bit for bit, which is the subsystem's built-in oracle.
//!
//! On top of the concrete schedulers sits the unified **engine layer**:
//!
//! * [`Solver`] — the trait subsuming heuristics and exact solvers (one
//!   [`SolveOutcome`] carrying the schedule plus an [`OptimalityStatus`]);
//! * [`SolverRegistry`] — name-keyed solver factories
//!   ([`SolverRegistry::heuristics`] registers everything in this crate;
//!   `mals_exact::solver_registry()` adds the exact backends);
//! * [`Engine`] — a reusable session owning the worker pool and the default
//!   [`SolveLimits`], with single-solve and batch APIs;
//! * [`Portfolio`] — anytime racing: a member set solved concurrently on the
//!   worker pool with cooperative cancellation (deadlines, caller tokens,
//!   cancel-on-optimal) and deterministic winner selection
//!   ([`Engine::solve_portfolio`](Engine::solve_portfolio) is the
//!   session-level entry point).
//!
//! # Example
//!
//! ```
//! use mals_gen::dex;
//! use mals_platform::Platform;
//! use mals_sched::{Engine, EngineConfig, SolverRegistry};
//! use mals_sim::validate;
//!
//! let engine = Engine::new(SolverRegistry::heuristics(), EngineConfig::default());
//! let (graph, _) = dex();
//! let platform = Platform::single_pair(5.0, 5.0);
//! let outcome = engine.solve("memheft", &graph, &platform).unwrap();
//! let report = validate(&graph, &platform, outcome.schedule.as_ref().unwrap());
//! assert!(report.is_valid());
//! assert!(report.peaks.blue <= 5.0 && report.peaks.red <= 5.0);
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod memheft;
pub mod memminmin;
pub mod online;
pub mod partial;
pub mod portfolio;
pub mod registry;
pub mod solver;
pub mod traits;
pub mod unbounded;

pub use ablation::{MemHeftVariant, MemoryPreference, PriorityScheme, TieBreak};
pub use engine::{Engine, EngineConfig, EngineError};
pub use error::ScheduleError;
pub use incremental::EstCache;
pub use memheft::MemHeft;
pub use memminmin::MemMinMin;
pub use online::{replay, OnlineConfig, OnlineFlavor, OnlineOutcome, OnlineSolver, ReplanPolicy};
pub use partial::{CommitEffects, EstBreakdown, PartialSchedule};
pub use portfolio::{MemberReport, Portfolio, PortfolioReport, DEFAULT_MEMBERS};
pub use registry::{SolverEntry, SolverInfo, SolverRegistry};
pub use solver::{OptimalityStatus, SolveCtx, SolveLimits, SolveOutcome, Solver};
pub use traits::Scheduler;
pub use unbounded::{Heft, MinMin, Unbounded};
