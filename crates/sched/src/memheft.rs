//! MemHEFT — Algorithm 1 of the paper.
//!
//! MemHEFT keeps HEFT's two phases:
//!
//! 1. **task prioritizing** — tasks are sorted by non-increasing upward rank
//!    (mean processing times, half communication costs);
//! 2. **memory selection** — the highest-priority schedulable task is mapped
//!    to the memory minimising its earliest finish time `EFT⁽µ⁾`, where the
//!    earliest start time now also accounts for memory availability
//!    (`task_mem_EST`, `comm_mem_EST`), and then to the processor of that
//!    memory wasting the least idle time.
//!
//! When the highest-priority task fits in neither memory (its `EFT` is `+∞`
//! on both sides), MemHEFT moves down the priority list and tries the next
//! task; it fails — "the graph cannot be processed within the memory
//! bounds" — only when no remaining task can be placed.

use crate::error::ScheduleError;
use crate::incremental::EstCache;
use crate::partial::{CommitEffects, EstBreakdown, PartialSchedule};
use crate::traits::Scheduler;
use mals_dag::{rank, TaskGraph, TaskId};
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{CancelSignal, ChunkedIndexSet, ParallelConfig, WorkerPool};

/// Per-schedule scratch buffers of the selection loop: reused across every
/// step so steady state allocates nothing per commit (the allocation-free
/// commit path). `block` holds the priority positions of one parallel probe
/// block, `stale`/`pairs` the cache-refresh fan-out, `effects` the commit
/// record.
#[derive(Debug, Default)]
struct SelectScratch {
    block: Vec<u32>,
    stale: Vec<TaskId>,
    pairs: Vec<[Option<EstBreakdown>; 2]>,
    effects: CommitEffects,
}

/// The MemHEFT scheduler (Algorithm 1 of the paper).
///
/// With [`MemHeft::with_parallelism`] the per-step scan of the priority list
/// evaluates the ready candidates on a per-schedule [`WorkerPool`]; the
/// committed placements — and therefore the schedule — stay bit-identical to
/// the sequential run.
#[derive(Debug, Clone, Copy)]
pub struct MemHeft {
    parallel: ParallelConfig,
}

impl Default for MemHeft {
    fn default() -> Self {
        Self::new()
    }
}

impl MemHeft {
    /// Creates a (sequential) MemHEFT scheduler.
    pub fn new() -> Self {
        MemHeft {
            parallel: ParallelConfig::sequential(),
        }
    }

    /// Creates a MemHEFT scheduler that evaluates ready candidates with the
    /// given thread configuration.
    pub fn with_parallelism(parallel: ParallelConfig) -> Self {
        MemHeft { parallel }
    }
}

/// Runs the MemHEFT selection loop on an externally supplied priority list,
/// sequentially (see [`schedule_with_priority_engine`]).
///
/// `order` must contain every task exactly once; the list is scanned from the
/// front and the first task that is both ready and memory-feasible is
/// committed, then the scan restarts. This entry point is shared with the
/// ablation variants (`mals_sched::ablation`), which only change how the
/// priority list is built.
pub fn schedule_with_priority(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
) -> Result<Schedule, ScheduleError> {
    schedule_with_priority_engine(graph, platform, order, ParallelConfig::sequential(), false)
}

/// The shared MemHEFT-family selection engine: scan `order` from the front,
/// commit the first task that is both ready and memory-feasible, restart.
///
/// `parallel` spreads the EST evaluations of the ready candidates over a
/// [`WorkerPool`]; `prefer_red` flips the memory chosen on exact EFT ties
/// (the ablation variants exercise both policies). For any fixed inputs the
/// committed placements are identical for every thread count, because the
/// parallel scan evaluates the same candidates against the same immutable
/// state and keeps the first feasible one in priority order.
pub fn schedule_with_priority_engine(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
    parallel: ParallelConfig,
    prefer_red: bool,
) -> Result<Schedule, ScheduleError> {
    let cancel = CancelSignal::default();
    if parallel.resolved_threads() <= 1 {
        schedule_with_priority_pooled(graph, platform, order, None, prefer_red, cancel)
    } else {
        // A transient pool for this one schedule; callers that solve many
        // graphs should hold a pool (e.g. via an `Engine`) and use
        // [`schedule_with_priority_pooled`] to amortise the thread startup.
        let pool = WorkerPool::new(parallel);
        schedule_with_priority_pooled(graph, platform, order, Some(&pool), prefer_red, cancel)
    }
}

/// [`schedule_with_priority_engine`] on an externally owned worker pool
/// (`None` or a 1-thread pool: sequential scan). The committed placements —
/// and therefore the schedule — are bit-identical for every pool size.
///
/// The loop is incremental (the tentpole of the scaling refactor): the ready
/// candidates are kept in a priority-position-ordered set maintained by
/// [`PartialSchedule::commit`] instead of being rediscovered by an `O(n)`
/// scan of the whole priority list at every step, and every EST evaluation
/// goes through an exact [`EstCache`] that survives commits which did not
/// touch the state the evaluation read. The committed task is still, at
/// every step, the first ready task in priority order whose evaluation is
/// feasible — the cache returns the same bits a fresh evaluation would — so
/// the schedule is unchanged from the scan-everything engine.
///
/// `cancel` is polled once per committed task: when it trips, the loop
/// returns [`ScheduleError::Cancelled`] without committing anything further
/// (partial placements are discarded — a prefix of a schedule is not a
/// schedule). [`CancelSignal::default`] never trips.
pub fn schedule_with_priority_pooled(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
    pool: Option<&WorkerPool>,
    prefer_red: bool,
    cancel: CancelSignal<'_>,
) -> Result<Schedule, ScheduleError> {
    graph.validate()?;
    debug_assert_eq!(
        order.len(),
        graph.n_tasks(),
        "priority list must cover every task"
    );
    let mut position_of = vec![u32::MAX; graph.n_tasks()];
    for (position, &task) in order.iter().enumerate() {
        position_of[task.index()] = position as u32;
    }
    let mut partial = PartialSchedule::new(graph, platform);
    // The ready candidates, keyed by priority-list position (chunked storage
    // for the same reason `PartialSchedule` uses it: at 10⁵ tasks the
    // frontier holds thousands of candidates, past the point where a flat
    // vector's insert memmove dominates).
    let mut positions: Vec<u32> = partial
        .ready_iter()
        .map(|task| position_of[task.index()])
        .collect();
    positions.sort_unstable();
    let mut ready = ChunkedIndexSet::from_sorted(positions);
    let mut cache = EstCache::new(graph.n_tasks());
    let mut scratch = SelectScratch::default();
    let pool = pool.filter(|p| p.threads() > 1);

    while !partial.is_complete() {
        if cancel.is_cancelled() {
            return Err(ScheduleError::Cancelled {
                scheduled: partial.n_scheduled(),
                total: graph.n_tasks(),
            });
        }
        let mut chosen = None;
        match pool {
            None => {
                // Scan the ready candidates in priority order; the cache
                // skips every evaluation whose inputs no commit touched.
                for position in ready.iter() {
                    let task = order[position as usize];
                    if let Some(breakdown) = cache.best(&partial, task, prefer_red) {
                        chosen = Some((position, task, breakdown));
                        break;
                    }
                }
            }
            Some(pool) => {
                chosen = first_feasible_par(
                    &partial,
                    order,
                    &ready,
                    &mut cache,
                    prefer_red,
                    pool,
                    &mut scratch,
                );
            }
        }
        // No ready task fits in either memory, now or ever.
        let Some((position, task, breakdown)) = chosen else {
            return partial.finish_or_error();
        };
        partial.commit_into(task, &breakdown, &mut scratch.effects);
        ready.remove(position);
        for &child in &scratch.effects.newly_ready {
            ready.insert(position_of[child.index()]);
        }
        cache.apply(&scratch.effects);
    }
    partial.finish_or_error()
}

/// The parallel variant of one selection step: probe the head of the ready
/// list inline (with ample memory it is almost always feasible, making the
/// step as cheap as the sequential scan), then evaluate the stale candidates
/// in pool-sized blocks — a block bounds the work wasted past the first
/// feasible task while still giving every thread work per step.
fn first_feasible_par(
    partial: &PartialSchedule<'_>,
    order: &[TaskId],
    ready: &ChunkedIndexSet,
    cache: &mut EstCache,
    prefer_red: bool,
    pool: &WorkerPool,
    scratch: &mut SelectScratch,
) -> Option<(u32, TaskId, EstBreakdown)> {
    let head = ready.first()?;
    let head_task = order[head as usize];
    if let Some(breakdown) = cache.best(partial, head_task, prefer_red) {
        return Some((head, head_task, breakdown));
    }
    let block = (pool.threads() * 4).max(crate::partial::PAR_EVAL_CUTOFF);
    let mut rest = ready.iter().skip(1);
    loop {
        scratch.block.clear();
        scratch.block.extend(rest.by_ref().take(block));
        if scratch.block.is_empty() {
            return None;
        }
        // Fill the cache for the block's stale candidates in one fan-out;
        // fresh entries are reused as-is (their bits cannot differ from a
        // recomputation).
        scratch.stale.clear();
        scratch.stale.extend(
            scratch
                .block
                .iter()
                .map(|&position| order[position as usize])
                .filter(|&task| !cache.is_fresh(task)),
        );
        partial.evaluate_pairs_into(&scratch.stale, pool, &mut scratch.pairs);
        for (&task, &pair) in scratch.stale.iter().zip(scratch.pairs.iter()) {
            cache.store_pair(task, pair);
        }
        for &position in &scratch.block {
            let task = order[position as usize];
            if let Some(breakdown) = cache.best(partial, task, prefer_red) {
                return Some((position, task, breakdown));
            }
        }
    }
}

impl Scheduler for MemHeft {
    fn name(&self) -> &'static str {
        "MemHEFT"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        let order = rank::rank_sorted_tasks(graph);
        schedule_with_priority_engine(graph, platform, &order, self.parallel, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::{memory_peaks, validate};
    use mals_util::Pcg64;

    #[test]
    fn schedules_dex_with_ample_memory() {
        let (g, _) = dex();
        let platform = Platform::single_pair(100.0, 100.0);
        let s = MemHeft::new().schedule(&g, &platform).unwrap();
        let report = validate(&g, &platform, &s);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(s.is_complete(&g));
        // The optimal makespan with both memories >= 5 is 6 (paper, Fig. 3);
        // MemHEFT must at least produce a valid schedule no faster than that.
        assert!(report.makespan >= 6.0 - 1e-9);
    }

    #[test]
    fn respects_memory_bounds_on_dex() {
        let (g, _) = dex();
        for bound in [4.0, 5.0, 6.0, 8.0] {
            let platform = Platform::single_pair(bound, bound);
            match MemHeft::new().schedule(&g, &platform) {
                Ok(s) => {
                    let report = validate(&g, &platform, &s);
                    assert!(report.is_valid(), "bound {bound}: {:?}", report.errors);
                    assert!(report.peaks.blue <= bound + 1e-9);
                    assert!(report.peaks.red <= bound + 1e-9);
                }
                Err(ScheduleError::Infeasible { .. }) => {
                    // Acceptable for tight bounds; the exact solver decides
                    // whether a schedule exists at all.
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn fails_cleanly_when_memory_is_hopeless() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let err = MemHeft::new().schedule(&g, &platform).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn matches_unbounded_behaviour_when_memory_is_large() {
        // With memory bounds at least as large as the peaks of the unbounded
        // run, MemHEFT must take exactly the same decisions (paper, §6.2.1).
        let mut rng = Pcg64::new(99);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let unbounded = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let free = MemHeft::new().schedule(&g, &unbounded).unwrap();
        let peaks = memory_peaks(&g, &unbounded, &free);
        let bounded = Platform::single_pair(peaks.blue, peaks.red);
        let constrained = MemHeft::new().schedule(&g, &bounded).unwrap();
        assert_eq!(free, constrained);
    }

    #[test]
    fn random_graphs_produce_valid_schedules() {
        let mut rng = Pcg64::new(7);
        for i in 0..10 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 200.0, 200.0).unwrap();
            let s = MemHeft::new().schedule(&g, &platform).unwrap();
            let report = validate(&g, &platform, &s);
            assert!(report.is_valid(), "graph {i}: {:?}", report.errors);
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MemHeft::new().name(), "MemHEFT");
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_sequential() {
        let mut rng = Pcg64::new(4321);
        for _ in 0..4 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 180.0, 180.0).unwrap();
            let sequential = MemHeft::new().schedule(&g, &platform).unwrap();
            for threads in [2, 4, 8] {
                let parallel =
                    MemHeft::with_parallelism(mals_util::ParallelConfig::with_threads(threads))
                        .schedule(&g, &platform)
                        .unwrap();
                assert_eq!(sequential, parallel, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree_on_infeasible_instances() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let seq = MemHeft::new().schedule(&g, &platform).unwrap_err();
        let par = MemHeft::with_parallelism(mals_util::ParallelConfig::with_threads(4))
            .schedule(&g, &platform)
            .unwrap_err();
        assert!(matches!(seq, ScheduleError::Infeasible { .. }));
        assert!(matches!(par, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn rejects_cyclic_graph() {
        let mut g = mals_dag::TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, a, 1.0, 1.0).unwrap();
        let platform = Platform::default();
        // The rank computation itself requires acyclicity, so go through the
        // priority-list entry point with an arbitrary order.
        let err = schedule_with_priority(&g, &platform, &[a, b]).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidGraph(_)));
    }
}
