//! MemHEFT — Algorithm 1 of the paper.
//!
//! MemHEFT keeps HEFT's two phases:
//!
//! 1. **task prioritizing** — tasks are sorted by non-increasing upward rank
//!    (mean processing times, half communication costs);
//! 2. **memory selection** — the highest-priority schedulable task is mapped
//!    to the memory minimising its earliest finish time `EFT⁽µ⁾`, where the
//!    earliest start time now also accounts for memory availability
//!    (`task_mem_EST`, `comm_mem_EST`), and then to the processor of that
//!    memory wasting the least idle time.
//!
//! When the highest-priority task fits in neither memory (its `EFT` is `+∞`
//! on both sides), MemHEFT moves down the priority list and tries the next
//! task; it fails — "the graph cannot be processed within the memory
//! bounds" — only when no remaining task can be placed.

use crate::error::ScheduleError;
use crate::partial::PartialSchedule;
use crate::traits::Scheduler;
use mals_dag::{rank, TaskGraph, TaskId};
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{ParallelConfig, WorkerPool};

/// The MemHEFT scheduler (Algorithm 1 of the paper).
///
/// With [`MemHeft::with_parallelism`] the per-step scan of the priority list
/// evaluates the ready candidates on a per-schedule [`WorkerPool`]; the
/// committed placements — and therefore the schedule — stay bit-identical to
/// the sequential run.
#[derive(Debug, Clone, Copy)]
pub struct MemHeft {
    parallel: ParallelConfig,
}

impl Default for MemHeft {
    fn default() -> Self {
        Self::new()
    }
}

impl MemHeft {
    /// Creates a (sequential) MemHEFT scheduler.
    pub fn new() -> Self {
        MemHeft {
            parallel: ParallelConfig::sequential(),
        }
    }

    /// Creates a MemHEFT scheduler that evaluates ready candidates with the
    /// given thread configuration.
    pub fn with_parallelism(parallel: ParallelConfig) -> Self {
        MemHeft { parallel }
    }
}

/// Runs the MemHEFT selection loop on an externally supplied priority list,
/// sequentially (see [`schedule_with_priority_engine`]).
///
/// `order` must contain every task exactly once; the list is scanned from the
/// front and the first task that is both ready and memory-feasible is
/// committed, then the scan restarts. This entry point is shared with the
/// ablation variants (`mals_sched::ablation`), which only change how the
/// priority list is built.
pub fn schedule_with_priority(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
) -> Result<Schedule, ScheduleError> {
    schedule_with_priority_engine(graph, platform, order, ParallelConfig::sequential(), false)
}

/// The shared MemHEFT-family selection engine: scan `order` from the front,
/// commit the first task that is both ready and memory-feasible, restart.
///
/// `parallel` spreads the EST evaluations of the ready candidates over a
/// [`WorkerPool`]; `prefer_red` flips the memory chosen on exact EFT ties
/// (the ablation variants exercise both policies). For any fixed inputs the
/// committed placements are identical for every thread count, because the
/// parallel scan evaluates the same candidates against the same immutable
/// state and keeps the first feasible one in priority order.
pub fn schedule_with_priority_engine(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
    parallel: ParallelConfig,
    prefer_red: bool,
) -> Result<Schedule, ScheduleError> {
    if parallel.resolved_threads() <= 1 {
        schedule_with_priority_pooled(graph, platform, order, None, prefer_red)
    } else {
        // A transient pool for this one schedule; callers that solve many
        // graphs should hold a pool (e.g. via an `Engine`) and use
        // [`schedule_with_priority_pooled`] to amortise the thread startup.
        let pool = WorkerPool::new(parallel);
        schedule_with_priority_pooled(graph, platform, order, Some(&pool), prefer_red)
    }
}

/// [`schedule_with_priority_engine`] on an externally owned worker pool
/// (`None` or a 1-thread pool: sequential scan). The committed placements —
/// and therefore the schedule — are bit-identical for every pool size.
pub fn schedule_with_priority_pooled(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
    pool: Option<&WorkerPool>,
    prefer_red: bool,
) -> Result<Schedule, ScheduleError> {
    graph.validate()?;
    debug_assert_eq!(
        order.len(),
        graph.n_tasks(),
        "priority list must cover every task"
    );
    let mut partial = PartialSchedule::new(graph, platform);
    let mut remaining: Vec<TaskId> = order.to_vec();
    let Some(pool) = pool.filter(|p| p.threads() > 1) else {
        // Sequential scan with early exit at the first feasible task.
        while !remaining.is_empty() {
            let mut committed = None;
            for (position, &task) in remaining.iter().enumerate() {
                if !partial.is_ready(task) {
                    continue;
                }
                if let Some(breakdown) = partial.evaluate_best_with(task, prefer_red) {
                    partial.commit(task, &breakdown);
                    committed = Some(position);
                    break;
                }
            }
            match committed {
                Some(position) => {
                    remaining.remove(position);
                }
                // No remaining task fits in either memory, now or ever.
                None => return partial.finish_or_error(),
            }
        }
        return partial.finish_or_error();
    };

    // Ready candidates past the first are evaluated in blocks: a block
    // bounds the work wasted past the first feasible task (the sequential
    // scan would have stopped there) while still giving every thread work
    // per step. Blocks below the inline cutoff would bypass the pool
    // entirely, so never go smaller.
    let block = (pool.threads() * 4).max(crate::partial::PAR_EVAL_CUTOFF);
    while !remaining.is_empty() {
        let ready: Vec<(usize, TaskId)> = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &task)| partial.is_ready(task))
            .map(|(position, &task)| (position, task))
            .collect();
        let mut committed = None;
        // Fast path: with ample memory the head of the priority list is
        // almost always feasible, so probe it inline before fanning out —
        // that step then costs exactly what the sequential scan costs.
        let mut fanout_from = 0;
        if let Some(&(position, task)) = ready.first() {
            fanout_from = 1;
            if let Some(breakdown) = partial.evaluate_best_with(task, prefer_red) {
                partial.commit(task, &breakdown);
                committed = Some(position);
            }
        }
        if committed.is_none() {
            'scan: for chunk in ready[fanout_from..].chunks(block) {
                let tasks: Vec<TaskId> = chunk.iter().map(|&(_, task)| task).collect();
                let breakdowns = partial.evaluate_tasks_par(&tasks, prefer_red, pool);
                for (&(position, task), breakdown) in chunk.iter().zip(breakdowns) {
                    if let Some(breakdown) = breakdown {
                        partial.commit(task, &breakdown);
                        committed = Some(position);
                        break 'scan;
                    }
                }
            }
        }
        match committed {
            Some(position) => {
                remaining.remove(position);
            }
            None => return partial.finish_or_error(),
        }
    }
    partial.finish_or_error()
}

impl Scheduler for MemHeft {
    fn name(&self) -> &'static str {
        "MemHEFT"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        let order = rank::rank_sorted_tasks(graph);
        schedule_with_priority_engine(graph, platform, &order, self.parallel, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::{memory_peaks, validate};
    use mals_util::Pcg64;

    #[test]
    fn schedules_dex_with_ample_memory() {
        let (g, _) = dex();
        let platform = Platform::single_pair(100.0, 100.0);
        let s = MemHeft::new().schedule(&g, &platform).unwrap();
        let report = validate(&g, &platform, &s);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(s.is_complete(&g));
        // The optimal makespan with both memories >= 5 is 6 (paper, Fig. 3);
        // MemHEFT must at least produce a valid schedule no faster than that.
        assert!(report.makespan >= 6.0 - 1e-9);
    }

    #[test]
    fn respects_memory_bounds_on_dex() {
        let (g, _) = dex();
        for bound in [4.0, 5.0, 6.0, 8.0] {
            let platform = Platform::single_pair(bound, bound);
            match MemHeft::new().schedule(&g, &platform) {
                Ok(s) => {
                    let report = validate(&g, &platform, &s);
                    assert!(report.is_valid(), "bound {bound}: {:?}", report.errors);
                    assert!(report.peaks.blue <= bound + 1e-9);
                    assert!(report.peaks.red <= bound + 1e-9);
                }
                Err(ScheduleError::Infeasible { .. }) => {
                    // Acceptable for tight bounds; the exact solver decides
                    // whether a schedule exists at all.
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn fails_cleanly_when_memory_is_hopeless() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let err = MemHeft::new().schedule(&g, &platform).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn matches_unbounded_behaviour_when_memory_is_large() {
        // With memory bounds at least as large as the peaks of the unbounded
        // run, MemHEFT must take exactly the same decisions (paper, §6.2.1).
        let mut rng = Pcg64::new(99);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let unbounded = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let free = MemHeft::new().schedule(&g, &unbounded).unwrap();
        let peaks = memory_peaks(&g, &unbounded, &free);
        let bounded = Platform::single_pair(peaks.blue, peaks.red);
        let constrained = MemHeft::new().schedule(&g, &bounded).unwrap();
        assert_eq!(free, constrained);
    }

    #[test]
    fn random_graphs_produce_valid_schedules() {
        let mut rng = Pcg64::new(7);
        for i in 0..10 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 200.0, 200.0).unwrap();
            let s = MemHeft::new().schedule(&g, &platform).unwrap();
            let report = validate(&g, &platform, &s);
            assert!(report.is_valid(), "graph {i}: {:?}", report.errors);
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MemHeft::new().name(), "MemHEFT");
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_sequential() {
        let mut rng = Pcg64::new(4321);
        for _ in 0..4 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 180.0, 180.0).unwrap();
            let sequential = MemHeft::new().schedule(&g, &platform).unwrap();
            for threads in [2, 4, 8] {
                let parallel =
                    MemHeft::with_parallelism(mals_util::ParallelConfig::with_threads(threads))
                        .schedule(&g, &platform)
                        .unwrap();
                assert_eq!(sequential, parallel, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn parallel_and_sequential_agree_on_infeasible_instances() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let seq = MemHeft::new().schedule(&g, &platform).unwrap_err();
        let par = MemHeft::with_parallelism(mals_util::ParallelConfig::with_threads(4))
            .schedule(&g, &platform)
            .unwrap_err();
        assert!(matches!(seq, ScheduleError::Infeasible { .. }));
        assert!(matches!(par, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn rejects_cyclic_graph() {
        let mut g = mals_dag::TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, a, 1.0, 1.0).unwrap();
        let platform = Platform::default();
        // The rank computation itself requires acyclicity, so go through the
        // priority-list entry point with an arbitrary order.
        let err = schedule_with_priority(&g, &platform, &[a, b]).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidGraph(_)));
    }
}
