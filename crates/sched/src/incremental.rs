//! The incremental EST engine: an exact, epoch-based evaluation cache.
//!
//! The list schedulers used to re-evaluate every ready candidate from
//! scratch at every selection step. But one commit changes very little of
//! the state an evaluation reads:
//!
//! * `evaluate(task, µ)` depends on memory `µ`'s processor availability and
//!   usage profile, and on the placements of `task`'s parents — nothing
//!   else;
//! * a commit on memory `µ*` touches `µ*`'s processors and profile, touches
//!   the *other* memory's profile only when a cross-memory transfer released
//!   a file there ([`CommitEffects::other_memory_touched`]), and fixes the
//!   placement of one task — whose successors were not ready before, so none
//!   of them can have a cached evaluation.
//!
//! [`EstCache`] therefore keys validity on one epoch counter per memory:
//! every cached `(task, µ)` evaluation carries the `µ`-epoch it was computed
//! under, [`EstCache::apply`] bumps the epochs a commit touched, and a hit is
//! returned bit-for-bit — an evaluation is a pure function of the state, so
//! a fresh recomputation could not differ. Schedules are exactly those of
//! the scan-everything loops, at a fraction of the evaluations: after a
//! same-memory commit, the whole ready list keeps its other-memory
//! evaluations.

use crate::partial::{CommitEffects, EstBreakdown, PartialSchedule};
use mals_dag::TaskId;
use mals_platform::Memory;

/// One cached per-memory evaluation: the epoch it was computed under and the
/// result (`None` = the task can never fit on that memory *given the state
/// at that epoch* — exactly what `evaluate` returned).
#[derive(Debug, Clone, Copy)]
struct Slot {
    epoch: u64,
    value: Option<EstBreakdown>,
}

/// An exact EST cache over a [`PartialSchedule`] (see the module docs).
#[derive(Debug, Clone)]
pub struct EstCache {
    /// Per-memory state epoch; slot entries are valid iff their stamp
    /// matches. Starts at 1 so the zero-initialised slots are stale.
    epoch: [u64; 2],
    slots: Vec<[Slot; 2]>,
}

impl EstCache {
    /// Creates an empty cache for `n_tasks` tasks.
    pub fn new(n_tasks: usize) -> Self {
        EstCache {
            epoch: [1, 1],
            slots: vec![
                [Slot {
                    epoch: 0,
                    value: None,
                }; 2];
                n_tasks
            ],
        }
    }

    /// Invalidates what `effects` staled: the committed memory always, the
    /// other memory when its profile was touched.
    pub fn apply(&mut self, effects: &CommitEffects) {
        self.epoch[effects.memory.index()] += 1;
        if effects.other_memory_touched {
            self.epoch[effects.memory.other().index()] += 1;
        }
    }

    /// `true` when both per-memory evaluations of `task` are current.
    pub fn is_fresh(&self, task: TaskId) -> bool {
        let slots = &self.slots[task.index()];
        slots[0].epoch == self.epoch[0] && slots[1].epoch == self.epoch[1]
    }

    /// Stores a `[blue, red]` pair computed against the current state (the
    /// write-back path of the parallel fan-out).
    pub fn store_pair(&mut self, task: TaskId, pair: [Option<EstBreakdown>; 2]) {
        for (mem, value) in [Memory::Blue, Memory::Red].into_iter().zip(pair) {
            self.slots[task.index()][mem.index()] = Slot {
                epoch: self.epoch[mem.index()],
                value,
            };
        }
    }

    /// The current `[blue, red]` evaluation pair of a ready `task`,
    /// recomputing whichever side is stale.
    pub fn pair(
        &mut self,
        partial: &PartialSchedule<'_>,
        task: TaskId,
    ) -> [Option<EstBreakdown>; 2] {
        let mut out = [None, None];
        for mem in [Memory::Blue, Memory::Red] {
            let slot = self.slots[task.index()][mem.index()];
            out[mem.index()] = if slot.epoch == self.epoch[mem.index()] {
                slot.value
            } else {
                let value = partial.evaluate(task, mem);
                self.slots[task.index()][mem.index()] = Slot {
                    epoch: self.epoch[mem.index()],
                    value,
                };
                value
            };
        }
        out
    }

    /// The preferred breakdown of a ready `task` under this cache —
    /// bit-identical to [`PartialSchedule::evaluate_best_with`] on the same
    /// state.
    pub fn best(
        &mut self,
        partial: &PartialSchedule<'_>,
        task: TaskId,
        prefer_red: bool,
    ) -> Option<EstBreakdown> {
        PartialSchedule::combine_pair(self.pair(partial, task), prefer_red)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_platform::Platform;
    use mals_util::Pcg64;

    #[test]
    fn cached_best_matches_fresh_evaluation_throughout_a_schedule() {
        // Drive a full schedule committing the cache's own choices while
        // cross-checking every step against an uncached evaluation.
        let mut rng = Pcg64::new(77);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::new(2, 2, 120.0, 120.0).unwrap();
        let mut partial = PartialSchedule::new(&g, &platform);
        let mut cache = EstCache::new(g.n_tasks());
        while !partial.is_complete() {
            let ready = partial.ready_tasks();
            let mut committed = false;
            for &task in &ready {
                let cached = cache.best(&partial, task, false);
                let fresh = partial.evaluate_best(task);
                assert_eq!(cached, fresh, "cache diverged on {task}");
                if let Some(bd) = cached {
                    let effects = partial.commit(task, &bd);
                    cache.apply(&effects);
                    committed = true;
                    break;
                }
            }
            assert!(committed, "ample memory: some ready task must fit");
        }
    }

    #[test]
    fn same_memory_commit_keeps_other_memory_fresh() {
        let (g, [t1, ..]) = dex();
        let platform = Platform::single_pair(100.0, 100.0);
        let mut partial = PartialSchedule::new(&g, &platform);
        let mut cache = EstCache::new(g.n_tasks());
        let bd = cache.best(&partial, t1, false).unwrap();
        assert!(cache.is_fresh(t1));
        let effects = partial.commit(t1, &bd);
        cache.apply(&effects);
        // T1 is a source: no transfers, so only its own memory is staled.
        assert!(!effects.other_memory_touched);
    }

    #[test]
    fn newly_ready_tasks_start_stale() {
        let (g, [t1, t2, ..]) = dex();
        let platform = Platform::single_pair(100.0, 100.0);
        let mut partial = PartialSchedule::new(&g, &platform);
        let mut cache = EstCache::new(g.n_tasks());
        let bd = cache.best(&partial, t1, false).unwrap();
        let effects = partial.commit(t1, &bd);
        assert!(effects.newly_ready.contains(&t2));
        cache.apply(&effects);
        assert!(!cache.is_fresh(t2));
        // And evaluating it now gives the real thing.
        assert_eq!(cache.best(&partial, t2, false), partial.evaluate_best(t2));
    }
}
