//! Error type shared by all schedulers.

use mals_dag::GraphError;

/// Reasons for which a scheduler may fail to produce a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The task graph is malformed (cycle, negative weight, ...).
    InvalidGraph(GraphError),
    /// The graph cannot be processed within the memory bounds: at some point
    /// no remaining task fits in either memory, now or in the future.
    ///
    /// This corresponds to the `Error("The graph can not be processed within
    /// the memory bounds")` exit of Algorithms 1 and 2 in the paper.
    Infeasible {
        /// Number of tasks successfully placed before the failure.
        scheduled: usize,
        /// Total number of tasks in the graph.
        total: usize,
    },
    /// The solve was cooperatively cancelled (token tripped or deadline
    /// passed) before the schedule was complete. The partial placements are
    /// discarded — a prefix of a schedule is not a schedule.
    Cancelled {
        /// Number of tasks placed before the cancellation was observed.
        scheduled: usize,
        /// Total number of tasks in the graph.
        total: usize,
    },
    /// An online replay was handed an arrival trace that does not fit the
    /// graph (wrong task count, child released before a parent, malformed
    /// timeline). The message is the trace validator's diagnosis.
    InvalidTrace(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidGraph(e) => write!(f, "invalid task graph: {e}"),
            ScheduleError::Infeasible { scheduled, total } => write!(
                f,
                "the graph cannot be processed within the memory bounds \
                 ({scheduled}/{total} tasks placed)"
            ),
            ScheduleError::Cancelled { scheduled, total } => write!(
                f,
                "the solve was cancelled ({scheduled}/{total} tasks placed)"
            ),
            ScheduleError::InvalidTrace(msg) => write!(f, "invalid arrival trace: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::InvalidGraph(e) => Some(e),
            ScheduleError::Infeasible { .. }
            | ScheduleError::Cancelled { .. }
            | ScheduleError::InvalidTrace(_) => None,
        }
    }
}

impl From<GraphError> for ScheduleError {
    fn from(e: GraphError) -> Self {
        ScheduleError::InvalidGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_dag::TaskId;

    #[test]
    fn display_messages() {
        let e = ScheduleError::Infeasible {
            scheduled: 3,
            total: 10,
        };
        assert!(e.to_string().contains("memory bounds"));
        assert!(e.to_string().contains("3/10"));
        let g = ScheduleError::InvalidGraph(GraphError::Cycle(TaskId::from_index(0)));
        assert!(g.to_string().contains("cycle"));
        let c = ScheduleError::Cancelled {
            scheduled: 5,
            total: 9,
        };
        assert!(c.to_string().contains("cancelled"));
        assert!(c.to_string().contains("5/9"));
    }

    #[test]
    fn from_graph_error() {
        let e: ScheduleError = GraphError::SelfLoop(TaskId::from_index(1)).into();
        assert!(matches!(e, ScheduleError::InvalidGraph(_)));
    }

    #[test]
    fn source_is_exposed() {
        use std::error::Error;
        let e = ScheduleError::InvalidGraph(GraphError::Cycle(TaskId::from_index(0)));
        assert!(e.source().is_some());
        let i = ScheduleError::Infeasible {
            scheduled: 0,
            total: 1,
        };
        assert!(i.source().is_none());
    }
}
