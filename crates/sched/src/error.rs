//! Error type shared by all schedulers.

use mals_dag::GraphError;

/// Reasons for which a scheduler may fail to produce a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The task graph is malformed (cycle, negative weight, ...).
    InvalidGraph(GraphError),
    /// The graph cannot be processed within the memory bounds: at some point
    /// no remaining task fits in either memory, now or in the future.
    ///
    /// This corresponds to the `Error("The graph can not be processed within
    /// the memory bounds")` exit of Algorithms 1 and 2 in the paper.
    Infeasible {
        /// Number of tasks successfully placed before the failure.
        scheduled: usize,
        /// Total number of tasks in the graph.
        total: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidGraph(e) => write!(f, "invalid task graph: {e}"),
            ScheduleError::Infeasible { scheduled, total } => write!(
                f,
                "the graph cannot be processed within the memory bounds \
                 ({scheduled}/{total} tasks placed)"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::InvalidGraph(e) => Some(e),
            ScheduleError::Infeasible { .. } => None,
        }
    }
}

impl From<GraphError> for ScheduleError {
    fn from(e: GraphError) -> Self {
        ScheduleError::InvalidGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_dag::TaskId;

    #[test]
    fn display_messages() {
        let e = ScheduleError::Infeasible {
            scheduled: 3,
            total: 10,
        };
        assert!(e.to_string().contains("memory bounds"));
        assert!(e.to_string().contains("3/10"));
        let g = ScheduleError::InvalidGraph(GraphError::Cycle(TaskId::from_index(0)));
        assert!(g.to_string().contains("cycle"));
    }

    #[test]
    fn from_graph_error() {
        let e: ScheduleError = GraphError::SelfLoop(TaskId::from_index(1)).into();
        assert!(matches!(e, ScheduleError::InvalidGraph(_)));
    }

    #[test]
    fn source_is_exposed() {
        use std::error::Error;
        let e = ScheduleError::InvalidGraph(GraphError::Cycle(TaskId::from_index(0)));
        assert!(e.source().is_some());
        let i = ScheduleError::Infeasible {
            scheduled: 0,
            total: 1,
        };
        assert!(i.source().is_none());
    }
}
