//! Anytime portfolio racing over the solver registry.
//!
//! No single heuristic dominates across instance classes (Braun et al.;
//! the paper's own MemHEFT/MemMinMin trade wins with the memory bound), so
//! instead of picking one registry key a caller can race a *portfolio*: every
//! member solves the same instance concurrently on the shared
//! [`WorkerPool`](mals_util::WorkerPool), the best result wins, and the
//! losers are cooperatively cancelled through the [`CancelToken`] layer.
//!
//! Determinism is preserved — the winner of a race is independent of thread
//! timing:
//!
//! * every member runs to completion unless (a) the shared deadline passes,
//!   (b) the caller's own token trips, or (c) an *earlier-index* member
//!   proves optimality. A proven-optimal makespan can only tie or beat every
//!   later member, and ties resolve to the smaller index anyway, so
//!   cancelling only later members never changes the winner;
//! * the winner is the smallest `(makespan, member index)` pair over the
//!   members whose schedule passes `mals_sim::validate` on the *bounded*
//!   platform — memory-oblivious members whose schedule overruns the bounds
//!   are reported but never win.
//!
//! Failure isolation: a panicking member is contained with
//! [`std::panic::catch_unwind`] and surfaced in its [`MemberReport::error`];
//! the race continues and the best surviving member still wins.

use crate::registry::SolverRegistry;
use crate::solver::{OptimalityStatus, SolveCtx, SolveOutcome, Solver};
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sim::validate;
use mals_util::{CancelSignal, CancelToken};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// The default member set: the paper's two memory-aware heuristics plus the
/// deterministic MemHEFT ablations. All default members are memory-aware, so
/// every produced schedule is eligible to win, and all are polynomial, so a
/// no-deadline race terminates quickly.
pub const DEFAULT_MEMBERS: &[&str] = &[
    "memheft",
    "memminmin",
    "memheft-cpsum",
    "memheft-memreq",
    "memheft-red",
];

/// The outcome of one portfolio member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReport {
    /// Registry key the member was built from.
    pub key: String,
    /// The member's display name.
    pub name: String,
    /// The member's own claimed status ([`OptimalityStatus::LimitHit`] for a
    /// panicked member).
    pub status: OptimalityStatus,
    /// Makespan of the member's schedule, if it produced one.
    pub makespan: Option<f64>,
    /// Search effort (nodes) the member spent.
    pub nodes: u64,
    /// Wall time the member ran for, in milliseconds.
    pub wall_time_ms: u64,
    /// `true` when the member's cancel token was tripped (deadline, caller
    /// cancellation, or an earlier member's optimality proof).
    pub cancelled: bool,
    /// Why the member did not (or could not) win: a contained panic, a
    /// solver-reported error, or a schedule that failed validation on the
    /// bounded platform. `None` for clean outcomes.
    pub error: Option<String>,
}

/// The full result of a portfolio race: the winning outcome plus the
/// per-member breakdown.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// One report per member, in member (= priority) order.
    pub members: Vec<MemberReport>,
    /// Index into `members` of the winner, if any member produced a schedule
    /// that validates on the bounded platform.
    pub winner: Option<usize>,
    /// The aggregate outcome: the winner's schedule and status (nodes summed
    /// over all members), or `Infeasible`/`LimitHit` when nobody won.
    pub outcome: SolveOutcome,
    /// Wall time of the whole race, in milliseconds.
    pub wall_time_ms: u64,
}

impl PortfolioReport {
    /// The `(key, error)` pairs of every member that reported an error —
    /// contained panics included.
    pub fn errors(&self) -> Vec<(&str, &str)> {
        self.members
            .iter()
            .filter_map(|m| m.error.as_deref().map(|e| (m.key.as_str(), e)))
            .collect()
    }

    /// The winning member's registry key, if any.
    pub fn winner_key(&self) -> Option<&str> {
        self.winner.map(|i| self.members[i].key.as_str())
    }
}

/// A solver set raced against each other (see the module docs).
pub struct Portfolio {
    members: Vec<(String, Box<dyn Solver>)>,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|(k, _)| k.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Portfolio {
    /// A portfolio over explicit `(key, solver)` members. Member order is
    /// the tie-break priority: on equal makespans the earliest member wins.
    pub fn new(members: Vec<(String, Box<dyn Solver>)>) -> Self {
        Portfolio { members }
    }

    /// Builds members from registry keys (empty `keys`: the
    /// [`DEFAULT_MEMBERS`] set). Fails with the offending key when one is
    /// not registered.
    pub fn from_registry<S: AsRef<str>>(
        registry: &SolverRegistry,
        keys: &[S],
        seed: u64,
    ) -> Result<Self, String> {
        let keys: Vec<&str> = if keys.is_empty() {
            DEFAULT_MEMBERS.to_vec()
        } else {
            keys.iter().map(|k| k.as_ref()).collect()
        };
        let mut members = Vec::with_capacity(keys.len());
        for key in keys {
            let solver = registry
                .build_seeded(key, seed)
                .ok_or_else(|| key.to_string())?;
            members.push((key.to_string(), solver));
        }
        Ok(Portfolio { members })
    }

    /// The default portfolio: [`DEFAULT_MEMBERS`] out of
    /// [`SolverRegistry::heuristics`].
    pub fn default_heuristics(seed: u64) -> Self {
        Portfolio::from_registry(&SolverRegistry::heuristics(), DEFAULT_MEMBERS, seed)
            .expect("default members are registered")
    }

    /// The member keys, in priority order.
    pub fn member_keys(&self) -> Vec<&str> {
        self.members.iter().map(|(k, _)| k.as_str()).collect()
    }

    /// Races the members and returns the full per-member breakdown.
    ///
    /// Members run concurrently on `ctx.pool` (sequentially without one —
    /// the shared deadline still bounds each member, so a race on a
    /// single-core host degrades to a deadline-bounded sequential sweep).
    /// Each member gets its own [`CancelToken`] child-linked to the caller's
    /// (`ctx.cancel.token`), `pool: None` in its context (the pool must not
    /// be re-entered from inside a batch), and the caller's deadline.
    pub fn solve_race(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        ctx: &SolveCtx,
    ) -> PortfolioReport {
        let race_start = Instant::now();
        let n = self.members.len();
        let parent = ctx.cancel.token;
        let tokens: Vec<CancelToken> = (0..n)
            .map(|_| match parent {
                Some(p) => CancelToken::child(p),
                None => CancelToken::new(),
            })
            .collect();

        struct Raw {
            outcome: Option<SolveOutcome>,
            panic: Option<String>,
            wall_time_ms: u64,
            cancelled: bool,
        }

        let run_member = |i: usize| {
            let start = Instant::now();
            let member_ctx = SolveCtx {
                limits: ctx.limits,
                pool: None,
                cancel: CancelSignal {
                    token: Some(&tokens[i]),
                    deadline: ctx.cancel.deadline,
                },
            };
            let solver = &self.members[i].1;
            let result = catch_unwind(AssertUnwindSafe(|| {
                solver.solve(graph, platform, &member_ctx)
            }));
            let wall_time_ms = start.elapsed().as_millis() as u64;
            // Checked when the member finishes, so a member that completed
            // before the deadline (or any token trip) is not marked
            // cancelled.
            let cancelled = member_ctx.is_cancelled();
            match result {
                Ok(outcome) => {
                    // An optimality proof makes every *later* member
                    // redundant: it can only tie or lose, and a tie resolves
                    // to the smaller index anyway. Earlier members keep
                    // running — one of them could tie and win by index.
                    if outcome.status == OptimalityStatus::Optimal {
                        for token in &tokens[i + 1..] {
                            token.cancel();
                        }
                    }
                    Raw {
                        outcome: Some(outcome),
                        panic: None,
                        wall_time_ms,
                        cancelled,
                    }
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("unknown panic payload");
                    Raw {
                        outcome: None,
                        panic: Some(format!("panicked: {message}")),
                        wall_time_ms,
                        cancelled,
                    }
                }
            }
        };

        let raws: Vec<Raw> = match ctx.parallel_pool() {
            Some(pool) => pool.run_indexed(n, run_member),
            None => (0..n).map(run_member).collect(),
        };

        // Winner selection on the submitting thread: smallest (makespan,
        // index) over the members whose schedule validates on the bounded
        // platform — deterministic for any thread count and timing.
        let mut members = Vec::with_capacity(n);
        let mut winner: Option<(f64, usize)> = None;
        let mut schedules = Vec::with_capacity(n);
        let mut total_nodes = 0u64;
        let mut any_infeasible = false;
        for (i, raw) in raws.into_iter().enumerate() {
            let (key, solver) = &self.members[i];
            let mut report = MemberReport {
                key: key.clone(),
                name: solver.name().to_string(),
                status: OptimalityStatus::LimitHit,
                makespan: None,
                nodes: 0,
                wall_time_ms: raw.wall_time_ms,
                cancelled: raw.cancelled,
                error: raw.panic,
            };
            let mut schedule = None;
            if let Some(outcome) = raw.outcome {
                report.status = outcome.status;
                report.makespan = outcome.makespan();
                report.nodes = outcome.nodes;
                report.error = outcome.error;
                total_nodes += outcome.nodes;
                any_infeasible |= outcome.status == OptimalityStatus::Infeasible;
                if let Some(s) = outcome.schedule {
                    if validate(graph, platform, &s).is_valid() {
                        let makespan = s.makespan();
                        let better = winner.is_none_or(|(best, _)| makespan < best);
                        if better {
                            winner = Some((makespan, i));
                        }
                        schedule = Some(s);
                    } else {
                        report.error = Some(
                            "schedule violates the platform's memory bounds; \
                             excluded from the race"
                                .to_string(),
                        );
                    }
                }
            }
            schedules.push(schedule);
            members.push(report);
        }

        let outcome = match winner {
            Some((_, i)) => SolveOutcome {
                schedule: schedules.into_iter().nth(i).expect("winner index"),
                status: members[i].status,
                nodes: total_nodes,
                error: None,
            },
            None => SolveOutcome {
                schedule: None,
                // All-members-infeasible is a (heuristic-grade) infeasibility
                // signal; any other empty race is a limit/cancellation.
                status: if any_infeasible
                    && members
                        .iter()
                        .all(|m| m.status == OptimalityStatus::Infeasible)
                {
                    OptimalityStatus::Infeasible
                } else {
                    OptimalityStatus::LimitHit
                },
                nodes: total_nodes,
                error: None,
            },
        };

        PortfolioReport {
            members,
            winner: winner.map(|(_, i)| i),
            outcome,
            wall_time_ms: race_start.elapsed().as_millis() as u64,
        }
    }
}

impl Solver for Portfolio {
    fn name(&self) -> &str {
        "Portfolio"
    }

    /// Races the members and returns the aggregate outcome (use
    /// [`Portfolio::solve_race`] for the per-member breakdown).
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        self.solve_race(graph, platform, ctx).outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveLimits;
    use mals_gen::dex;
    use mals_util::{Deadline, ParallelConfig, WorkerPool};

    #[test]
    fn default_portfolio_wins_with_best_member() {
        let portfolio = Portfolio::default_heuristics(0);
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let ctx = SolveCtx::sequential();
        let report = portfolio.solve_race(&g, &platform, &ctx);
        let winner = report.winner.expect("dex is feasible at bound 6");
        assert_eq!(report.members.len(), DEFAULT_MEMBERS.len());
        // The aggregate equals the winner's own makespan, and no validating
        // member beats it.
        let best = report.outcome.makespan().unwrap();
        assert_eq!(report.members[winner].makespan, Some(best));
        for member in &report.members {
            if member.error.is_none() {
                if let Some(m) = member.makespan {
                    assert!(best <= m + 1e-12, "{} beat the winner", member.key);
                }
            }
        }
        assert_eq!(report.outcome.status, OptimalityStatus::Heuristic);
        assert_eq!(
            report.winner_key(),
            Some(report.members[winner].key.as_str())
        );
    }

    #[test]
    fn race_is_deterministic_across_thread_counts() {
        let portfolio = Portfolio::default_heuristics(0);
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let reference = portfolio.solve_race(&g, &platform, &SolveCtx::sequential());
        for threads in [2, 4] {
            let pool = WorkerPool::new(ParallelConfig::with_threads(threads));
            let ctx = SolveCtx::pooled(SolveLimits::default(), &pool);
            let report = portfolio.solve_race(&g, &platform, &ctx);
            assert_eq!(report.winner, reference.winner, "{threads} threads");
            assert_eq!(
                report.outcome.schedule, reference.outcome.schedule,
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn pre_tripped_token_yields_limit_hit() {
        let portfolio = Portfolio::default_heuristics(0);
        let (g, _) = dex();
        let token = CancelToken::new();
        token.cancel();
        let ctx = SolveCtx::sequential().with_cancel_token(&token);
        let report = portfolio.solve_race(&g, &Platform::single_pair(6.0, 6.0), &ctx);
        assert_eq!(report.winner, None);
        assert_eq!(report.outcome.status, OptimalityStatus::LimitHit);
        assert!(report.members.iter().all(|m| m.cancelled));
    }

    #[test]
    fn expired_deadline_yields_limit_hit() {
        let portfolio = Portfolio::default_heuristics(0);
        let (g, _) = dex();
        let ctx = SolveCtx::sequential().with_deadline(Deadline::after_millis(0));
        let report = portfolio.solve_race(&g, &Platform::single_pair(6.0, 6.0), &ctx);
        assert_eq!(report.outcome.status, OptimalityStatus::LimitHit);
        assert!(report.outcome.schedule.is_none());
    }

    #[test]
    fn infeasible_instance_reports_infeasible() {
        let portfolio = Portfolio::default_heuristics(0);
        let (g, _) = dex();
        // Bound 2 is hopeless for every member.
        let report = portfolio.solve_race(
            &g,
            &Platform::single_pair(2.0, 2.0),
            &SolveCtx::sequential(),
        );
        assert_eq!(report.winner, None);
        assert_eq!(report.outcome.status, OptimalityStatus::Infeasible);
    }

    #[test]
    fn unknown_member_key_is_rejected() {
        let err = Portfolio::from_registry(&SolverRegistry::heuristics(), &["memheft", "cplex"], 0)
            .unwrap_err();
        assert_eq!(err, "cplex");
    }

    #[test]
    fn memory_oblivious_member_cannot_win_with_an_invalid_schedule() {
        // `heft` ignores the bounds; on a tight-but-feasible platform its
        // schedule may overrun and must then be excluded, not crowned.
        let portfolio =
            Portfolio::from_registry(&SolverRegistry::heuristics(), &["heft", "memheft"], 0)
                .unwrap();
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let report = portfolio.solve_race(&g, &platform, &SolveCtx::sequential());
        if let Some(i) = report.winner {
            let schedule = report.outcome.schedule.as_ref().unwrap();
            assert!(validate(&g, &platform, schedule).is_valid());
            // Whoever won, the aggregate must respect the bounds.
            let _ = i;
        }
    }
}
