//! The solver engine: a reusable session around a registry, a worker pool
//! and default limits.
//!
//! Creating a worker pool spawns OS threads; doing that once per solve is
//! measurable when a driver solves thousands of small DAGs (the campaign
//! harness, the service endpoint under load). An [`Engine`] is created once,
//! owns the pool and the default [`SolveLimits`], and hands every solve a
//! [`SolveCtx`] borrowing them — so repeated [`Engine::solve`] calls and the
//! batch API ([`Engine::solve_batch`]) amortise the startup across the whole
//! session.
//!
//! ```
//! use mals_sched::{Engine, EngineConfig, SolverRegistry};
//! use mals_platform::Platform;
//! use mals_gen::dex;
//!
//! let engine = Engine::new(SolverRegistry::heuristics(), EngineConfig::default());
//! let (graph, _) = dex();
//! let outcome = engine
//!     .solve("memheft", &graph, &Platform::single_pair(6.0, 6.0))
//!     .unwrap();
//! assert!(outcome.schedule.is_some());
//! ```

use crate::portfolio::{Portfolio, PortfolioReport};
use crate::registry::SolverRegistry;
use crate::solver::{SolveCtx, SolveLimits, SolveOutcome, Solver};
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_util::{CancelSignal, Deadline, ParallelConfig, WorkerPool};

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Thread configuration of the shared worker pool (default: all cores;
    /// results are bit-identical for every setting).
    pub parallel: ParallelConfig,
    /// Default budgets handed to every solve.
    pub limits: SolveLimits,
}

impl EngineConfig {
    /// A sequential engine configuration with default limits.
    pub fn sequential() -> Self {
        EngineConfig {
            parallel: ParallelConfig::sequential(),
            limits: SolveLimits::default(),
        }
    }

    /// Sets the worker-thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.parallel = ParallelConfig::with_threads(threads);
        self
    }

    /// Sets the default solve limits.
    pub fn with_limits(mut self, limits: SolveLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// Errors raised by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The requested solver name is not in the registry; the payload lists
    /// the names that are.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every registered key, in registration order.
        known: Vec<&'static str>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSolver { name, known } => {
                write!(f, "unknown solver `{name}` (known: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A solving session: registry + persistent worker pool + default limits.
pub struct Engine {
    registry: SolverRegistry,
    pool: WorkerPool,
    limits: SolveLimits,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("solvers", &self.registry.keys())
            .field("threads", &self.pool.threads())
            .field("limits", &self.limits)
            .finish()
    }
}

impl Engine {
    /// Creates an engine over `registry`, spawning the worker pool once.
    pub fn new(registry: SolverRegistry, config: EngineConfig) -> Self {
        Engine {
            registry,
            pool: WorkerPool::new(config.parallel),
            limits: config.limits,
        }
    }

    /// The registry backing this engine.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The default limits of this engine.
    pub fn limits(&self) -> SolveLimits {
        self.limits
    }

    /// Threads of the shared pool (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The context handed to solves: default limits + the shared pool.
    pub fn ctx(&self) -> SolveCtx<'_> {
        SolveCtx {
            limits: self.limits,
            pool: Some(&self.pool),
            cancel: CancelSignal::default(),
        }
    }

    /// A per-call context with overrides: the service daemon's access
    /// pattern, where every queued request carries its own limits and an
    /// *absolute* deadline stamped at admission time (so queueing delay
    /// counts against the request's budget, not just solve time).
    pub fn ctx_with(
        &self,
        limits: Option<SolveLimits>,
        deadline: Option<Deadline>,
    ) -> SolveCtx<'_> {
        SolveCtx {
            limits: limits.unwrap_or(self.limits),
            pool: Some(&self.pool),
            cancel: CancelSignal {
                deadline,
                ..CancelSignal::default()
            },
        }
    }

    /// Instantiates the solver registered under `name` (seed 0).
    pub fn solver(&self, name: &str) -> Result<Box<dyn Solver>, EngineError> {
        self.solver_seeded(name, 0)
    }

    /// Instantiates the solver registered under `name` with `seed`.
    pub fn solver_seeded(&self, name: &str, seed: u64) -> Result<Box<dyn Solver>, EngineError> {
        self.registry
            .build_seeded(name, seed)
            .ok_or_else(|| EngineError::UnknownSolver {
                name: name.to_string(),
                known: self.registry.keys(),
            })
    }

    /// Solves one graph with the solver registered under `name`.
    pub fn solve(
        &self,
        name: &str,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<SolveOutcome, EngineError> {
        self.solve_seeded(name, 0, graph, platform)
    }

    /// [`Engine::solve`] with an explicit seed for randomised solvers.
    pub fn solve_seeded(
        &self,
        name: &str,
        seed: u64,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<SolveOutcome, EngineError> {
        let solver = self.solver_seeded(name, seed)?;
        Ok(solver.solve(graph, platform, &self.ctx()))
    }

    /// Races a solver portfolio on this engine's pool and returns the full
    /// per-member breakdown (see [`Portfolio::solve_race`] for the racing
    /// and determinism rules).
    ///
    /// `keys` selects the members from this engine's registry (empty:
    /// [`DEFAULT_MEMBERS`](crate::portfolio::DEFAULT_MEMBERS)); `deadline`
    /// bounds the race — every member polls it cooperatively and yields its
    /// incumbent-so-far once it passes.
    pub fn solve_portfolio<S: AsRef<str>>(
        &self,
        keys: &[S],
        seed: u64,
        graph: &TaskGraph,
        platform: &Platform,
        deadline: Option<Deadline>,
    ) -> Result<PortfolioReport, EngineError> {
        let portfolio = Portfolio::from_registry(&self.registry, keys, seed).map_err(|key| {
            EngineError::UnknownSolver {
                name: key,
                known: self.registry.keys(),
            }
        })?;
        let mut ctx = self.ctx();
        ctx.cancel.deadline = deadline;
        Ok(portfolio.solve_race(graph, platform, &ctx))
    }

    /// Solves many graphs with one solver instance, reusing the pool for the
    /// within-schedule evaluations of every solve. The graphs are processed
    /// in order on the calling thread (the pool parallelises *inside* each
    /// solve; it must not be entered from two levels at once), and the
    /// outcomes are returned in input order.
    pub fn solve_batch(
        &self,
        name: &str,
        graphs: &[TaskGraph],
        platform: &Platform,
    ) -> Result<Vec<SolveOutcome>, EngineError> {
        let solver = self.solver(name)?;
        let ctx = self.ctx();
        Ok(graphs
            .iter()
            .map(|graph| solver.solve(graph, platform, &ctx))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::OptimalityStatus;
    use crate::MemHeft;
    use crate::Scheduler;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_util::Pcg64;

    fn engine(threads: usize) -> Engine {
        Engine::new(
            SolverRegistry::heuristics(),
            EngineConfig::default().with_threads(threads),
        )
    }

    #[test]
    fn solve_by_name_matches_direct_construction() {
        let engine = engine(1);
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let by_name = engine.solve("memheft", &g, &platform).unwrap();
        let direct = MemHeft::new().schedule(&g, &platform).unwrap();
        assert_eq!(by_name.schedule.as_ref(), Some(&direct));
        assert_eq!(by_name.status, OptimalityStatus::Heuristic);
    }

    #[test]
    fn unknown_solver_lists_known_names() {
        let engine = engine(1);
        let (g, _) = dex();
        let err = engine.solve("cplex", &g, &Platform::default()).unwrap_err();
        let EngineError::UnknownSolver { name, known } = &err;
        assert_eq!(name, "cplex");
        assert!(known.contains(&"memheft"));
        assert!(err.to_string().contains("memheft"));
    }

    #[test]
    fn batch_solves_match_individual_solves_for_any_thread_count() {
        let mut rng = Pcg64::new(11);
        let graphs: Vec<_> = (0..4)
            .map(|_| {
                mals_gen::daggen::generate(
                    &DaggenParams::small_rand(),
                    &WeightRanges::small_rand(),
                    &mut rng,
                )
            })
            .collect();
        let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
        let sequential = engine(1);
        let reference = sequential
            .solve_batch("memminmin", &graphs, &platform)
            .unwrap();
        for threads in [2, 4] {
            let engine = engine(threads);
            assert_eq!(engine.threads(), threads);
            let batch = engine.solve_batch("memminmin", &graphs, &platform).unwrap();
            assert_eq!(batch.len(), graphs.len());
            for (a, b) in reference.iter().zip(&batch) {
                assert_eq!(a.schedule, b.schedule, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn engine_reuse_across_many_solves() {
        let engine = engine(2);
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let first = engine.solve("memminmin", &g, &platform).unwrap();
        for _ in 0..20 {
            let again = engine.solve("memminmin", &g, &platform).unwrap();
            assert_eq!(first.schedule, again.schedule);
        }
    }

    #[test]
    fn portfolio_solve_matches_best_member() {
        let engine = engine(2);
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let report = engine
            .solve_portfolio::<&str>(&[], 0, &g, &platform, None)
            .unwrap();
        let winner = report.winner.expect("dex is feasible at bound 6");
        let best = report.outcome.makespan().unwrap();
        let direct = engine
            .solve(report.members[winner].key.as_str(), &g, &platform)
            .unwrap();
        assert_eq!(direct.makespan(), Some(best));
        let err = engine
            .solve_portfolio(&["memheft", "gurobi"], 0, &g, &platform, None)
            .unwrap_err();
        let EngineError::UnknownSolver { name, .. } = &err;
        assert_eq!(name, "gurobi");
    }

    #[test]
    fn debug_and_accessors() {
        let engine = engine(3);
        assert_eq!(engine.limits(), SolveLimits::default());
        assert_eq!(engine.registry().len(), 11);
        let debug = format!("{engine:?}");
        assert!(debug.contains("memheft"));
        assert!(debug.contains("threads: 3"));
    }
}
