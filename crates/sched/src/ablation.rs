//! Ablation variants of MemHEFT.
//!
//! The paper makes several design choices in MemHEFT without evaluating the
//! alternatives: the priority scheme (upward rank), random tie-breaking among
//! equal-rank tasks, and the memory preferred when both memories give the
//! same earliest finish time. [`MemHeftVariant`] exposes those choices so the
//! ablation benchmarks (`mals-bench`) can quantify their impact.

use crate::error::ScheduleError;
use crate::memheft::schedule_with_priority_engine;
use crate::traits::Scheduler;
use mals_dag::{rank, TaskGraph, TaskId};
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{ParallelConfig, Pcg64};

/// How tasks are ordered in the priority list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityScheme {
    /// Non-increasing upward rank (the paper's choice).
    #[default]
    UpwardRank,
    /// Non-increasing `upward rank + downward rank` (critical-path-first).
    CriticalPathSum,
    /// Non-increasing total input+output file size (memory-hungry tasks
    /// first).
    MemoryRequirement,
}

/// How ties between equal-priority tasks are broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Deterministically by task index (the workspace default).
    #[default]
    ByIndex,
    /// Uniformly at random (the paper's stated policy), seeded for
    /// reproducibility.
    Random(u64),
}

/// Which memory is preferred when both give the same earliest finish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryPreference {
    /// Prefer the blue (CPU-side) memory.
    #[default]
    Blue,
    /// Prefer the red (accelerator-side) memory.
    Red,
}

/// A configurable MemHEFT used by the ablation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct MemHeftVariant {
    /// Priority list construction.
    pub priority: PriorityScheme,
    /// Tie-breaking policy inside the priority list.
    pub tie_break: TieBreak,
    /// Memory preferred on EFT ties.
    pub memory_preference: MemoryPreference,
    /// Thread configuration of the selection engine (sequential by default;
    /// any setting produces bit-identical schedules).
    pub parallel: ParallelConfig,
}

impl Default for MemHeftVariant {
    fn default() -> Self {
        MemHeftVariant {
            priority: PriorityScheme::default(),
            tie_break: TieBreak::default(),
            memory_preference: MemoryPreference::default(),
            parallel: ParallelConfig::sequential(),
        }
    }
}

impl MemHeftVariant {
    /// The configuration equivalent to [`crate::MemHeft`].
    pub fn paper_default() -> Self {
        MemHeftVariant::default()
    }

    /// Builds the priority list for `graph` under this configuration.
    pub fn priority_list(&self, graph: &TaskGraph) -> Vec<TaskId> {
        let key: Vec<f64> = match self.priority {
            PriorityScheme::UpwardRank => rank::upward_ranks(graph),
            PriorityScheme::CriticalPathSum => {
                let up = rank::upward_ranks(graph);
                let down = rank::downward_ranks(graph);
                up.iter().zip(&down).map(|(u, d)| u + d).collect()
            }
            PriorityScheme::MemoryRequirement => {
                graph.task_ids().map(|t| graph.mem_req(t)).collect()
            }
        };
        let jitter: Vec<f64> = match self.tie_break {
            TieBreak::ByIndex => vec![0.0; graph.n_tasks()],
            TieBreak::Random(seed) => {
                let mut rng = Pcg64::new(seed);
                (0..graph.n_tasks())
                    .map(|_| rng.next_f64() * 1e-9)
                    .collect()
            }
        };
        let mut tasks: Vec<TaskId> = graph.task_ids().collect();
        tasks.sort_by(|&a, &b| {
            let ka = key[a.index()] + jitter[a.index()];
            let kb = key[b.index()] + jitter[b.index()];
            kb.total_cmp(&ka).then_with(|| a.index().cmp(&b.index()))
        });
        tasks
    }
}

impl Scheduler for MemHeftVariant {
    fn name(&self) -> &'static str {
        match self.priority {
            PriorityScheme::UpwardRank => "MemHEFT(rank)",
            PriorityScheme::CriticalPathSum => "MemHEFT(cp-sum)",
            PriorityScheme::MemoryRequirement => "MemHEFT(mem-req)",
        }
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        let order = self.priority_list(graph);
        schedule_with_priority_engine(
            graph,
            platform,
            &order,
            self.parallel,
            self.memory_preference == MemoryPreference::Red,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemHeft, Scheduler};
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::validate;
    use mals_util::Pcg64;

    #[test]
    fn default_variant_matches_memheft() {
        let (g, _) = dex();
        let platform = Platform::single_pair(8.0, 8.0);
        let a = MemHeftVariant::paper_default()
            .schedule(&g, &platform)
            .unwrap();
        let b = MemHeft::new().schedule(&g, &platform).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn all_variants_produce_valid_schedules() {
        let mut rng = Pcg64::new(31);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::new(2, 2, 120.0, 120.0).unwrap();
        let variants = [
            MemHeftVariant {
                priority: PriorityScheme::UpwardRank,
                ..Default::default()
            },
            MemHeftVariant {
                priority: PriorityScheme::CriticalPathSum,
                ..Default::default()
            },
            MemHeftVariant {
                priority: PriorityScheme::MemoryRequirement,
                ..Default::default()
            },
            MemHeftVariant {
                tie_break: TieBreak::Random(1),
                ..Default::default()
            },
            MemHeftVariant {
                memory_preference: MemoryPreference::Red,
                ..Default::default()
            },
        ];
        for v in variants {
            let s = v.schedule(&g, &platform).unwrap();
            let report = validate(&g, &platform, &s);
            assert!(report.is_valid(), "{}: {:?}", v.name(), report.errors);
        }
    }

    #[test]
    fn priority_lists_are_permutations() {
        let (g, _) = dex();
        for priority in [
            PriorityScheme::UpwardRank,
            PriorityScheme::CriticalPathSum,
            PriorityScheme::MemoryRequirement,
        ] {
            let v = MemHeftVariant {
                priority,
                ..Default::default()
            };
            let mut order = v.priority_list(&g);
            order.sort();
            assert_eq!(order, g.task_ids().collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_tie_break_is_seed_deterministic() {
        let (g, _) = dex();
        let v = MemHeftVariant {
            tie_break: TieBreak::Random(7),
            ..Default::default()
        };
        assert_eq!(v.priority_list(&g), v.priority_list(&g));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_ne!(
            MemHeftVariant {
                priority: PriorityScheme::UpwardRank,
                ..Default::default()
            }
            .name(),
            MemHeftVariant {
                priority: PriorityScheme::CriticalPathSum,
                ..Default::default()
            }
            .name()
        );
    }
}
