//! HEFT — the memory-oblivious reference heuristic.
//!
//! HEFT (Heterogeneous Earliest Finish Time, Topcuoglu et al. 2002) is the
//! baseline the paper compares against. In the dual-memory model it is
//! exactly MemHEFT run with both memory capacities set to `+∞`: the
//! memory-availability terms of the EST vanish and the algorithm degenerates
//! to classical upward-rank list scheduling with earliest-finish-time
//! processor selection.
//!
//! The schedule it produces ignores the platform's memory bounds; the
//! experiment drivers measure its memory peaks with
//! [`mals_sim::memory_peaks`] and use them as the normalisation baseline of
//! Figures 10 and 12 ("fraction of the memory required by HEFT").

use crate::error::ScheduleError;
use crate::memheft::MemHeft;
use crate::traits::Scheduler;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sim::Schedule;

/// The memory-oblivious HEFT baseline.
#[derive(Debug, Clone, Copy)]
pub struct Heft {
    parallel: mals_util::ParallelConfig,
}

impl Default for Heft {
    fn default() -> Self {
        Self::new()
    }
}

impl Heft {
    /// Creates a (sequential) HEFT scheduler.
    pub fn new() -> Self {
        Heft {
            parallel: mals_util::ParallelConfig::sequential(),
        }
    }

    /// Creates a HEFT scheduler whose selection loop evaluates ready
    /// candidates with the given thread configuration (same engine as
    /// [`MemHeft`], so the schedule is identical for every thread count).
    pub fn with_parallelism(parallel: mals_util::ParallelConfig) -> Self {
        Heft { parallel }
    }
}

impl Scheduler for Heft {
    fn name(&self) -> &'static str {
        "HEFT"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        MemHeft::with_parallelism(self.parallel).schedule(graph, &platform.unbounded())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::{memory_peaks, validate};
    use mals_util::Pcg64;

    #[test]
    fn ignores_memory_bounds() {
        let (g, _) = dex();
        // A bound of 1 makes the graph impossible for MemHEFT, but HEFT does
        // not care: it always succeeds.
        let platform = Platform::single_pair(1.0, 1.0);
        let s = Heft::new().schedule(&g, &platform).unwrap();
        assert!(s.is_complete(&g));
        // Validation against the *unbounded* platform passes; against the
        // bounded one the memory constraint is (expectedly) violated.
        let unbounded_report = validate(&g, &platform.unbounded(), &s);
        assert!(unbounded_report.is_valid(), "{:?}", unbounded_report.errors);
    }

    #[test]
    fn equals_memheft_with_infinite_memory() {
        let mut rng = Pcg64::new(5);
        let g = mals_gen::daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::new(2, 1, 40.0, 40.0).unwrap();
        let heft = Heft::new().schedule(&g, &platform).unwrap();
        let memheft_unbounded = MemHeft::new().schedule(&g, &platform.unbounded()).unwrap();
        assert_eq!(heft, memheft_unbounded);
    }

    #[test]
    fn heft_memory_peaks_are_positive_for_dex() {
        let (g, _) = dex();
        let platform = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let s = Heft::new().schedule(&g, &platform).unwrap();
        let peaks = memory_peaks(&g, &platform, &s);
        assert!(peaks.max() > 0.0);
        // The total file volume of D_ex is 6: no schedule can exceed that.
        assert!(peaks.blue <= 6.0 && peaks.red <= 6.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Heft::new().name(), "HEFT");
    }
}
