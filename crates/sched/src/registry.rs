//! The name-keyed solver registry.
//!
//! Every solving algorithm of the workspace is registered under a short
//! stable key (`"memheft"`, `"milp"`, …) together with a factory, so drivers
//! select solvers with strings instead of hard-coded structs. This crate
//! only knows the heuristics and their ablation variants
//! ([`SolverRegistry::heuristics`]); `mals_exact::solver_registry()` extends
//! that set with the exact backends and is the registry the experiment
//! binaries and the service surface use.
//!
//! Factories take a `seed` so randomised solvers (the random tie-break
//! ablation) are reproducible through the registry; deterministic solvers
//! ignore it.

use crate::ablation::{MemHeftVariant, MemoryPreference, PriorityScheme, TieBreak};
use crate::memheft::MemHeft;
use crate::memminmin::MemMinMin;
use crate::solver::Solver;
use crate::unbounded::{Heft, MinMin};

/// Metadata describing one registered solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverInfo {
    /// The registry key (stable, lower-case, flag-friendly).
    pub key: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// `true` when the solver honours the platform's memory bounds
    /// (the memory-oblivious baselines schedule on the unbounded platform).
    pub memory_aware: bool,
    /// `true` for exact solvers (can return
    /// [`OptimalityStatus::Optimal`](crate::OptimalityStatus::Optimal) /
    /// `Infeasible` proofs).
    pub exact: bool,
}

/// A registered solver: its metadata and its seeded factory.
pub struct SolverEntry {
    /// Metadata.
    pub info: SolverInfo,
    factory: fn(u64) -> Box<dyn Solver>,
}

impl SolverEntry {
    /// Instantiates the solver (deterministic solvers ignore `seed`).
    pub fn build(&self, seed: u64) -> Box<dyn Solver> {
        (self.factory)(seed)
    }
}

impl std::fmt::Debug for SolverEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverEntry")
            .field("info", &self.info)
            .finish()
    }
}

/// A name-keyed collection of solver factories.
#[derive(Debug, Default)]
pub struct SolverRegistry {
    entries: Vec<SolverEntry>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        SolverRegistry::default()
    }

    /// The registry of every heuristic and ablation variant of this crate:
    ///
    /// | key | solver |
    /// |---|---|
    /// | `memheft` | MemHEFT (Algorithm 1) |
    /// | `memminmin` | MemMinMin (Algorithm 2) |
    /// | `heft` | memory-oblivious HEFT baseline |
    /// | `minmin` | memory-oblivious MinMin baseline |
    /// | `memheft-cpsum` | MemHEFT with critical-path-sum priorities |
    /// | `memheft-memreq` | MemHEFT with memory-requirement priorities |
    /// | `memheft-red` | MemHEFT preferring red on EFT ties |
    /// | `memheft-rand` | MemHEFT with seeded random tie-breaking |
    /// | `portfolio` | anytime race over the memory-aware heuristics |
    /// | `online-memheft` | MemHEFT through the online replay engine |
    /// | `online-memminmin` | MemMinMin through the online replay engine |
    pub fn heuristics() -> Self {
        let mut registry = SolverRegistry::empty();
        registry.register(
            SolverInfo {
                key: "memheft",
                summary: "MemHEFT — memory-aware HEFT (paper Algorithm 1)",
                memory_aware: true,
                exact: false,
            },
            |_| Box::new(MemHeft::new()),
        );
        registry.register(
            SolverInfo {
                key: "memminmin",
                summary: "MemMinMin — memory-aware MinMin (paper Algorithm 2)",
                memory_aware: true,
                exact: false,
            },
            |_| Box::new(MemMinMin::new()),
        );
        registry.register(
            SolverInfo {
                key: "heft",
                summary: "HEFT — memory-oblivious baseline (unbounded MemHEFT)",
                memory_aware: false,
                exact: false,
            },
            |_| Box::new(Heft::new()),
        );
        registry.register(
            SolverInfo {
                key: "minmin",
                summary: "MinMin — memory-oblivious baseline (unbounded MemMinMin)",
                memory_aware: false,
                exact: false,
            },
            |_| Box::new(MinMin::new()),
        );
        registry.register(
            SolverInfo {
                key: "memheft-cpsum",
                summary: "MemHEFT ablation — critical-path-sum priority list",
                memory_aware: true,
                exact: false,
            },
            |_| {
                Box::new(MemHeftVariant {
                    priority: PriorityScheme::CriticalPathSum,
                    ..Default::default()
                })
            },
        );
        registry.register(
            SolverInfo {
                key: "memheft-memreq",
                summary: "MemHEFT ablation — memory-requirement priority list",
                memory_aware: true,
                exact: false,
            },
            |_| {
                Box::new(MemHeftVariant {
                    priority: PriorityScheme::MemoryRequirement,
                    ..Default::default()
                })
            },
        );
        registry.register(
            SolverInfo {
                key: "memheft-red",
                summary: "MemHEFT ablation — prefer the red memory on EFT ties",
                memory_aware: true,
                exact: false,
            },
            |_| {
                Box::new(MemHeftVariant {
                    memory_preference: MemoryPreference::Red,
                    ..Default::default()
                })
            },
        );
        registry.register(
            SolverInfo {
                key: "memheft-rand",
                summary: "MemHEFT ablation — seeded random tie-breaking",
                memory_aware: true,
                exact: false,
            },
            |seed| {
                Box::new(MemHeftVariant {
                    tie_break: TieBreak::Random(seed),
                    ..Default::default()
                })
            },
        );
        registry.register(
            SolverInfo {
                key: "portfolio",
                summary: "Portfolio — races the memory-aware heuristics, best makespan wins",
                memory_aware: true,
                exact: false,
            },
            |seed| Box::new(crate::portfolio::Portfolio::default_heuristics(seed)),
        );
        registry.register(
            SolverInfo {
                key: "online-memheft",
                summary: "MemHEFT via the online replay engine (whole DAG at t=0)",
                memory_aware: true,
                exact: false,
            },
            |_| Box::new(crate::online::OnlineSolver::memheft()),
        );
        registry.register(
            SolverInfo {
                key: "online-memminmin",
                summary: "MemMinMin via the online replay engine (whole DAG at t=0)",
                memory_aware: true,
                exact: false,
            },
            |_| Box::new(crate::online::OnlineSolver::memminmin()),
        );
        registry
    }

    /// Registers a solver.
    ///
    /// # Panics
    /// Panics if `info.key` is already registered — duplicate keys are a
    /// programming error, not a runtime condition.
    pub fn register(&mut self, info: SolverInfo, factory: fn(u64) -> Box<dyn Solver>) {
        assert!(
            self.entry(info.key).is_none(),
            "solver key `{}` registered twice",
            info.key
        );
        self.entries.push(SolverEntry { info, factory });
    }

    /// The entry registered under `key`, if any.
    pub fn entry(&self, key: &str) -> Option<&SolverEntry> {
        self.entries.iter().find(|e| e.info.key == key)
    }

    /// Instantiates the solver registered under `key` with seed 0.
    pub fn build(&self, key: &str) -> Option<Box<dyn Solver>> {
        self.build_seeded(key, 0)
    }

    /// Instantiates the solver registered under `key` with the given seed
    /// (deterministic solvers ignore it).
    pub fn build_seeded(&self, key: &str, seed: u64) -> Option<Box<dyn Solver>> {
        self.entry(key).map(|e| e.build(seed))
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[SolverEntry] {
        &self.entries
    }

    /// All registry keys, in registration order.
    pub fn keys(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.info.key).collect()
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{OptimalityStatus, SolveCtx};
    use mals_gen::dex;
    use mals_platform::Platform;
    use mals_sim::validate;

    #[test]
    fn heuristic_registry_contents() {
        let registry = SolverRegistry::heuristics();
        assert_eq!(registry.len(), 11);
        assert!(!registry.is_empty());
        for key in [
            "memheft",
            "memminmin",
            "heft",
            "minmin",
            "memheft-cpsum",
            "memheft-memreq",
            "memheft-red",
            "memheft-rand",
            "portfolio",
            "online-memheft",
            "online-memminmin",
        ] {
            assert!(registry.entry(key).is_some(), "missing {key}");
            assert!(!registry.entry(key).unwrap().info.exact);
        }
        assert!(registry.entry("bogus").is_none());
        assert!(registry.build("bogus").is_none());
        assert_eq!(registry.keys()[0], "memheft");
    }

    #[test]
    fn every_heuristic_solves_dex_validly() {
        let registry = SolverRegistry::heuristics();
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let ctx = SolveCtx::sequential();
        for entry in registry.entries() {
            let solver = entry.build(7);
            let outcome = solver.solve(&g, &platform, &ctx);
            assert_eq!(
                outcome.status,
                OptimalityStatus::Heuristic,
                "{}",
                entry.info.key
            );
            let schedule = outcome.schedule.expect("heuristics succeed on D_ex");
            let check_platform = if entry.info.memory_aware {
                platform.clone()
            } else {
                platform.unbounded()
            };
            let report = validate(&g, &check_platform, &schedule);
            assert!(report.is_valid(), "{}: {:?}", entry.info.key, report.errors);
        }
    }

    #[test]
    fn seeded_factory_is_deterministic() {
        let registry = SolverRegistry::heuristics();
        let (g, _) = dex();
        let platform = Platform::single_pair(8.0, 8.0);
        let ctx = SolveCtx::sequential();
        let a = registry
            .build_seeded("memheft-rand", 3)
            .unwrap()
            .solve(&g, &platform, &ctx);
        let b = registry
            .build_seeded("memheft-rand", 3)
            .unwrap()
            .solve(&g, &platform, &ctx);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_keys_panic() {
        let mut registry = SolverRegistry::heuristics();
        registry.register(
            SolverInfo {
                key: "memheft",
                summary: "dup",
                memory_aware: true,
                exact: false,
            },
            |_| Box::new(MemHeft::new()),
        );
    }
}
