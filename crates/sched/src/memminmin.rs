//! MemMinMin — Algorithm 2 of the paper.
//!
//! MemMinMin has no static prioritizing phase: at every step it looks at the
//! whole set of *ready* tasks (all predecessors already scheduled), evaluates
//! the memory-aware earliest finish time of each of them on both memories,
//! and commits the task/memory pair with the globally smallest EFT. It fails
//! when no ready task fits in either memory.

use crate::error::ScheduleError;
use crate::incremental::EstCache;
use crate::partial::PartialSchedule;
use crate::traits::Scheduler;
use mals_dag::{TaskGraph, TaskId};
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{CancelSignal, ParallelConfig, WorkerPool};

/// The MemMinMin scheduler (Algorithm 2 of the paper).
///
/// Every selection step evaluates the whole ready list; with
/// [`MemMinMin::with_parallelism`] those evaluations are spread over a
/// per-schedule [`WorkerPool`] and the schedule stays bit-identical to the
/// sequential run.
#[derive(Debug, Clone, Copy)]
pub struct MemMinMin {
    parallel: ParallelConfig,
}

impl Default for MemMinMin {
    fn default() -> Self {
        Self::new()
    }
}

impl MemMinMin {
    /// Creates a (sequential) MemMinMin scheduler.
    pub fn new() -> Self {
        MemMinMin {
            parallel: ParallelConfig::sequential(),
        }
    }

    /// Creates a MemMinMin scheduler that evaluates the ready list with the
    /// given thread configuration.
    pub fn with_parallelism(parallel: ParallelConfig) -> Self {
        MemMinMin { parallel }
    }

    /// Runs the selection loop on an externally owned worker pool (`None` or
    /// a 1-thread pool: sequential). The schedule is bit-identical for every
    /// pool size; callers solving many graphs hold one pool (e.g. via an
    /// `Engine`) to amortise the thread startup.
    ///
    /// The loop is incremental: per-memory evaluations are cached in an
    /// exact [`EstCache`] and only the sides a commit actually touched are
    /// re-evaluated — after a same-memory placement with no cross-memory
    /// transfer, the whole ready list keeps its other-memory evaluations.
    /// The selection itself still scans the ready list in task-id order with
    /// the exact comparison of [`PartialSchedule::best_ready_choice`], so
    /// the chosen placements are unchanged.
    ///
    /// `cancel` is polled once per committed task: when it trips, the loop
    /// returns [`ScheduleError::Cancelled`] instead of committing anything
    /// further. [`CancelSignal::default`] never trips.
    pub fn schedule_pooled(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        pool: Option<&WorkerPool>,
        cancel: CancelSignal<'_>,
    ) -> Result<Schedule, ScheduleError> {
        graph.validate()?;
        let mut partial = PartialSchedule::new(graph, platform);
        let mut cache = EstCache::new(graph.n_tasks());
        let pool = pool.filter(|p| p.threads() > 1);
        // Per-schedule scratch (the allocation-free commit path): the ready
        // snapshot, the stale fan-out and the commit record are refilled in
        // place every step, so steady state allocates nothing per commit.
        let mut ready: Vec<TaskId> = Vec::new();
        let mut stale: Vec<TaskId> = Vec::new();
        let mut pairs = Vec::new();
        let mut effects = crate::partial::CommitEffects::empty();
        while !partial.is_complete() {
            if cancel.is_cancelled() {
                return Err(ScheduleError::Cancelled {
                    scheduled: partial.n_scheduled(),
                    total: graph.n_tasks(),
                });
            }
            ready.clear();
            ready.extend(partial.ready_iter());
            if let Some(pool) = pool {
                // Refresh every stale candidate in one fan-out, then reduce
                // over the (now fresh) cache on the calling thread.
                stale.clear();
                stale.extend(ready.iter().copied().filter(|&task| !cache.is_fresh(task)));
                partial.evaluate_pairs_into(&stale, pool, &mut pairs);
                for (&task, &pair) in stale.iter().zip(pairs.iter()) {
                    cache.store_pair(task, pair);
                }
            }
            let mut best = None;
            for &task in &ready {
                if let Some(breakdown) = cache.best(&partial, task, false) {
                    if PartialSchedule::is_better_choice(&best, task, &breakdown) {
                        best = Some((task, breakdown));
                    }
                }
            }
            match best {
                Some((task, breakdown)) => {
                    partial.commit_into(task, &breakdown, &mut effects);
                    cache.apply(&effects);
                }
                None => return partial.finish_or_error(),
            }
        }
        partial.finish_or_error()
    }
}

impl Scheduler for MemMinMin {
    fn name(&self) -> &'static str {
        "MemMinMin"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        let cancel = CancelSignal::default();
        if self.parallel.resolved_threads() <= 1 {
            self.schedule_pooled(graph, platform, None, cancel)
        } else {
            // One pool for the whole schedule: the workers persist across
            // the thousands of selection steps instead of being re-spawned.
            let pool = WorkerPool::new(self.parallel);
            self.schedule_pooled(graph, platform, Some(&pool), cancel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::validate;
    use mals_util::Pcg64;

    #[test]
    fn schedules_dex_within_bounds() {
        let (g, _) = dex();
        for bound in [5.0, 6.0, 10.0] {
            let platform = Platform::single_pair(bound, bound);
            let s = MemMinMin::new().schedule(&g, &platform).unwrap();
            let report = validate(&g, &platform, &s);
            assert!(report.is_valid(), "bound {bound}: {:?}", report.errors);
            assert!(report.peaks.blue <= bound + 1e-9);
            assert!(report.peaks.red <= bound + 1e-9);
        }
    }

    #[test]
    fn fails_cleanly_when_memory_is_hopeless() {
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let err = MemMinMin::new().schedule(&g, &platform).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn greedy_choice_picks_fastest_first_task() {
        // T1 runs in 1 unit on red vs 3 on blue: the first committed task
        // must be T1 on the red memory (it is the only source).
        let (g, [t1, ..]) = dex();
        let platform = Platform::single_pair(100.0, 100.0);
        let partial = PartialSchedule::new(&g, &platform);
        let (task, bd) = partial.best_ready_choice().unwrap();
        assert_eq!(task, t1);
        assert_eq!(bd.memory, mals_platform::Memory::Red);
        assert_eq!(bd.eft, 1.0);
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_sequential() {
        let mut rng = Pcg64::new(1234);
        for _ in 0..4 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
            let sequential = MemMinMin::new().schedule(&g, &platform).unwrap();
            for threads in [2, 4, 8] {
                let parallel = MemMinMin::with_parallelism(ParallelConfig::with_threads(threads))
                    .schedule(&g, &platform)
                    .unwrap();
                assert_eq!(sequential, parallel, "{threads} threads diverged");
            }
        }
    }

    #[test]
    fn random_graphs_produce_valid_schedules() {
        let mut rng = Pcg64::new(21);
        for i in 0..10 {
            let g = mals_gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
            let s = MemMinMin::new().schedule(&g, &platform).unwrap();
            let report = validate(&g, &platform, &s);
            assert!(report.is_valid(), "graph {i}: {:?}", report.errors);
        }
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MemMinMin::new().name(), "MemMinMin");
    }

    #[test]
    fn rejects_cyclic_graph() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, a, 1.0, 1.0).unwrap();
        let err = MemMinMin::new()
            .schedule(&g, &Platform::default())
            .unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidGraph(_)));
    }
}
