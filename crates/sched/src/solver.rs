//! The unified solver interface.
//!
//! Historically the workspace had two parallel solving worlds: the heuristics
//! behind [`Scheduler`] and the exact backends behind
//! `mals_exact::ExactBackend`, and every experiment driver hard-coded which
//! structs it instantiated. The [`Solver`] trait subsumes both: a solve takes
//! a task graph, a platform and a [`SolveCtx`] (budgets + an optional shared
//! worker pool) and returns a [`SolveOutcome`] — the schedule, if any,
//! together with an [`OptimalityStatus`] saying *what was proven about it*.
//!
//! * heuristics return [`OptimalityStatus::Heuristic`] schedules;
//! * exact solvers return `Optimal`, `Feasible` (incumbent without a proof),
//!   `Infeasible` or `LimitHit`;
//! * the LP exporter "solves" nothing and reports `LimitHit`.
//!
//! Solvers are instantiated by name through the
//! [`SolverRegistry`](crate::SolverRegistry) and driven by an
//! [`Engine`](crate::Engine) session that owns the worker pool and the
//! default limits, so callers select algorithms with strings instead of
//! concrete types.

use crate::ablation::MemHeftVariant;
use crate::error::ScheduleError;
use crate::memheft::{schedule_with_priority_pooled, MemHeft};
use crate::memminmin::MemMinMin;
use crate::traits::Scheduler;
use crate::unbounded::Unbounded;
use mals_dag::{rank, TaskGraph};
use mals_platform::Platform;
use mals_sim::Schedule;
use mals_util::{CancelSignal, CancelToken, Deadline, WorkerPool};

/// Budgets shared by every solver (the heuristics ignore them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveLimits {
    /// Maximum number of search-tree nodes (combinatorial nodes for the
    /// branch-and-bound backend, LP solves for the MILP backend). The MILP
    /// backend's lazy-repair searches draw from a *second* budget of the
    /// same size, so its reported node total is bounded by `2 ×
    /// node_limit`.
    pub node_limit: u64,
    /// Simplex iteration budget per LP solve (MILP backend only).
    pub lp_iteration_limit: u64,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            node_limit: 500_000,
            lp_iteration_limit: 20_000,
        }
    }
}

impl SolveLimits {
    /// Limits with the given node budget and the default LP budget.
    pub fn with_node_limit(node_limit: u64) -> Self {
        SolveLimits {
            node_limit,
            ..SolveLimits::default()
        }
    }
}

/// Per-solve context handed to every [`Solver`]: the budgets, the shared
/// worker pool, and the cooperative cancellation signal, owned by the caller
/// (typically an [`Engine`](crate::Engine)) so that pool startup is
/// amortised across many solves.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveCtx<'a> {
    /// Budgets for exact solvers.
    pub limits: SolveLimits,
    /// Worker pool for within-schedule parallelism (`None`: run
    /// sequentially). A pool of 1 thread is equivalent to `None`.
    pub pool: Option<&'a WorkerPool>,
    /// Cooperative cancellation: solvers poll this once per committed task
    /// (heuristics) or explored node (exact backends) and return
    /// [`OptimalityStatus::LimitHit`] — with the incumbent-so-far, if any —
    /// once it trips. Default: never cancelled.
    pub cancel: CancelSignal<'a>,
}

impl<'a> SolveCtx<'a> {
    /// A sequential context with default limits.
    pub fn sequential() -> SolveCtx<'static> {
        SolveCtx::default()
    }

    /// A sequential context with the given limits.
    pub fn with_limits(limits: SolveLimits) -> SolveCtx<'static> {
        SolveCtx {
            limits,
            ..SolveCtx::default()
        }
    }

    /// A context evaluating on `pool` with the given limits.
    pub fn pooled(limits: SolveLimits, pool: &'a WorkerPool) -> SolveCtx<'a> {
        SolveCtx {
            limits,
            pool: Some(pool),
            cancel: CancelSignal::default(),
        }
    }

    /// Returns a copy observing `token` (replacing any previous token).
    pub fn with_cancel_token(mut self, token: &'a CancelToken) -> SolveCtx<'a> {
        self.cancel.token = Some(token);
        self
    }

    /// Returns a copy observing `deadline` (replacing any previous one).
    pub fn with_deadline(mut self, deadline: Deadline) -> SolveCtx<'a> {
        self.cancel.deadline = Some(deadline);
        self
    }

    /// True once the solve should wind down (token tripped or deadline
    /// passed). Solvers poll this at their per-commit / per-node check
    /// points.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The pool, if it would actually parallelise anything.
    pub fn parallel_pool(&self) -> Option<&'a WorkerPool> {
        self.pool.filter(|p| p.threads() > 1)
    }
}

/// What a [`SolveOutcome`] proves about its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalityStatus {
    /// The schedule is provably optimal (within the solver's decision
    /// space).
    Optimal,
    /// The schedule was produced by a polynomial heuristic; no optimality
    /// claim is made.
    Heuristic,
    /// The schedule is feasible but a budget ran out before the optimality
    /// proof closed.
    Feasible,
    /// No schedule exists within the memory bounds (within the solver's
    /// decision space) — or the instance was rejected outright (see
    /// [`SolveOutcome::error`]).
    Infeasible,
    /// A budget ran out before any schedule was found; nothing is proven.
    LimitHit,
}

impl OptimalityStatus {
    /// Stable lower-case identifier (used in the JSON service surface).
    pub fn as_str(self) -> &'static str {
        match self {
            OptimalityStatus::Optimal => "optimal",
            OptimalityStatus::Heuristic => "heuristic",
            OptimalityStatus::Feasible => "feasible",
            OptimalityStatus::Infeasible => "infeasible",
            OptimalityStatus::LimitHit => "limit_hit",
        }
    }

    /// Parses [`OptimalityStatus::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "optimal" => OptimalityStatus::Optimal,
            "heuristic" => OptimalityStatus::Heuristic,
            "feasible" => OptimalityStatus::Feasible,
            "infeasible" => OptimalityStatus::Infeasible,
            "limit_hit" => OptimalityStatus::LimitHit,
            _ => return None,
        })
    }

    /// `true` for the statuses that must carry a schedule.
    pub fn carries_schedule(self) -> bool {
        matches!(
            self,
            OptimalityStatus::Optimal | OptimalityStatus::Heuristic | OptimalityStatus::Feasible
        )
    }
}

impl std::fmt::Display for OptimalityStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The result of one [`Solver::solve`] call.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The schedule, present exactly when
    /// [`status.carries_schedule()`](OptimalityStatus::carries_schedule).
    pub schedule: Option<Schedule>,
    /// What is proven about the schedule (or its absence).
    pub status: OptimalityStatus,
    /// Search effort (nodes expanded / LPs solved); 0 for heuristics.
    pub nodes: u64,
    /// Why the instance was rejected, when it never reached the solver
    /// proper (e.g. a cyclic graph). `None` for ordinary outcomes.
    pub error: Option<String>,
}

impl SolveOutcome {
    /// An outcome carrying `schedule` with the given status.
    pub fn with_schedule(schedule: Schedule, status: OptimalityStatus, nodes: u64) -> Self {
        debug_assert!(status.carries_schedule());
        SolveOutcome {
            schedule: Some(schedule),
            status,
            nodes,
            error: None,
        }
    }

    /// A schedule-less outcome with the given status.
    pub fn without_schedule(status: OptimalityStatus, nodes: u64) -> Self {
        debug_assert!(!status.carries_schedule());
        SolveOutcome {
            schedule: None,
            status,
            nodes,
            error: None,
        }
    }

    /// Maps a [`Scheduler`] result to a heuristic outcome:
    /// success → [`OptimalityStatus::Heuristic`], infeasibility →
    /// [`OptimalityStatus::Infeasible`], cancellation →
    /// [`OptimalityStatus::LimitHit`] (a heuristic has no incumbent to
    /// salvage: a prefix of a schedule is not a schedule), and any other
    /// scheduling error → `Infeasible` with [`SolveOutcome::error`]
    /// recording the cause.
    pub fn from_heuristic(result: Result<Schedule, ScheduleError>) -> Self {
        match result {
            Ok(schedule) => SolveOutcome::with_schedule(schedule, OptimalityStatus::Heuristic, 0),
            Err(ScheduleError::Infeasible { .. }) => {
                SolveOutcome::without_schedule(OptimalityStatus::Infeasible, 0)
            }
            Err(ScheduleError::Cancelled { .. }) => {
                SolveOutcome::without_schedule(OptimalityStatus::LimitHit, 0)
            }
            Err(e) => SolveOutcome {
                schedule: None,
                status: OptimalityStatus::Infeasible,
                nodes: 0,
                error: Some(e.to_string()),
            },
        }
    }

    /// The makespan of the carried schedule, if any.
    pub fn makespan(&self) -> Option<f64> {
        self.schedule.as_ref().map(|s| s.makespan())
    }

    /// `true` for [`OptimalityStatus::Optimal`].
    pub fn is_optimal(&self) -> bool {
        self.status == OptimalityStatus::Optimal
    }
}

/// A solving algorithm — heuristic or exact — behind one interface.
///
/// `Sync` is required so a solver instance can be shared across the worker
/// threads of a campaign; every solver in the workspace is a small value
/// type, so this costs nothing.
pub trait Solver: Sync {
    /// The display name used as the series label in experiment outputs
    /// (e.g. `"MemHEFT"`, `"Optimal(MILP)"`). Registry *keys* (`"memheft"`,
    /// `"milp"`) are separate; see [`crate::SolverRegistry`].
    fn name(&self) -> &str;

    /// Solves `graph` on `platform` under `ctx`.
    ///
    /// Implementations must return schedules that pass `mals_sim::validate`
    /// (checked by the registry conformance suite) and must not claim a
    /// status stronger than what they proved.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome;
}

impl<S: Solver + ?Sized> Solver for &S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        (**self).solve(graph, platform, ctx)
    }
}

impl<S: Solver + ?Sized> Solver for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        (**self).solve(graph, platform, ctx)
    }
}

impl Solver for MemHeft {
    fn name(&self) -> &str {
        "MemHEFT"
    }

    /// MemHEFT with the ready-candidate evaluations spread over `ctx.pool`
    /// (bit-identical to the sequential run for any thread count).
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        // The rank computation itself requires acyclicity, so reject
        // invalid graphs before building the priority list.
        if let Err(e) = graph.validate() {
            return SolveOutcome::from_heuristic(Err(e.into()));
        }
        let order = rank::rank_sorted_tasks(graph);
        SolveOutcome::from_heuristic(schedule_with_priority_pooled(
            graph,
            platform,
            &order,
            ctx.parallel_pool(),
            false,
            ctx.cancel,
        ))
    }
}

impl Solver for MemMinMin {
    fn name(&self) -> &str {
        "MemMinMin"
    }

    /// MemMinMin with the ready-list evaluations spread over `ctx.pool`
    /// (bit-identical to the sequential run for any thread count).
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        SolveOutcome::from_heuristic(self.schedule_pooled(
            graph,
            platform,
            ctx.parallel_pool(),
            ctx.cancel,
        ))
    }
}

impl Solver for MemHeftVariant {
    fn name(&self) -> &str {
        Scheduler::name(self)
    }

    /// The variant's selection engine on `ctx.pool`; the variant's own
    /// `parallel` field only applies to the [`Scheduler`] entry point.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        if let Err(e) = graph.validate() {
            return SolveOutcome::from_heuristic(Err(e.into()));
        }
        let order = self.priority_list(graph);
        SolveOutcome::from_heuristic(schedule_with_priority_pooled(
            graph,
            platform,
            &order,
            ctx.parallel_pool(),
            self.memory_preference == crate::ablation::MemoryPreference::Red,
            ctx.cancel,
        ))
    }
}

impl<S: Solver + Sync> Solver for Unbounded<S> {
    fn name(&self) -> &str {
        self.display_name()
    }

    /// Solves on the unbounded copy of the platform (the memory-oblivious
    /// baselines ignore the bounds by construction).
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        self.inner().solve(graph, &platform.unbounded(), ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Heft, MinMin};
    use mals_gen::dex;
    use mals_sim::validate;
    use mals_util::ParallelConfig;

    #[test]
    fn status_string_roundtrip() {
        for status in [
            OptimalityStatus::Optimal,
            OptimalityStatus::Heuristic,
            OptimalityStatus::Feasible,
            OptimalityStatus::Infeasible,
            OptimalityStatus::LimitHit,
        ] {
            assert_eq!(OptimalityStatus::parse(status.as_str()), Some(status));
            assert_eq!(status.to_string(), status.as_str());
        }
        assert_eq!(OptimalityStatus::parse("bogus"), None);
    }

    #[test]
    fn heuristic_solver_outcomes_match_scheduler_results() {
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let ctx = SolveCtx::sequential();
        for solver in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
            let outcome = solver.solve(&g, &platform, &ctx);
            assert_eq!(outcome.status, OptimalityStatus::Heuristic);
            assert_eq!(outcome.nodes, 0);
            let schedule = outcome.schedule.as_ref().unwrap();
            assert!(validate(&g, &platform, schedule).is_valid());
        }
        let tight = Platform::single_pair(2.0, 2.0);
        let outcome = Solver::solve(&MemHeft::new(), &g, &tight, &ctx);
        assert_eq!(outcome.status, OptimalityStatus::Infeasible);
        assert!(outcome.schedule.is_none());
        assert!(outcome.error.is_none());
    }

    #[test]
    fn pooled_solve_is_bit_identical_to_sequential() {
        let (g, _) = dex();
        let platform = Platform::single_pair(6.0, 6.0);
        let sequential = SolveCtx::sequential();
        let pool = WorkerPool::new(ParallelConfig::with_threads(4));
        let pooled = SolveCtx::pooled(SolveLimits::default(), &pool);
        for solver in [
            &MemHeft::new() as &dyn Solver,
            &MemMinMin::new(),
            &Heft::new(),
            &MinMin::new(),
        ] {
            let a = solver.solve(&g, &platform, &sequential);
            let b = solver.solve(&g, &platform, &pooled);
            assert_eq!(a.schedule, b.schedule, "{} diverged", solver.name());
        }
    }

    #[test]
    fn unbounded_solvers_ignore_memory_bounds() {
        let (g, _) = dex();
        let hopeless = Platform::single_pair(1.0, 1.0);
        let ctx = SolveCtx::sequential();
        let outcome = Solver::solve(&Heft::new(), &g, &hopeless, &ctx);
        assert_eq!(outcome.status, OptimalityStatus::Heuristic);
        let schedule = outcome.schedule.unwrap();
        assert!(validate(&g, &hopeless.unbounded(), &schedule).is_valid());
        assert_eq!(Solver::name(&Heft::new()), "HEFT");
        assert_eq!(Solver::name(&MinMin::new()), "MinMin");
    }

    #[test]
    fn invalid_graph_reports_an_error() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, a, 1.0, 1.0).unwrap();
        let ctx = SolveCtx::sequential();
        for solver in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
            let outcome = solver.solve(&g, &Platform::default(), &ctx);
            assert_eq!(outcome.status, OptimalityStatus::Infeasible);
            assert!(outcome.error.is_some(), "{}", solver.name());
        }
    }

    #[test]
    fn limits_constructors() {
        let limits = SolveLimits::with_node_limit(42);
        assert_eq!(limits.node_limit, 42);
        assert_eq!(
            limits.lp_iteration_limit,
            SolveLimits::default().lp_iteration_limit
        );
    }
}
