//! Within-schedule parallel scaling: the same 1000-task LargeRandSet
//! instance (Figures 12–13 scale) scheduled with the ready-list evaluation
//! spread over 1 / 2 / 4 / 8 threads.
//!
//! The schedules are bit-identical at every thread count (asserted by
//! `tests/parallel_determinism.rs`); this bench measures only the wall-clock
//! effect of the `mals_util::WorkerPool` engine. On a single-core machine
//! the >1-thread rows show the pool's synchronisation overhead instead of a
//! speedup — read them next to the machine's `available_parallelism`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mals_bench::{large_rand_dag, single_pair, WITHIN_SCHEDULE_SEED, WITHIN_SCHEDULE_TASKS};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_within_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("within_schedule");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let graph = large_rand_dag(WITHIN_SCHEDULE_TASKS, WITHIN_SCHEDULE_SEED);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = 0.7 * reference.heft_peaks.max();
    let bounded = platform.with_memory_bounds(bound, bound);

    for &threads in &[1usize, 2, 4, 8] {
        let cfg = ParallelConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("memminmin", threads), &threads, |b, _| {
            b.iter(|| {
                MemMinMin::with_parallelism(cfg).schedule(black_box(&graph), black_box(&bounded))
            })
        });
        group.bench_with_input(BenchmarkId::new("memheft", threads), &threads, |b, _| {
            b.iter(|| {
                MemHeft::with_parallelism(cfg).schedule(black_box(&graph), black_box(&bounded))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_within_schedule);
criterion_main!(benches);
