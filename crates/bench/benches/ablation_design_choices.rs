//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! the MemHEFT priority scheme, tie-breaking policy and memory preference,
//! and the pruning budget of the branch-and-bound solver.
//!
//! Criterion reports throughput; the companion makespans are printed once at
//! the start so the quality impact of each choice is visible alongside its
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{single_pair, small_rand_dag};
use mals_exact::BranchAndBound;
use mals_experiments::heft_reference;
use mals_sched::ablation::{MemHeftVariant, MemoryPreference, PriorityScheme, TieBreak};
use mals_sched::Scheduler;
use std::hint::black_box;
use std::time::Duration;

fn variants() -> Vec<(&'static str, MemHeftVariant)> {
    vec![
        ("priority_upward_rank", MemHeftVariant::paper_default()),
        (
            "priority_cp_sum",
            MemHeftVariant {
                priority: PriorityScheme::CriticalPathSum,
                ..Default::default()
            },
        ),
        (
            "priority_mem_req",
            MemHeftVariant {
                priority: PriorityScheme::MemoryRequirement,
                ..Default::default()
            },
        ),
        (
            "tiebreak_random",
            MemHeftVariant {
                tie_break: TieBreak::Random(42),
                ..Default::default()
            },
        ),
        (
            "prefer_red_memory",
            MemHeftVariant {
                memory_preference: MemoryPreference::Red,
                ..Default::default()
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let graph = small_rand_dag(24, 0xAB);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    // Pick the tightest bound (as a fraction of HEFT's footprint) at which the
    // paper-default variant still succeeds, so the ablation compares real
    // schedules rather than failure paths.
    let bound = [0.6, 0.7, 0.8, 0.9, 1.0]
        .iter()
        .map(|f| f * reference.heft_peaks.max())
        .find(|&b| {
            MemHeftVariant::paper_default()
                .schedule(&graph, &platform.with_memory_bounds(b, b))
                .is_ok()
        })
        .unwrap_or(reference.heft_peaks.max());
    let bounded = platform.with_memory_bounds(bound, bound);
    eprintln!(
        "# ablation memory bound: {bound:.1} ({:.0}% of HEFT's footprint)",
        100.0 * bound / reference.heft_peaks.max()
    );

    // Report the makespan impact of each variant once.
    for (name, variant) in variants() {
        let makespan = variant
            .schedule(&graph, &bounded)
            .map(|s| s.makespan())
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|_| "infeasible".to_string());
        eprintln!("# ablation makespan [{name}] = {makespan}");
    }

    for (name, variant) in variants() {
        group.bench_function(name, |b| {
            b.iter(|| variant.schedule(black_box(&graph), black_box(&bounded)))
        });
    }

    // Branch-and-bound pruning budget ablation.
    let tiny = small_rand_dag(10, 0xAC);
    for budget in [1_000u64, 10_000, 100_000] {
        group.bench_function(format!("bb_node_budget_{budget}"), |b| {
            b.iter(|| {
                BranchAndBound::with_node_limit(budget).solve(black_box(&tiny), black_box(&bounded))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
