//! Figure 11 — absolute memory sweep on one SmallRandSet DAG: all four
//! schedulers plus the lower bound.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{single_pair, small_rand_dag};
use mals_exact::makespan_lower_bound;
use mals_experiments::figures::{fig11, SingleRandConfig};
use mals_experiments::{heft_reference, sweep_absolute};
use mals_sched::{Heft, MemHeft, MemMinMin, MinMin, SolveCtx};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let graph = small_rand_dag(30, 0x5EED_0001);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    let grid: Vec<f64> = (0..=10)
        .map(|i| reference.heft_peaks.max() * i as f64 / 10.0)
        .collect();

    group.bench_function("sweep_30_tasks_11_bounds", |b| {
        let memheft = MemHeft::new();
        let memminmin = MemMinMin::new();
        let heft = Heft::new();
        let minmin = MinMin::new();
        b.iter(|| {
            sweep_absolute(
                black_box(&graph),
                black_box(&platform),
                &grid,
                &[&memheft, &memminmin],
                &[&heft, &minmin],
                &SolveCtx::sequential(),
            )
        })
    });
    group.bench_function("lower_bound_30_tasks", |b| {
        b.iter(|| makespan_lower_bound(black_box(&graph), black_box(&platform)))
    });
    group.bench_function("figure_entry_point_default", |b| {
        let config = SingleRandConfig {
            n_tasks: 20,
            steps: 8,
            parallel: ParallelConfig::sequential(),
            ..SingleRandConfig::fig11_default()
        };
        b.iter(|| fig11(black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
