//! Scheduler-runtime scaling: how the heuristics' cost grows with the task
//! count (the paper states a worst-case complexity of `O(n²(n + m))` for both
//! memory-aware heuristics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mals_bench::{large_rand_dag, single_pair};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for &n_tasks in &[50usize, 100, 200, 400] {
        let graph = large_rand_dag(n_tasks, 0x5CA1E + n_tasks as u64);
        let platform = single_pair(0.0);
        let reference = heft_reference(&graph, &platform);
        let bound = 0.7 * reference.heft_peaks.max();
        let bounded = platform.with_memory_bounds(bound, bound);

        group.bench_with_input(BenchmarkId::new("memheft", n_tasks), &n_tasks, |b, _| {
            b.iter(|| MemHeft::new().schedule(black_box(&graph), black_box(&bounded)))
        });
        group.bench_with_input(BenchmarkId::new("memminmin", n_tasks), &n_tasks, |b, _| {
            b.iter(|| MemMinMin::new().schedule(black_box(&graph), black_box(&bounded)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
