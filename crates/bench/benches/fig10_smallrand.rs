//! Figure 10 — SmallRandSet campaign: memory-aware heuristics and the exact
//! branch-and-bound solver under normalised memory bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{single_pair, small_rand_dag, small_rand_set};
use mals_exact::BranchAndBound;
use mals_experiments::figures::{fig10, Fig10Config};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // One representative DAG at the tightest of {70%, 80%, 90%, 100%} of
    // HEFT's memory requirement that is still schedulable, so the heuristics
    // are measured on real scheduling work rather than on failure detection.
    let graph = small_rand_dag(16, 0x51);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = [0.7, 0.8, 0.9, 1.0]
        .iter()
        .map(|f| f * reference.heft_peaks.max())
        .find(|&b| {
            MemHeft::new()
                .schedule(&graph, &platform.with_memory_bounds(b, b))
                .is_ok()
        })
        .unwrap_or(reference.heft_peaks.max());
    let bounded = platform.with_memory_bounds(bound, bound);
    eprintln!(
        "# fig10 single-DAG memory bound: {bound:.1} ({:.0}% of HEFT's footprint)",
        100.0 * bound / reference.heft_peaks.max()
    );

    group.bench_function("memheft_one_dag_70pct", |b| {
        b.iter(|| MemHeft::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("memminmin_one_dag_70pct", |b| {
        b.iter(|| MemMinMin::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("optimal_bb_one_dag_70pct", |b| {
        b.iter(|| {
            BranchAndBound::with_node_limit(20_000).solve(black_box(&graph), black_box(&bounded))
        })
    });

    // The whole (scaled-down) campaign, sequentially, as one measurement.
    let _warm = small_rand_set(2, 8);
    group.bench_function("campaign_4_dags_8_tasks", |b| {
        let config = Fig10Config {
            n_dags: 4,
            n_tasks: 8,
            alphas: vec![0.4, 0.7, 1.0],
            optimal_node_limit: 5_000,
            parallel: ParallelConfig::sequential(),
            ..Fig10Config::default()
        };
        b.iter(|| fig10(black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
