//! Figure 15 — tiled Cholesky factorisation on the mirage-like node.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{cholesky_fixture, mirage};
use mals_experiments::figures::{fig15, LinalgConfig};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    let graph = cholesky_fixture(7);
    let platform = mirage(0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = (0.6 * reference.heft_peaks.max()).round();
    let bounded = platform.with_memory_bounds(bound, bound);

    group.bench_function("memheft_cholesky7_60pct", |b| {
        b.iter(|| MemHeft::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("memminmin_cholesky7_60pct", |b| {
        b.iter(|| MemMinMin::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("full_sweep_cholesky6", |b| {
        let config = LinalgConfig {
            tiles: 6,
            steps: 8,
            parallel: ParallelConfig::sequential(),
        };
        b.iter(|| fig15(black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig15);
criterion_main!(benches);
