//! Table 1 — the kernel-cost model and the task graphs built from it.
//!
//! The paper's Table 1 is an input (measured kernel timings), not an
//! algorithmic result; the corresponding benchmark measures what the
//! workspace does with it: building the tiled LU / Cholesky task graphs from
//! the cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_experiments::table1;
use mals_gen::{cholesky_dag, lu_dag, KernelCosts};
use std::hint::black_box;
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("kernel_cost_rows", |b| {
        b.iter(|| table1::rows(black_box(&KernelCosts::table1())))
    });
    group.bench_function("build_lu_dag_13x13", |b| {
        b.iter(|| lu_dag(black_box(13), &KernelCosts::table1()))
    });
    group.bench_function("build_cholesky_dag_13x13", |b| {
        b.iter(|| cholesky_dag(black_box(13), &KernelCosts::table1()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
