//! Figure 13 — absolute memory sweep on one LargeRandSet DAG.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{large_rand_dag, single_pair};
use mals_experiments::{heft_reference, sweep_absolute};
use mals_sched::{Heft, MemHeft, MemMinMin, MinMin, SolveCtx};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    let graph = large_rand_dag(300, 0x13);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    let grid: Vec<f64> = (2..=10)
        .map(|i| reference.heft_peaks.max() * i as f64 / 10.0)
        .collect();

    group.bench_function("sweep_300_tasks_9_bounds", |b| {
        let memheft = MemHeft::new();
        let memminmin = MemMinMin::new();
        let heft = Heft::new();
        let minmin = MinMin::new();
        b.iter(|| {
            sweep_absolute(
                black_box(&graph),
                black_box(&platform),
                &grid,
                &[&memheft, &memminmin],
                &[&heft, &minmin],
                &SolveCtx::sequential(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
