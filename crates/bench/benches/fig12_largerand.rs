//! Figure 12 — LargeRandSet campaign: MemHEFT and MemMinMin on large random
//! DAGs under normalised memory bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{large_rand_dag, single_pair};
use mals_experiments::figures::{fig12, Fig12Config};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    let graph = large_rand_dag(200, 0x12);
    let platform = single_pair(0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = 0.5 * reference.heft_peaks.max();
    let bounded = platform.with_memory_bounds(bound, bound);

    group.bench_function("memheft_200_tasks_50pct", |b| {
        b.iter(|| MemHeft::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("memminmin_200_tasks_50pct", |b| {
        b.iter(|| MemMinMin::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("campaign_3_dags_100_tasks", |b| {
        let config = Fig12Config {
            n_dags: 3,
            n_tasks: 100,
            alphas: vec![0.4, 0.7, 1.0],
            parallel: ParallelConfig::sequential(),
            ..Fig12Config::default()
        };
        b.iter(|| fig12(black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
