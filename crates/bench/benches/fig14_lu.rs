//! Figure 14 — tiled LU factorisation on the mirage-like node: makespan
//! versus memory (in tiles) for the memory-aware heuristics.

use criterion::{criterion_group, criterion_main, Criterion};
use mals_bench::{lu_fixture, mirage};
use mals_experiments::figures::{fig14, LinalgConfig};
use mals_experiments::heft_reference;
use mals_sched::{MemHeft, MemMinMin, Scheduler};
use mals_util::ParallelConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    let graph = lu_fixture(6);
    let platform = mirage(0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = (0.6 * reference.heft_peaks.max()).round();
    let bounded = platform.with_memory_bounds(bound, bound);

    group.bench_function("memheft_lu6_60pct", |b| {
        b.iter(|| MemHeft::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("memminmin_lu6_60pct", |b| {
        b.iter(|| MemMinMin::new().schedule(black_box(&graph), black_box(&bounded)))
    });
    group.bench_function("full_sweep_lu5", |b| {
        let config = LinalgConfig {
            tiles: 5,
            steps: 8,
            parallel: ParallelConfig::sequential(),
        };
        b.iter(|| fig14(black_box(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
