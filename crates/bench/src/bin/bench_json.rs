//! CI bench smoke runner: measures a fixed set of scheduling benchmarks and
//! emits a machine-readable baseline (`BENCH_baseline.json`), or compares
//! two such baselines and fails on a median regression.
//!
//! ```text
//! bench_json [--quick] [--out PATH]            # measure and emit JSON
//! bench_json compare BASE NEW [--tolerance N]  # exit 1 on >N% regression
//! ```
//!
//! The measurement loop is deliberately simple (one warm-up run, then a
//! fixed number of timed runs, median reported) — the point is a stable,
//! cheap number CI can diff, not a statistical study; `cargo bench -p
//! mals-bench` remains the place for careful measurements. The emitter
//! writes one bench per line so the comparator can parse its own output
//! without a JSON dependency; hand-edited baselines must keep that shape.

use mals_bench::{
    large_rand_dag, single_pair, small_rand_dag, WITHIN_SCHEDULE_SEED, WITHIN_SCHEDULE_TASKS,
};
use mals_dag::TaskGraph;
use mals_exact::{solver_registry, ExactBackend, MilpBackend, SolveLimits};
use mals_experiments::heft_reference;
use mals_platform::Platform;
use mals_sched::{Engine, EngineConfig, MemHeft, MemMinMin, Scheduler};
use mals_util::{parallel_map, ParallelConfig};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One measured benchmark: an id stable across runs and a closure whose
/// wall-clock time is the measurement.
struct Bench {
    id: String,
    run: Box<dyn Fn()>,
    /// Overrides the global minimum sample count — the second-scale scaling
    /// benches take 3 samples instead of 9 so the smoke run stays fast.
    min_samples: Option<usize>,
}

struct Measurement {
    id: String,
    median_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
}

fn scheduler_bench(
    id: impl Into<String>,
    graph: TaskGraph,
    platform: Platform,
    scheduler: impl Scheduler + 'static,
) -> Bench {
    Bench {
        id: id.into(),
        run: Box::new(move || {
            let result = scheduler.schedule(&graph, &platform);
            std::hint::black_box(result.is_ok());
        }),
        min_samples: None,
    }
}

/// A platform bounded at 70% of HEFT's own memory requirement for `graph` —
/// tight enough that the memory-aware logic does real work, loose enough
/// that the heuristics succeed.
fn bounded_single_pair(graph: &TaskGraph) -> Platform {
    let platform = single_pair(0.0);
    let reference = heft_reference(graph, &platform);
    let bound = 0.7 * reference.heft_peaks.max();
    platform.with_memory_bounds(bound, bound)
}

/// The benchmark set. `quick` keeps CI smoke runs in seconds; the full set
/// adds the paper-scale 1000-task within-schedule scaling rows.
fn benches(quick: bool) -> Vec<Bench> {
    let mut set = Vec::new();

    let small = small_rand_dag(60, 42);
    let small_platform = bounded_single_pair(&small);
    set.push(scheduler_bench(
        "memheft/smallrand-60",
        small.clone(),
        small_platform.clone(),
        MemHeft::new(),
    ));
    set.push(scheduler_bench(
        "memminmin/smallrand-60",
        small,
        small_platform,
        MemMinMin::new(),
    ));

    let medium_tasks = if quick { 150 } else { 400 };
    let medium = large_rand_dag(medium_tasks, 0x5CA1E + medium_tasks as u64);
    let medium_platform = bounded_single_pair(&medium);
    for threads in [1usize, 2, 4] {
        set.push(scheduler_bench(
            format!("memminmin/largerand-{medium_tasks}-t{threads}"),
            medium.clone(),
            medium_platform.clone(),
            MemMinMin::with_parallelism(ParallelConfig::with_threads(threads)),
        ));
    }
    set.push(scheduler_bench(
        format!("memheft/largerand-{medium_tasks}-t1"),
        medium.clone(),
        medium_platform.clone(),
        MemHeft::new(),
    ));
    set.push(scheduler_bench(
        format!("memheft/largerand-{medium_tasks}-t4"),
        medium,
        medium_platform,
        MemHeft::with_parallelism(ParallelConfig::with_threads(4)),
    ));

    // The MILP exact backend on a 10-task instance at exactly HEFT's memory
    // requirement (the α = 1 campaign point): the heuristics seed the
    // incumbent and the solver does the full LP-certified optimality proof,
    // guarding the simplex + branch-and-bound stack against latency
    // regressions.
    {
        let exact_graph = small_rand_dag(10, 7);
        let platform = single_pair(0.0);
        let reference = heft_reference(&exact_graph, &platform);
        let bound = reference.heft_peaks.max();
        let exact_platform = platform.with_memory_bounds(bound, bound);
        set.push(Bench {
            id: "exact/milp-smallrand-10".into(),
            run: Box::new(move || {
                let outcome =
                    MilpBackend.solve(&exact_graph, &exact_platform, &SolveLimits::default());
                std::hint::black_box(outcome.nodes());
            }),
            min_samples: None,
        });
    }

    // The engine layer: solving a batch of small DAGs through one persistent
    // `Engine` (pool spawned once, reused by every solve) versus spinning a
    // scheduler + pool up per solve — the amortisation the session object
    // exists for. Both run the same solver on the same DAGs at 2 threads.
    {
        let batch: Vec<TaskGraph> = (0..16).map(|i| small_rand_dag(12, 900 + i)).collect();
        let batch_platform = bounded_single_pair(&batch[0]);
        let engine_batch = batch.clone();
        let engine_platform = batch_platform.clone();
        set.push(Bench {
            id: "engine/batch-solve-16x12-t2".into(),
            run: Box::new(move || {
                let engine =
                    Engine::new(solver_registry(), EngineConfig::default().with_threads(2));
                let outcomes = engine
                    .solve_batch("memminmin", &engine_batch, &engine_platform)
                    .expect("registered solver");
                std::hint::black_box(outcomes.len());
            }),
            min_samples: None,
        });
        set.push(Bench {
            id: "engine/per-solve-16x12-t2".into(),
            run: Box::new(move || {
                for graph in &batch {
                    let scheduler = MemMinMin::with_parallelism(ParallelConfig::with_threads(2));
                    std::hint::black_box(scheduler.schedule(graph, &batch_platform).is_ok());
                }
            }),
            min_samples: None,
        });
    }

    // The portfolio racer (PR 6): all five default heuristic members racing
    // on a 4-thread pool over one medium DAG, winner by best makespan.
    // Guards the race overhead on top of the members themselves — the race
    // should cost about one slowest-member solve, not the sum of all five.
    {
        let race_graph = large_rand_dag(300, 0xACE + 300);
        let race_platform = bounded_single_pair(&race_graph);
        set.push(Bench {
            id: "engine/portfolio-race-300-t4".into(),
            run: Box::new(move || {
                let engine =
                    Engine::new(solver_registry(), EngineConfig::default().with_threads(4));
                let report = engine
                    .solve_portfolio::<&str>(&[], 0, &race_graph, &race_platform, None)
                    .expect("default members are registered");
                std::hint::black_box(report.winner);
            }),
            min_samples: None,
        });
    }

    // The online rolling-horizon engine (PR 9): a 2000-task Poisson arrival
    // trace replayed with re-plan-on-every-arrival MemHEFT at the α = 1
    // bound. The trace is pre-generated (generation is mals-gen's cost, not
    // the replay's); the measurement covers the event loop, the per-arrival
    // rank refresh over the arrived subgraph, and the floored incremental
    // commits — the whole online stack on top of the static machinery.
    {
        use mals_gen::ArrivalProcess;
        use mals_sched::{online, OnlineConfig, OnlineFlavor, ReplanPolicy, SolveCtx};
        let online_graph = large_rand_dag(2_000, 0xD1CE + 2_000);
        let platform = single_pair(0.0);
        let reference = heft_reference(&online_graph, &platform);
        let bound = reference.heft_peaks.max();
        let online_platform = platform.with_memory_bounds(bound, bound);
        let trace = ArrivalProcess::Poisson { rate: 100.0 }.generate(&online_graph, 11);
        set.push(Bench {
            id: "online/replay-2k".into(),
            run: Box::new(move || {
                let outcome = online::replay(
                    &online_graph,
                    &online_platform,
                    &trace,
                    OnlineConfig::new(OnlineFlavor::MemHeft, ReplanPolicy::EveryArrival),
                    &SolveCtx::sequential(),
                )
                .expect("α = 1 replay is feasible");
                std::hint::black_box(outcome.makespan);
            }),
            min_samples: Some(3),
        });
    }

    set.push(Bench {
        id: "pool/parallel_map-10k".into(),
        run: Box::new(|| {
            let items: Vec<u64> = (0..10_000).collect();
            let out = parallel_map(&items, ParallelConfig::with_threads(4), |&x| {
                x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
            });
            std::hint::black_box(out.len());
        }),
        min_samples: None,
    });

    // The incremental-engine scaling fixture (PR 5): one 10⁴-task daggen
    // instance through MemHEFT at the α = 1 bound (HEFT's own requirement,
    // where MemHEFT is guaranteed feasible). Guards the indexed staircase +
    // ready-set + EST-cache stack: the pre-refactor engine took seconds
    // here, the incremental one takes ~0.2 s.
    {
        let scaling_graph = large_rand_dag(10_000, 0xBEEF + 10_000);
        let platform = single_pair(0.0);
        let reference = heft_reference(&scaling_graph, &platform);
        let bound = reference.heft_peaks.max();
        let scaling_platform = platform.with_memory_bounds(bound, bound);
        set.push(Bench {
            id: "sched/memheft-10k".into(),
            run: Box::new(move || {
                let result = MemHeft::new().schedule(&scaling_graph, &scaling_platform);
                std::hint::black_box(result.is_ok());
            }),
            min_samples: Some(3),
        });
    }

    // The chunked-staircase scaling fixture (PR 8): one 10⁵-task daggen
    // instance through MemHEFT at the α = 1 bound. Guards the chunked
    // breakpoint storage + chunked ready frontier + allocation-free commit
    // path at the scale they exist for — the flat-Vec engine took ~13 s of
    // staircase memmoves here, the chunked one takes ~1.5 s end-to-end.
    {
        let huge_graph = large_rand_dag(100_000, 0xBEEF + 100_000);
        let platform = single_pair(0.0);
        let reference = heft_reference(&huge_graph, &platform);
        let bound = reference.heft_peaks.max();
        let huge_platform = platform.with_memory_bounds(bound, bound);
        set.push(Bench {
            id: "sched/memheft-100k".into(),
            run: Box::new(move || {
                let result = MemHeft::new().schedule(&huge_graph, &huge_platform);
                std::hint::black_box(result.is_ok());
            }),
            min_samples: Some(3),
        });
    }

    // The staircase mutation path in isolation: a deterministic storm of
    // interleaved `add_range` / `add_from` deltas over a profile that grows
    // to thousands of breakpoints — the reserve/release pattern of a commit,
    // without the scheduler around it. Guards the chunked insert/repair
    // (split-on-full, merge-on-sparse, summary patching) directly.
    set.push(Bench {
        id: "staircase/insert-storm".into(),
        run: Box::new(|| {
            use mals_util::Staircase;
            let mut stair = Staircase::constant(1_000_000.0);
            let mut state = 0x1234_5678_9ABC_DEF0u64;
            let mut rng = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            for _ in 0..4_000 {
                let t1 = (rng() % 1_000_000) as f64 / 10.0;
                let len = 1.0 + (rng() % 5_000) as f64 / 10.0;
                let size = 1.0 + (rng() % 100) as f64;
                if rng() % 4 == 0 {
                    // A release tail (the output-reservation shape).
                    stair.add_from(t1, if rng() % 2 == 0 { -size } else { size });
                } else {
                    // A reservation window: two new breakpoints that stay,
                    // so the profile grows to thousands of segments.
                    stair.add_range(t1, t1 + len, -size);
                }
            }
            std::hint::black_box(stair.len());
        }),
        min_samples: None,
    });

    // The streaming campaign harness over 1000 seeds of tiny DAGs: generate
    // from seed, solve at two α points, fold into the constant-memory
    // aggregates, drop. Guards the generator fast path and the fold loop.
    set.push(Bench {
        id: "campaign/stream-1k-seeds".into(),
        run: Box::new(|| {
            use mals_experiments::{run_streaming_campaign, CampaignConfig, CampaignIo};
            let set = mals_gen::SetParams::small_rand().scaled(1000, 8);
            let config = CampaignConfig {
                alphas: vec![0.6, 1.0],
                solvers: vec!["memheft".into()],
                optimal_node_limit: 1,
                parallel: ParallelConfig::sequential(),
            };
            let run =
                run_streaming_campaign(&set, &single_pair(0.0), &config, &CampaignIo::default())
                    .expect("in-memory campaign cannot fail");
            std::hint::black_box(run.dags_done);
        }),
        min_samples: Some(3),
    });

    // The service layer (PR 7): one full sustained-load cycle — an
    // in-process `malsd` on a loopback socket, a closed-loop loadgen over 8
    // concurrent connections, graceful shutdown. The wall time is dominated
    // by request handling (framing, admission, queueing, response fan-out),
    // not the solves themselves, which is exactly the surface this bench
    // guards: a regression here is a service-layer regression.
    {
        use mals_experiments::daemon::{Daemon, DaemonConfig};
        use mals_experiments::loadgen::{run_loadgen, LoadgenConfig};
        set.push(Bench {
            id: "service/daemon-sustained-8x25-120".into(),
            run: Box::new(|| {
                let handle = Daemon::start(DaemonConfig {
                    queue_capacity: 256,
                    batch_max: 8,
                    threads: 2,
                    ..DaemonConfig::default()
                })
                .expect("daemon bind on loopback");
                let report = run_loadgen(&LoadgenConfig {
                    addr: handle.addr().to_string(),
                    connections: 8,
                    requests_per_conn: 25,
                    tasks: 120,
                    mix: 2,
                    ..LoadgenConfig::default()
                })
                .expect("loadgen connect");
                assert!(report.is_clean(), "sustained load dropped responses");
                std::hint::black_box(report.p99_ms);
                handle.shutdown();
                handle.join();
            }),
            min_samples: Some(3),
        });
    }

    // The within-schedule scaling fixture (the tentpole of the parallel
    // engine): quick mode keeps the 1- and 8-thread endpoints so CI still
    // guards the engine, full mode sweeps the whole ladder.
    let huge = large_rand_dag(WITHIN_SCHEDULE_TASKS, WITHIN_SCHEDULE_SEED);
    let huge_platform = bounded_single_pair(&huge);
    let ladder: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8] };
    for &threads in ladder {
        set.push(scheduler_bench(
            format!("memminmin/largerand-{WITHIN_SCHEDULE_TASKS}-t{threads}"),
            huge.clone(),
            huge_platform.clone(),
            MemMinMin::with_parallelism(ParallelConfig::with_threads(threads)),
        ));
    }

    set
}

/// Collects at least `min_samples` timings and keeps sampling until `budget`
/// is spent (capped at 10 000 samples). Sub-millisecond benches are batched
/// so every recorded sample covers at least ~1 ms of work — that amortises
/// timer overhead and scheduler preemption, which otherwise dominate the
/// median of a microsecond-scale measurement.
fn measure(bench: &Bench, min_samples: usize, budget: std::time::Duration) -> Measurement {
    let min_samples = bench.min_samples.unwrap_or(min_samples);
    // Warm-up, and a size probe for the batch count.
    let probe = Instant::now();
    (bench.run)();
    let single_ns = probe.elapsed().as_nanos().max(1);
    let batch = (1_000_000 / single_ns).clamp(1, 1_000) as u32;

    let started = Instant::now();
    let mut times: Vec<u128> = Vec::with_capacity(min_samples);
    while times.len() < min_samples || (started.elapsed() < budget && times.len() < 10_000) {
        let start = Instant::now();
        for _ in 0..batch {
            (bench.run)();
        }
        times.push(start.elapsed().as_nanos() / batch as u128);
    }
    times.sort_unstable();
    Measurement {
        id: bench.id.clone(),
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        max_ns: times[times.len() - 1],
        samples: times.len(),
    }
}

fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        return sha;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

/// ISO-8601 UTC timestamp without a date/time dependency (civil-from-days,
/// H. Hinnant's algorithm).
fn utc_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// A coarse machine fingerprint: medians are only comparable between runs
/// on the same kind of machine, so the comparator demotes cross-host gates
/// to advisory.
fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{cores}-core {}-{}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

fn emit_json(measurements: &[Measurement], mode: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"git_sha\": \"{}\",\n", git_sha()));
    out.push_str(&format!("  \"date_utc\": \"{}\",\n", utc_now()));
    out.push_str(&format!("  \"host\": \"{}\",\n", host_fingerprint()));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {} }}{}\n",
            m.id,
            m.median_ns,
            m.min_ns,
            m.max_ns,
            m.samples,
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(id, median_ns)` pairs from a baseline written by
/// [`emit_json`]: one bench object per line, `"id"` then `"median_ns"`.
fn parse_baseline(text: &str) -> Vec<(String, u128)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(id_at) = line.find("\"id\"") else {
            continue;
        };
        let Some(median_at) = line.find("\"median_ns\"") else {
            continue;
        };
        let id = line[id_at + 4..]
            .split('"')
            .nth(1)
            .map(str::to_string)
            .unwrap_or_default();
        let median = line[median_at + 11..]
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u128>()
            .ok();
        if let (false, Some(median)) = (id.is_empty(), median) {
            rows.push((id, median));
        }
    }
    rows
}

/// Extracts the `"host"` header field of a baseline, if present.
fn parse_host(text: &str) -> Option<String> {
    text.lines()
        .find(|line| line.contains("\"host\"") && !line.contains("\"id\""))
        .and_then(|line| line.split('"').nth(3))
        .map(str::to_string)
}

fn compare(base_path: &str, new_path: &str, tolerance_pct: f64) -> i32 {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_json: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let base_text = read(base_path);
    let new_text = read(new_path);
    let base = parse_baseline(&base_text);
    let new = parse_baseline(&new_text);
    if base.is_empty() || new.is_empty() {
        eprintln!(
            "bench_json: empty baseline ({base_path}: {} rows, {new_path}: {} rows)",
            base.len(),
            new.len()
        );
        return 2;
    }
    // Medians from different machines are not comparable: a baseline
    // recorded elsewhere (or with no host stamp) makes the gate advisory
    // until someone re-records it on this kind of machine.
    let base_host = parse_host(&base_text);
    let new_host = parse_host(&new_text);
    let same_host = matches!((&base_host, &new_host), (Some(a), Some(b)) if a == b);

    let mut regressions = 0usize;
    let mut missing = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<40} {:>14} {:>14} {:>9}",
        "bench", "base_ns", "new_ns", "delta"
    );
    for (id, base_ns) in &base {
        let Some((_, new_ns)) = new.iter().find(|(nid, _)| nid == id) else {
            // A bench that disappeared silently weakens the gate: fail and
            // ask for a baseline refresh.
            missing += 1;
            println!("{id:<40} {base_ns:>14} {:>14}  << MISSING", "-");
            continue;
        };
        compared += 1;
        let delta_pct = (*new_ns as f64 - *base_ns as f64) / (*base_ns as f64) * 100.0;
        let flag = if delta_pct > tolerance_pct {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("{id:<40} {base_ns:>14} {new_ns:>14} {delta_pct:>+8.1}%{flag}");
    }
    for (id, _) in &new {
        if !base.iter().any(|(bid, _)| bid == id) {
            println!("{id:<40} {:>14} (new bench, no baseline)", "-");
        }
    }
    if missing > 0 {
        eprintln!(
            "bench_json: {missing} baseline bench(es) missing from the new run — refresh the \
             baseline so the gate keeps its coverage"
        );
        return 1;
    }
    if regressions > 0 {
        if !same_host {
            eprintln!(
                "bench_json: {regressions}/{compared} benches exceed {tolerance_pct}%, but the \
                 baseline was recorded on `{}` and this run on `{}` — cross-machine medians are \
                 not comparable, so this is ADVISORY ONLY (exit 0). Re-record the baseline on \
                 this machine to arm the gate.",
                base_host.as_deref().unwrap_or("unknown"),
                new_host.as_deref().unwrap_or("unknown"),
            );
            return 0;
        }
        eprintln!(
            "bench_json: {regressions}/{compared} benches regressed more than {tolerance_pct}% \
             (median over median); commit with [bench-skip] to bypass, or refresh the baseline \
             if the slowdown is intended"
        );
        1
    } else {
        eprintln!("bench_json: {compared} benches within {tolerance_pct}% of baseline");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        let mut tolerance = 25.0;
        let mut paths = Vec::new();
        let mut iter = args[1..].iter();
        while let Some(arg) = iter.next() {
            if arg == "--tolerance" {
                tolerance = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_json: --tolerance expects a number");
                    std::process::exit(2);
                });
            } else {
                paths.push(arg.clone());
            }
        }
        if paths.len() != 2 {
            eprintln!("usage: bench_json compare BASE NEW [--tolerance PCT]");
            std::process::exit(2);
        }
        std::process::exit(compare(&paths[0], &paths[1], tolerance));
    }

    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = iter.next().cloned(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_json [--quick] [--out PATH]\n       \
                     bench_json compare BASE NEW [--tolerance PCT]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("bench_json: unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let (min_samples, budget) = if quick {
        (9, std::time::Duration::from_millis(300))
    } else {
        (15, std::time::Duration::from_millis(1000))
    };
    let mode = if quick { "quick" } else { "full" };
    let set = benches(quick);
    // Process-level warm-up: the first second of a fresh process runs
    // measurably slower (frequency ramp-up, cold caches/pager), which would
    // bias whichever benches happen to run first. Spin until the clock has
    // ticked ~1s of busy work before taking any measurement.
    eprintln!("warming up...");
    let warm = Instant::now();
    let mut sink = 0u64;
    while warm.elapsed() < std::time::Duration::from_secs(1) {
        for i in 0..100_000u64 {
            sink = sink.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        std::hint::black_box(sink);
    }
    let mut measurements = Vec::with_capacity(set.len());
    for bench in &set {
        eprintln!("measuring {}...", bench.id);
        measurements.push(measure(bench, min_samples, budget));
    }
    let json = emit_json(&measurements, mode);
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("bench_json: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
