//! Shared fixtures for the figure-reproduction benchmarks.
//!
//! Each Criterion bench target under `benches/` regenerates (a scaled-down
//! version of) one table or figure of the paper; the DAGs and platforms they
//! operate on are built here so that every bench measures scheduling work,
//! not workload generation, and so that all benches agree on the fixture
//! sizes.

#![warn(missing_docs)]

use mals_dag::TaskGraph;
use mals_gen::{cholesky_dag, lu_dag, DaggenParams, KernelCosts, SetParams, WeightRanges};
use mals_platform::Platform;
use mals_util::Pcg64;

/// Task count of the within-schedule scaling fixture: the paper's
/// LargeRandSet instance size (Figures 12–13).
pub const WITHIN_SCHEDULE_TASKS: usize = 1000;

/// Seed of the within-schedule scaling fixture, shared by the
/// `scaling_within_schedule` bench, the `bench_json` CI runner and the
/// determinism tests so they all exercise the same instance.
pub const WITHIN_SCHEDULE_SEED: u64 = 0x1000 + WITHIN_SCHEDULE_TASKS as u64;

/// A SmallRandSet-shaped DAG with the given number of tasks (seeded).
pub fn small_rand_dag(n_tasks: usize, seed: u64) -> TaskGraph {
    let mut rng = Pcg64::new(seed);
    mals_gen::daggen::generate(
        &DaggenParams::small_rand().with_size(n_tasks),
        &WeightRanges::small_rand(),
        &mut rng,
    )
}

/// A LargeRandSet-shaped DAG with the given number of tasks (seeded).
pub fn large_rand_dag(n_tasks: usize, seed: u64) -> TaskGraph {
    let mut rng = Pcg64::new(seed);
    mals_gen::daggen::generate(
        &DaggenParams::large_rand().with_size(n_tasks),
        &WeightRanges::large_rand(),
        &mut rng,
    )
}

/// A scaled-down SmallRandSet (several DAGs).
pub fn small_rand_set(count: usize, n_tasks: usize) -> Vec<TaskGraph> {
    SetParams::small_rand().scaled(count, n_tasks).generate()
}

/// The LU DAG used by the Figure 14 benchmark.
pub fn lu_fixture(tiles: usize) -> TaskGraph {
    lu_dag(tiles, &KernelCosts::table1())
}

/// The Cholesky DAG used by the Figure 15 benchmark.
pub fn cholesky_fixture(tiles: usize) -> TaskGraph {
    cholesky_dag(tiles, &KernelCosts::table1())
}

/// The 1 CPU + 1 accelerator platform of the random-DAG experiments, with the
/// given symmetric memory bound.
pub fn single_pair(memory: f64) -> Platform {
    Platform::single_pair(memory, memory)
}

/// The mirage-like platform of the linear-algebra experiments.
pub fn mirage(memory: f64) -> Platform {
    Platform::mirage(memory, memory)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(small_rand_dag(20, 1), small_rand_dag(20, 1));
        assert_eq!(large_rand_dag(50, 2), large_rand_dag(50, 2));
        assert_eq!(lu_fixture(4), lu_fixture(4));
    }

    #[test]
    fn fixture_sizes() {
        assert_eq!(small_rand_dag(20, 1).n_tasks(), 20);
        assert_eq!(small_rand_set(3, 10).len(), 3);
        assert!(cholesky_fixture(5).n_tasks() < lu_fixture(5).n_tasks());
        assert_eq!(mirage(10.0).n_procs(), 15);
        assert_eq!(single_pair(10.0).n_procs(), 2);
    }
}
