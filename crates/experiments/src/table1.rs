//! Table 1 — average running time of the linear-algebra kernels.
//!
//! The paper measured these times with MAGMA on 192×192 tiles on the *mirage*
//! node; the workspace hard-codes them in
//! [`mals_gen::linalg::KernelCosts::table1`] (with the documented
//! accelerator-side speedups) and this module prints them back so the bench
//! harness has one entry point per paper artefact.

use mals_gen::KernelCosts;

/// One row of Table 1: kernel name and its processing time on each resource.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Kernel name as printed in the paper.
    pub kernel: &'static str,
    /// Running time on a blue (CPU) processor, in milliseconds.
    pub cpu_ms: f64,
    /// Running time on a red (accelerator) processor, in milliseconds.
    pub accelerator_ms: f64,
}

/// The rows of Table 1 for a given cost model.
pub fn rows(costs: &KernelCosts) -> Vec<KernelRow> {
    vec![
        KernelRow {
            kernel: "getrf",
            cpu_ms: costs.getrf.0,
            accelerator_ms: costs.getrf.1,
        },
        KernelRow {
            kernel: "gemm",
            cpu_ms: costs.gemm.0,
            accelerator_ms: costs.gemm.1,
        },
        KernelRow {
            kernel: "trsm_l",
            cpu_ms: costs.trsm_l.0,
            accelerator_ms: costs.trsm_l.1,
        },
        KernelRow {
            kernel: "trsm_u",
            cpu_ms: costs.trsm_u.0,
            accelerator_ms: costs.trsm_u.1,
        },
        KernelRow {
            kernel: "potrf",
            cpu_ms: costs.potrf.0,
            accelerator_ms: costs.potrf.1,
        },
        KernelRow {
            kernel: "syrk",
            cpu_ms: costs.syrk.0,
            accelerator_ms: costs.syrk.1,
        },
    ]
}

/// Renders the table as CSV.
pub fn to_csv(costs: &KernelCosts) -> String {
    let mut out = String::from("kernel,cpu_ms,accelerator_ms\n");
    for row in rows(costs) {
        out.push_str(&format!(
            "{},{},{}\n",
            row.kernel, row.cpu_ms, row.accelerator_ms
        ));
    }
    out.push_str(&format!(
        "tile_transfer,{},{}\n",
        costs.tile_transfer, costs.tile_transfer
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_cpu_times() {
        let rows = rows(&KernelCosts::table1());
        let get = |name: &str| rows.iter().find(|r| r.kernel == name).unwrap();
        assert_eq!(get("getrf").cpu_ms, 450.0);
        assert_eq!(get("gemm").cpu_ms, 1450.0);
        assert_eq!(get("trsm_l").cpu_ms, 990.0);
        assert_eq!(get("trsm_u").cpu_ms, 830.0);
        assert_eq!(get("potrf").cpu_ms, 450.0);
        assert_eq!(get("syrk").cpu_ms, 990.0);
    }

    #[test]
    fn accelerator_is_faster_for_every_kernel() {
        for row in rows(&KernelCosts::table1()) {
            assert!(
                row.accelerator_ms < row.cpu_ms,
                "{} should be faster on the accelerator",
                row.kernel
            );
        }
    }

    #[test]
    fn csv_has_header_and_transfer_row() {
        let csv = to_csv(&KernelCosts::table1());
        assert!(csv.starts_with("kernel,cpu_ms,accelerator_ms\n"));
        assert!(csv.contains("gemm,1450,145"));
        assert!(csv.contains("tile_transfer,50,50"));
        assert_eq!(csv.lines().count(), 8);
    }
}
