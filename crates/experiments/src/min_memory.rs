//! Minimum feasible memory search.
//!
//! The figures of the paper read, for every scheduler, the smallest memory
//! bound at which it still produces a schedule (the left end of its curve):
//! "MemMinMin fails to schedule the LU factorisation when each memory does
//! not have enough space to store 155 tiles", "MemHEFT can still provide a
//! feasible schedule with half available memory", and so on. This module
//! computes that quantity directly by bisection on the (symmetric) memory
//! bound, so the EXPERIMENTS write-up can report exact break-even points
//! instead of reading them off a sweep grid. It operates on the unified
//! [`Solver`] interface, so heuristics and exact backends bisect through
//! the same code path.

use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sched::{SolveCtx, Solver};

/// Result of a minimum-memory search for one solver.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMemory {
    /// Solver display name.
    pub name: String,
    /// Smallest symmetric memory bound (within `tolerance`) at which the
    /// solver produced a schedule, or `None` if it failed even at the
    /// upper end of the search interval.
    pub min_memory: Option<f64>,
    /// Makespan obtained at that bound.
    pub makespan_at_min: Option<f64>,
}

/// Checks whether `solver` succeeds on `graph` with the given symmetric
/// memory bound.
fn succeeds(
    graph: &TaskGraph,
    platform: &Platform,
    solver: &dyn Solver,
    ctx: &SolveCtx,
    bound: f64,
) -> Option<f64> {
    let bounded = platform.with_memory_bounds(bound, bound);
    crate::sweep::checked_makespan(solver, graph, &bounded, ctx)
}

/// Finds, by bisection, the smallest symmetric memory bound in
/// `[0, upper_bound]` at which `solver` produces a schedule.
///
/// The search assumes success is monotone in the bound, which holds for the
/// memory-aware heuristics on all workloads we generate (more memory never
/// hurts feasibility); `tolerance` controls the absolute precision of the
/// returned bound.
pub fn minimum_memory(
    graph: &TaskGraph,
    platform: &Platform,
    solver: &dyn Solver,
    ctx: &SolveCtx,
    upper_bound: f64,
    tolerance: f64,
) -> MinMemory {
    let tolerance = tolerance.max(1e-6);
    let name = solver.name().to_string();
    // The solver must succeed at the upper end for the search to make sense.
    let Some(makespan_at_upper) = succeeds(graph, platform, solver, ctx, upper_bound) else {
        return MinMemory {
            name,
            min_memory: None,
            makespan_at_min: None,
        };
    };
    let mut lo = 0.0f64; // known infeasible (or untested but minimal)
    let mut hi = upper_bound; // known feasible
    let mut best_makespan = makespan_at_upper;
    // If even a zero bound works (no files), report it directly.
    if let Some(makespan) = succeeds(graph, platform, solver, ctx, 0.0) {
        return MinMemory {
            name,
            min_memory: Some(0.0),
            makespan_at_min: Some(makespan),
        };
    }
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        match succeeds(graph, platform, solver, ctx, mid) {
            Some(makespan) => {
                hi = mid;
                best_makespan = makespan;
            }
            None => lo = mid,
        }
    }
    MinMemory {
        name,
        min_memory: Some(hi),
        makespan_at_min: Some(best_makespan),
    }
}

/// Runs [`minimum_memory`] for several solvers with a shared upper bound.
pub fn minimum_memory_table(
    graph: &TaskGraph,
    platform: &Platform,
    solvers: &[&dyn Solver],
    ctx: &SolveCtx,
    upper_bound: f64,
    tolerance: f64,
) -> Vec<MinMemory> {
    solvers
        .iter()
        .map(|s| minimum_memory(graph, platform, *s, ctx, upper_bound, tolerance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::{dex, fork_join, ShapeWeights};
    use mals_sched::{MemHeft, MemMinMin};

    #[test]
    fn dex_minimum_memory_is_between_3_and_5() {
        // T1's outputs need 3 units, and the exact optimum exists at 4, so
        // the heuristics' break-even point lies in [3, 5].
        let (graph, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        for solver in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
            let result = minimum_memory(&graph, &platform, solver, &ctx, 20.0, 0.01);
            let min = result.min_memory.expect("feasible with 20 units");
            assert!(min >= 3.0 - 1e-6, "{}: {min}", result.name);
            assert!(min <= 5.0 + 0.02, "{}: {min}", result.name);
            assert!(result.makespan_at_min.unwrap() >= 6.0 - 1e-9);
        }
    }

    #[test]
    fn exact_solver_bisects_through_the_same_path() {
        // The optimal break-even point of D_ex is 4 (the paper's s2 exists
        // at bound 4 but nothing exists at 3); the B&B solver must find it
        // through the identical bisection code path as the heuristics.
        let (graph, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let bb = mals_exact::solver_registry().build("bb").unwrap();
        let result = minimum_memory(&graph, &platform, &*bb, &ctx, 20.0, 0.01);
        assert_eq!(result.name, "Optimal(B&B)");
        let min = result.min_memory.unwrap();
        assert!((min - 4.0).abs() <= 0.02, "optimal break-even {min} != 4");
    }

    #[test]
    fn infeasible_upper_bound_reported() {
        let (graph, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let result = minimum_memory(&graph, &platform, &MemHeft::new(), &ctx, 2.0, 0.01);
        assert_eq!(result.min_memory, None);
        assert_eq!(result.makespan_at_min, None);
    }

    #[test]
    fn graph_without_files_needs_no_memory() {
        let mut graph = mals_dag::TaskGraph::new();
        let a = graph.add_task("a", 1.0, 1.0);
        let b = graph.add_task("b", 1.0, 1.0);
        graph.add_edge(a, b, 0.0, 0.0).unwrap();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let result = minimum_memory(&graph, &platform, &MemMinMin::new(), &ctx, 10.0, 0.01);
        assert_eq!(result.min_memory, Some(0.0));
    }

    #[test]
    fn fork_join_minimum_tracks_fanout() {
        // The fork task's outputs (width files) must fit simultaneously, so
        // the minimum memory grows with the width.
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let narrow = fork_join(2, &ShapeWeights::default());
        let wide = fork_join(8, &ShapeWeights::default());
        let narrow_min = minimum_memory(&narrow, &platform, &MemHeft::new(), &ctx, 64.0, 0.01)
            .min_memory
            .unwrap();
        let wide_min = minimum_memory(&wide, &platform, &MemHeft::new(), &ctx, 64.0, 0.01)
            .min_memory
            .unwrap();
        assert!(wide_min > narrow_min);
        assert!(wide_min >= 8.0 - 0.02);
    }

    #[test]
    fn table_covers_all_solvers() {
        let (graph, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let memheft = MemHeft::new();
        let memminmin = MemMinMin::new();
        let table =
            minimum_memory_table(&graph, &platform, &[&memheft, &memminmin], &ctx, 20.0, 0.05);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].name, "MemHEFT");
        assert_eq!(table[1].name, "MemMinMin");
    }
}
