//! Load generator for the `malsd` daemon, closed- or open-loop.
//!
//! Opens N concurrent connections, each sending a configurable mix of
//! pre-rendered [`SolveRequest`](crate::service::SolveRequest) frames
//! ([`generated_request`] instances). By default each connection waits for
//! the matching response before sending the next (closed loop: offered load
//! adapts to service rate, so the measured latency is the daemon's, not a
//! coordinated-omission artefact). With
//! [`LoadgenConfig::arrival_rate`] set, the run is **open-loop** instead:
//! sends are paced by a Poisson arrival process
//! ([`mals_gen::exponential_gap`], the same draw the online scheduling
//! traces use) regardless of response progress — a reader thread per
//! connection matches responses back to their send instants by id, so the
//! measured latency includes queueing under the offered load. Every
//! response is checked — the `"id"` must match an outstanding request, a
//! report must carry `valid: true` — and per-request latency goes into a
//! [`QuantileSketch`] (p50/p95/p99) plus an [`OnlineStats`] accumulator,
//! merged across connections into one [`LoadgenReport`].
//!
//! The library entry point [`run_loadgen`] backs both the `loadgen` binary
//! (CI daemon-smoke) and the sustained-load entry in `bench_json`.

use crate::service::generated_request;
use mals_gen::exponential_gap;
use mals_util::{write_frame, FrameReader, Json, OnlineStats, Pcg64, QuantileSketch};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency-sketch grid: 0–60 s in 6000 bins (10 ms resolution — tail
/// quantiles of a local daemon sit well inside this).
const SKETCH_HI_MS: f64 = 60_000.0;
const SKETCH_BINS: usize = 6000;

/// Configuration of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `"127.0.0.1:7459"`.
    pub addr: String,
    /// Concurrent connections (each its own OS thread).
    pub connections: usize,
    /// Requests sent per connection (closed loop).
    pub requests_per_conn: usize,
    /// Tasks per generated instance.
    pub tasks: usize,
    /// Distinct instances in the request mix (cycled round-robin; seeds
    /// `seed..seed+mix`).
    pub mix: usize,
    /// Solver key every request names.
    pub solver: String,
    /// Optional per-request deadline (admission-stamped by the daemon).
    pub deadline_ms: Option<u64>,
    /// Base seed of the instance mix.
    pub seed: u64,
    /// Open-loop mode: total offered arrival rate in requests/second,
    /// split evenly across the connections, with exponential (Poisson)
    /// inter-send gaps. `None` keeps the closed loop.
    pub arrival_rate: Option<f64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            connections: 16,
            requests_per_conn: 200,
            tasks: 300,
            mix: 4,
            solver: "memheft".into(),
            deadline_ms: None,
            seed: 1,
            arrival_rate: None,
        }
    }
}

/// Aggregated outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent across all connections.
    pub sent: usize,
    /// Responses that were valid solve reports with the right id.
    pub ok: usize,
    /// Structured rejections (reject frames, or reports with a non-empty
    /// `errors` array — e.g. `deadline_exceeded`).
    pub rejected: usize,
    /// Responses whose `"id"` did not match the outstanding request, or
    /// reports that failed validation.
    pub mismatched: usize,
    /// Requests lost to I/O errors / early connection close.
    pub io_errors: usize,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
    /// Wall time of the whole run.
    pub wall_time_ms: f64,
    /// Completed responses per second over the run.
    pub throughput_rps: f64,
}

impl LoadgenReport {
    /// `true` when every sent request came back as a valid, id-matched
    /// response (the CI smoke's pass condition).
    pub fn is_clean(&self) -> bool {
        self.mismatched == 0 && self.io_errors == 0 && self.ok == self.sent
    }

    /// Serialises the report (the CI artifact / bench payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sent", Json::Num(self.sent as f64)),
            ("ok", Json::Num(self.ok as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("mismatched", Json::Num(self.mismatched as f64)),
            ("io_errors", Json::Num(self.io_errors as f64)),
            ("p50_ms", Json::Num(self.p50_ms)),
            ("p95_ms", Json::Num(self.p95_ms)),
            ("p99_ms", Json::Num(self.p99_ms)),
            ("mean_ms", Json::Num(self.mean_ms)),
            ("max_ms", Json::Num(self.max_ms)),
            ("wall_time_ms", Json::Num(self.wall_time_ms)),
            ("throughput_rps", Json::Num(self.throughput_rps)),
        ])
    }
}

/// Per-connection tallies, merged after the join.
struct ConnResult {
    sent: usize,
    ok: usize,
    rejected: usize,
    mismatched: usize,
    io_errors: usize,
    sketch: QuantileSketch,
    stats: OnlineStats,
}

/// Runs the closed-loop load generation against a running daemon.
///
/// The request mix is pre-rendered once (graph generation and JSON
/// encoding off the timed path); each connection splices a unique `"id"`
/// into the frame per send. Returns an error only when a connection cannot
/// be *established*; mid-run I/O failures are counted per-request in
/// [`LoadgenReport::io_errors`].
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    // Pre-render the mix: `{"v":1,...}` → the per-request frame is
    // `{"id":N,` + the body without its opening brace.
    let mix = config.mix.max(1);
    let bodies: Vec<String> = (0..mix)
        .map(|i| {
            let mut request = generated_request(config.tasks, config.seed + i as u64);
            request.solver = config.solver.clone();
            request.deadline_ms = config.deadline_ms;
            request.to_json().to_compact()
        })
        .collect();

    // Every connection must be connected before any starts sending, so the
    // run measures concurrent load, not a connect ramp.
    let streams: Vec<TcpStream> = (0..config.connections.max(1))
        .map(|_| TcpStream::connect(&config.addr))
        .collect::<io::Result<_>>()?;

    // Open loop: the aggregate offered rate splits evenly over connections.
    let per_conn_rate = config
        .arrival_rate
        .map(|rate| rate / streams.len() as f64)
        .filter(|&r| r > 0.0 && r.is_finite());

    let started = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(conn, stream)| {
                let bodies = &bodies;
                let per_conn = config.requests_per_conn;
                let seed = config.seed;
                scope.spawn(move || match per_conn_rate {
                    Some(rate) => connection_run_open(conn, stream, bodies, per_conn, rate, seed),
                    None => connection_run(conn, stream, bodies, per_conn),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut sketch = QuantileSketch::new(0.0, SKETCH_HI_MS, SKETCH_BINS);
    let mut stats = OnlineStats::new();
    let (mut sent, mut ok, mut rejected, mut mismatched, mut io_errors) = (0, 0, 0, 0, 0);
    for r in &results {
        sent += r.sent;
        ok += r.ok;
        rejected += r.rejected;
        mismatched += r.mismatched;
        io_errors += r.io_errors;
        sketch.merge(&r.sketch);
        stats.merge(&r.stats);
    }
    let answered = (ok + rejected) as f64;
    Ok(LoadgenReport {
        sent,
        ok,
        rejected,
        mismatched,
        io_errors,
        p50_ms: sketch.quantile(0.50).unwrap_or(0.0),
        p95_ms: sketch.quantile(0.95).unwrap_or(0.0),
        p99_ms: sketch.quantile(0.99).unwrap_or(0.0),
        mean_ms: if stats.count() > 0 { stats.mean() } else { 0.0 },
        max_ms: if stats.count() > 0 { stats.max() } else { 0.0 },
        wall_time_ms,
        throughput_rps: if wall_time_ms > 0.0 {
            answered / (wall_time_ms / 1e3)
        } else {
            0.0
        },
    })
}

/// One connection's closed loop: send a frame, wait for its response,
/// record, repeat.
fn connection_run(
    conn: usize,
    stream: TcpStream,
    bodies: &[String],
    requests: usize,
) -> ConnResult {
    let mut result = ConnResult {
        sent: 0,
        ok: 0,
        rejected: 0,
        mismatched: 0,
        io_errors: 0,
        sketch: QuantileSketch::new(0.0, SKETCH_HI_MS, SKETCH_BINS),
        stats: OnlineStats::new(),
    };
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            result.io_errors = requests;
            result.sent = requests;
            return result;
        }
    };
    let mut write_half = write_half;
    let mut reader = FrameReader::new(stream);
    for i in 0..requests {
        // Ids are unique across the whole run so a cross-connection mixup
        // cannot alias back to a correct-looking id.
        let id = (conn as u64) * 1_000_000 + i as u64;
        let body = &bodies[i % bodies.len()];
        let frame = format!("{{\"id\":{id},{}", &body[1..]);
        result.sent += 1;
        let sent_at = Instant::now();
        if write_frame(&mut write_half, &frame).is_err() {
            result.io_errors += 1;
            break;
        }
        let response = loop {
            match reader.read_frame() {
                Ok(Some(text)) => break Some(text),
                Ok(None) => break None,
                Err(e) if e.is_retryable() => continue,
                Err(_) => break None,
            }
        };
        let Some(response) = response else {
            result.io_errors += 1;
            break;
        };
        let latency_ms = sent_at.elapsed().as_secs_f64() * 1e3;
        result.sketch.push(latency_ms);
        result.stats.push(latency_ms);
        match Json::parse(&response) {
            Ok(json) => {
                if json.get("id").and_then(Json::as_u64) != Some(id) {
                    result.mismatched += 1;
                } else if json.get("error").is_some() {
                    result.rejected += 1;
                } else if json.get("valid").and_then(Json::as_bool) == Some(true)
                    && json
                        .get("errors")
                        .and_then(Json::as_arr)
                        .is_none_or(|errs| errs.is_empty())
                {
                    result.ok += 1;
                } else if json
                    .get("errors")
                    .and_then(Json::as_arr)
                    .is_some_and(|errs| !errs.is_empty())
                {
                    // An admitted request that fell short (e.g. deadline
                    // exceeded) is a structured rejection, not a mismatch.
                    result.rejected += 1;
                } else {
                    result.mismatched += 1;
                }
            }
            Err(_) => result.mismatched += 1,
        }
    }
    result
}

/// Classifies one parsed response against the send-instant map: latency is
/// measured from the id's recorded send time; an unknown id is a mismatch.
fn tally_response(result: &mut ConnResult, sent_at: &Mutex<HashMap<u64, Instant>>, text: &str) {
    let Ok(json) = Json::parse(text) else {
        result.mismatched += 1;
        return;
    };
    let instant = json
        .get("id")
        .and_then(Json::as_u64)
        .and_then(|id| sent_at.lock().expect("sent-at map poisoned").remove(&id));
    let Some(instant) = instant else {
        result.mismatched += 1;
        return;
    };
    let latency_ms = instant.elapsed().as_secs_f64() * 1e3;
    result.sketch.push(latency_ms);
    result.stats.push(latency_ms);
    if json.get("error").is_some() {
        result.rejected += 1;
    } else if json.get("valid").and_then(Json::as_bool) == Some(true)
        && json
            .get("errors")
            .and_then(Json::as_arr)
            .is_none_or(|errs| errs.is_empty())
    {
        result.ok += 1;
    } else if json
        .get("errors")
        .and_then(Json::as_arr)
        .is_some_and(|errs| !errs.is_empty())
    {
        result.rejected += 1;
    } else {
        result.mismatched += 1;
    }
}

/// Sentinel in the shared send counter while the sender is still running.
const SENDING: usize = usize::MAX;

/// Reader poll interval; also bounds how fast the post-send idle cap ticks.
const OPEN_LOOP_POLL: Duration = Duration::from_millis(100);

/// Consecutive empty polls after the sender finished before the reader
/// declares the remaining responses lost (600 × 100 ms = 60 s of silence).
const OPEN_LOOP_IDLE_CAP: u32 = 600;

/// One connection's open loop: a Poisson-paced sender and a reader thread
/// matching responses back by id. Unanswered requests (daemon overload,
/// early close) are counted as I/O errors after an idle timeout rather than
/// hanging the run.
fn connection_run_open(
    conn: usize,
    stream: TcpStream,
    bodies: &[String],
    requests: usize,
    rate: f64,
    seed: u64,
) -> ConnResult {
    let mut result = ConnResult {
        sent: 0,
        ok: 0,
        rejected: 0,
        mismatched: 0,
        io_errors: 0,
        sketch: QuantileSketch::new(0.0, SKETCH_HI_MS, SKETCH_BINS),
        stats: OnlineStats::new(),
    };
    let Ok(mut write_half) = stream.try_clone() else {
        result.io_errors = requests;
        result.sent = requests;
        return result;
    };
    // The reader needs to wake up to observe sender completion.
    if stream.set_read_timeout(Some(OPEN_LOOP_POLL)).is_err() {
        result.io_errors = requests;
        result.sent = requests;
        return result;
    }
    let sent_at: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    // Successful writes, i.e. how many responses the reader should expect;
    // `SENDING` until the sender finishes.
    let expected = AtomicUsize::new(SENDING);

    let (reader_result, sender) = std::thread::scope(|scope| {
        let sent_at = &sent_at;
        let expected = &expected;
        let reader = scope.spawn(move || {
            let mut part = ConnResult {
                sent: 0,
                ok: 0,
                rejected: 0,
                mismatched: 0,
                io_errors: 0,
                sketch: QuantileSketch::new(0.0, SKETCH_HI_MS, SKETCH_BINS),
                stats: OnlineStats::new(),
            };
            let mut reader = FrameReader::new(stream);
            let mut answered = 0usize;
            let mut idle = 0u32;
            loop {
                let target = expected.load(Ordering::Acquire);
                if target != SENDING && answered >= target {
                    break;
                }
                match reader.read_frame() {
                    Ok(Some(text)) => {
                        tally_response(&mut part, sent_at, &text);
                        answered += 1;
                        idle = 0;
                    }
                    Ok(None) => break,
                    Err(e) if e.is_retryable() => {
                        if target != SENDING {
                            idle += 1;
                            if idle >= OPEN_LOOP_IDLE_CAP {
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
            let target = expected.load(Ordering::Acquire);
            if target != SENDING {
                part.io_errors += target.saturating_sub(answered);
            }
            part
        });

        // Sender (this thread): Poisson-paced sends, ids recorded before the
        // write so the reader can never see a response before its instant.
        let mut rng = Pcg64::new(seed ^ (conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut sender = ConnResult {
            sent: 0,
            ok: 0,
            rejected: 0,
            mismatched: 0,
            io_errors: 0,
            sketch: QuantileSketch::new(0.0, SKETCH_HI_MS, SKETCH_BINS),
            stats: OnlineStats::new(),
        };
        let mut written = 0usize;
        for i in 0..requests {
            let gap = exponential_gap(&mut rng, rate);
            std::thread::sleep(Duration::from_secs_f64(gap));
            let id = (conn as u64) * 1_000_000 + i as u64;
            let body = &bodies[i % bodies.len()];
            let frame = format!("{{\"id\":{id},{}", &body[1..]);
            sender.sent += 1;
            sent_at
                .lock()
                .expect("sent-at map poisoned")
                .insert(id, Instant::now());
            if write_frame(&mut write_half, &frame).is_err() {
                sender.io_errors += 1;
                break;
            }
            written += 1;
        }
        expected.store(written, Ordering::Release);
        let reader_result = reader.join().expect("open-loop reader thread panicked");
        (reader_result, sender)
    });

    result.sent = sender.sent;
    result.io_errors = sender.io_errors + reader_result.io_errors;
    result.ok = reader_result.ok;
    result.rejected = reader_result.rejected;
    result.mismatched = reader_result.mismatched;
    result.sketch.merge(&reader_result.sketch);
    result.stats.merge(&reader_result.stats);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Daemon, DaemonConfig};

    #[test]
    fn loadgen_against_an_in_process_daemon_is_clean() {
        let handle = Daemon::start(DaemonConfig {
            queue_capacity: 256,
            threads: 1,
            ..DaemonConfig::default()
        })
        .expect("daemon start");
        let report = run_loadgen(&LoadgenConfig {
            addr: handle.addr().to_string(),
            connections: 4,
            requests_per_conn: 5,
            tasks: 60,
            mix: 2,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");
        assert_eq!(report.sent, 20);
        assert!(report.is_clean(), "{:?}", report);
        assert!(report.p50_ms <= report.p99_ms);
        assert!(report.throughput_rps > 0.0);
        let json = report.to_json();
        assert_eq!(json.get("ok").and_then(Json::as_u64), Some(20));
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn open_loop_loadgen_answers_every_request() {
        let handle = Daemon::start(DaemonConfig {
            queue_capacity: 256,
            threads: 1,
            ..DaemonConfig::default()
        })
        .expect("daemon start");
        let report = run_loadgen(&LoadgenConfig {
            addr: handle.addr().to_string(),
            connections: 2,
            requests_per_conn: 5,
            tasks: 60,
            mix: 2,
            // Fast enough that the test spends ~50 ms sleeping, slow enough
            // to exercise genuinely interleaved sends and reads.
            arrival_rate: Some(200.0),
            ..LoadgenConfig::default()
        })
        .expect("open-loop loadgen run");
        assert_eq!(report.sent, 10);
        assert!(report.is_clean(), "{:?}", report);
        assert!(report.p50_ms <= report.p99_ms);
        handle.shutdown();
        handle.join();
    }
}
