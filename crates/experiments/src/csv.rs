//! CSV rendering of campaign and sweep results.
//!
//! The experiment binaries print these tables to stdout; `EXPERIMENTS.md`
//! archives representative runs next to the corresponding paper figure.

use crate::campaign::CampaignPoint;
use crate::sweep::SweepPoint;

/// Formats an optional value, using `na` for absent (failed) entries.
fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "na".to_string(),
    }
}

/// Renders a normalised campaign (Figures 10 / 12) as CSV: one row per
/// normalised memory bound, two columns (mean normalised makespan, success
/// rate) per scheduler.
pub fn campaign_to_csv(points: &[CampaignPoint]) -> String {
    let mut out = String::new();
    if points.is_empty() {
        return out;
    }
    out.push_str("alpha");
    for m in &points[0].methods {
        out.push_str(&format!(
            ",{}_norm_makespan,{}_success_rate",
            m.name, m.name
        ));
    }
    out.push('\n');
    for p in points {
        out.push_str(&format!("{:.3}", p.alpha));
        for m in &p.methods {
            out.push_str(&format!(
                ",{},{:.3}",
                opt(m.mean_normalized_makespan),
                m.success_rate
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders an absolute memory sweep (Figures 11 / 13 / 14 / 15) as CSV: one
/// row per memory bound, one makespan column per scheduler.
pub fn sweep_to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    if points.is_empty() {
        return out;
    }
    out.push_str("memory");
    for o in &points[0].outcomes {
        out.push_str(&format!(",{}", o.name));
    }
    out.push('\n');
    for p in points {
        out.push_str(&format!("{:.3}", p.memory_bound));
        for o in &p.outcomes {
            out.push_str(&format!(",{}", opt(o.makespan)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignPoint, MethodAggregate};
    use crate::sweep::{SchedulerOutcome, SweepPoint};

    #[test]
    fn campaign_csv_layout() {
        let points = vec![CampaignPoint {
            alpha: 0.5,
            methods: vec![
                MethodAggregate {
                    name: "MemHEFT".into(),
                    mean_normalized_makespan: Some(1.25),
                    success_rate: 0.8,
                },
                MethodAggregate {
                    name: "MemMinMin".into(),
                    mean_normalized_makespan: None,
                    success_rate: 0.0,
                },
            ],
        }];
        let csv = campaign_to_csv(&points);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "alpha,MemHEFT_norm_makespan,MemHEFT_success_rate,MemMinMin_norm_makespan,MemMinMin_success_rate"
        );
        assert_eq!(lines.next().unwrap(), "0.500,1.2500,0.800,na,0.000");
    }

    #[test]
    fn sweep_csv_layout() {
        let points = vec![SweepPoint {
            memory_bound: 10.0,
            outcomes: vec![
                SchedulerOutcome {
                    name: "HEFT".into(),
                    makespan: Some(42.0),
                },
                SchedulerOutcome {
                    name: "MemHEFT".into(),
                    makespan: None,
                },
            ],
        }];
        let csv = sweep_to_csv(&points);
        assert!(csv.starts_with("memory,HEFT,MemHEFT\n"));
        assert!(csv.contains("10.000,42.0000,na"));
    }

    #[test]
    fn empty_inputs() {
        assert!(campaign_to_csv(&[]).is_empty());
        assert!(sweep_to_csv(&[]).is_empty());
    }
}
