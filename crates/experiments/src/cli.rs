//! Minimal argument parsing shared by the figure-reproduction binaries.
//!
//! The binaries accept a handful of flags (`--full`, `--dags N`, `--tasks N`,
//! `--tiles N`, `--dump-dot`, `--threads N`); anything heavier than this
//! hand-rolled parser would be an unnecessary dependency. The thread count
//! can also be set via the `MALS_THREADS` environment variable
//! (`--threads` wins when both are given, `0` means all cores).

use mals_util::ParallelConfig;

/// Parsed command-line options of a figure binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    /// Run at the paper's full instance sizes instead of the scaled default.
    pub full: bool,
    /// Override the number of DAGs in the campaign.
    pub dags: Option<usize>,
    /// Override the number of tasks per random DAG.
    pub tasks: Option<usize>,
    /// Override the number of tiles of the factored matrix.
    pub tiles: Option<usize>,
    /// Print the DAG in DOT format before the results (Figures 8 / 9).
    pub dump_dot: bool,
    /// Number of worker threads (0 = all cores).
    pub threads: Option<usize>,
}

impl Options {
    /// The thread configuration requested by `--threads`, falling back to
    /// the `MALS_THREADS` environment variable; `None` when neither is set
    /// (callers keep their default).
    pub fn parallel(&self) -> Option<ParallelConfig> {
        self.threads
            .map(ParallelConfig::with_threads)
            .or_else(ParallelConfig::env_override)
    }
}

/// Parses the options from an iterator of arguments (excluding the program
/// name). Unknown flags produce an error message listing the valid ones.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => options.full = true,
            "--dump-dot" => options.dump_dot = true,
            "--dags" => options.dags = Some(parse_value(&arg, iter.next())?),
            "--tasks" => options.tasks = Some(parse_value(&arg, iter.next())?),
            "--tiles" => options.tiles = Some(parse_value(&arg, iter.next())?),
            "--threads" => options.threads = Some(parse_value(&arg, iter.next())?),
            "--help" | "-h" => return Err(
                "usage: [--full] [--dags N] [--tasks N] [--tiles N] [--threads N] [--dump-dot]\n\
                     (MALS_THREADS=N is honoured when --threads is absent; 0 = all cores)"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn parse_value(flag: &str, value: Option<String>) -> Result<usize, String> {
    let value = value.ok_or_else(|| format!("{flag} expects a value"))?;
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag} expects an integer, got `{value}`"))
}

/// Parses the process arguments, printing the error and exiting on failure.
pub fn parse_or_exit() -> Options {
    match parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Options, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse_strs(&[]).unwrap();
        assert_eq!(o, Options::default());
        assert!(!o.full);
    }

    #[test]
    fn all_flags() {
        let o = parse_strs(&[
            "--full",
            "--dags",
            "7",
            "--tasks",
            "25",
            "--tiles",
            "9",
            "--threads",
            "4",
            "--dump-dot",
        ])
        .unwrap();
        assert!(o.full);
        assert_eq!(o.dags, Some(7));
        assert_eq!(o.tasks, Some(25));
        assert_eq!(o.tiles, Some(9));
        assert_eq!(o.threads, Some(4));
        assert!(o.dump_dot);
    }

    #[test]
    fn threads_flag_maps_to_parallel_config() {
        let o = parse_strs(&["--threads", "4"]).unwrap();
        // The flag always wins over the environment, so this is stable no
        // matter what MALS_THREADS is set to in the surrounding shell.
        assert_eq!(o.parallel().unwrap().resolved_threads(), 4);
    }

    #[test]
    fn errors() {
        assert!(parse_strs(&["--bogus"]).is_err());
        assert!(parse_strs(&["--dags"]).is_err());
        assert!(parse_strs(&["--dags", "x"]).is_err());
        assert!(parse_strs(&["--help"]).is_err());
    }
}
