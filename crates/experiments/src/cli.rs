//! Minimal argument parsing shared by the figure-reproduction binaries.
//!
//! The binaries accept a handful of flags (`--full`, `--dags N`, `--tasks N`,
//! `--tiles N`, `--dump-dot`, `--threads N`, `--exact-backend
//! {bb,milp,lp-export}`, plus `--checkpoint PATH` / `--resume` /
//! `--stop-after N` on the campaign binaries); anything heavier than this
//! hand-rolled parser would be an unnecessary dependency. The thread count
//! can also be set via the `MALS_THREADS` environment variable (`--threads`
//! wins when both are given, `0` means all cores).

use crate::campaign::CampaignIo;
use mals_exact::{ExactBackendKind, MilpBackend};
use mals_util::ParallelConfig;

/// Parsed command-line options of a figure binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Options {
    /// Run at the paper's full instance sizes instead of the scaled default.
    pub full: bool,
    /// Override the number of DAGs in the campaign.
    pub dags: Option<usize>,
    /// Override the number of tasks per random DAG.
    pub tasks: Option<usize>,
    /// Override the number of tiles of the factored matrix.
    pub tiles: Option<usize>,
    /// Print the DAG in DOT format before the results (Figures 8 / 9).
    pub dump_dot: bool,
    /// Number of worker threads (0 = all cores).
    pub threads: Option<usize>,
    /// Exact backend for the optimal series (`None`: the binary's default).
    pub exact_backend: Option<ExactBackendKind>,
    /// Campaign checkpoint file (`--checkpoint`; campaign binaries only).
    pub checkpoint: Option<String>,
    /// Resume from the checkpoint instead of starting fresh (`--resume`).
    pub resume: bool,
    /// Stop after folding N DAGs this run (`--stop-after`; the deterministic
    /// stand-in for a mid-campaign kill used by the CI resume check).
    pub stop_after: Option<usize>,
}

impl Options {
    /// The thread configuration requested by `--threads`, falling back to
    /// the `MALS_THREADS` environment variable; `None` when neither is set
    /// (callers keep their default).
    pub fn parallel(&self) -> Option<ParallelConfig> {
        self.threads
            .map(ParallelConfig::with_threads)
            .or_else(ParallelConfig::env_override)
    }

    /// [`Options::parallel`] defaulting to a sequential configuration — the
    /// shared `--threads` wiring of the single-DAG binaries.
    pub fn parallel_or_sequential(&self) -> ParallelConfig {
        self.parallel().unwrap_or_else(ParallelConfig::sequential)
    }

    /// Resolves the exact-series solver of a binary into a registry key
    /// (`"bb"` / `"milp"` / `"lp-export"`): the `--exact-backend` flag wins
    /// over `default`, and a MILP selection above its certification ceiling
    /// warns via [`warn_milp_ceiling`]. This is the `--exact-backend`
    /// wiring that used to be copy-pasted across `fig10`–`fig13` and
    /// `minmem`; `n_tasks`/`instance` describe the instance for the
    /// ceiling warning.
    pub fn exact_solver(
        &self,
        default: Option<ExactBackendKind>,
        n_tasks: usize,
        instance: &str,
    ) -> Option<String> {
        let kind = self.exact_backend.or(default)?;
        warn_milp_ceiling(Some(kind), n_tasks, instance);
        Some(kind.solver_key().to_string())
    }

    /// The campaign checkpoint/resume options of this invocation, with
    /// progress reporting enabled (the binaries run interactively).
    pub fn campaign_io(&self) -> CampaignIo {
        CampaignIo {
            checkpoint: self.checkpoint.clone().map(Into::into),
            resume: self.resume,
            stop_after: self.stop_after,
            progress: true,
        }
    }
}

/// Parses the options from an iterator of arguments (excluding the program
/// name). Unknown flags produce an error message listing the valid ones.
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => options.full = true,
            "--dump-dot" => options.dump_dot = true,
            "--dags" => options.dags = Some(parse_value(&arg, iter.next())?),
            "--tasks" => options.tasks = Some(parse_value(&arg, iter.next())?),
            "--tiles" => options.tiles = Some(parse_value(&arg, iter.next())?),
            "--threads" => options.threads = Some(parse_value(&arg, iter.next())?),
            "--checkpoint" => {
                options.checkpoint = Some(
                    iter.next()
                        .ok_or_else(|| "--checkpoint expects a file path".to_string())?,
                )
            }
            "--resume" => options.resume = true,
            "--stop-after" => options.stop_after = Some(parse_value(&arg, iter.next())?),
            "--exact-backend" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--exact-backend expects a value".to_string())?;
                options.exact_backend = Some(ExactBackendKind::parse(&value).ok_or_else(|| {
                    format!(
                        "--exact-backend expects one of {}, got `{value}`",
                        ExactBackendKind::FLAG_VALUES
                    )
                })?);
            }
            "--help" | "-h" => {
                return Err(format!(
                "usage: [--full] [--dags N] [--tasks N] [--tiles N] [--threads N] [--dump-dot] \
                     [--exact-backend {}]\n       \
                     campaign binaries also accept [--checkpoint PATH] [--resume] \
                     [--stop-after N]\n\
                     (MALS_THREADS=N is honoured when --threads is absent; 0 = all cores)",
                ExactBackendKind::FLAG_VALUES
            ))
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(options)
}

fn parse_value(flag: &str, value: Option<String>) -> Result<usize, String> {
    let value = value.ok_or_else(|| format!("{flag} expects a value"))?;
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag} expects an integer, got `{value}`"))
}

/// Parses the process arguments, printing the error and exiting on failure.
pub fn parse_or_exit() -> Options {
    match parse(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}

/// Exits with status 2 when `--exact-backend` was passed to a binary that
/// has no exact series (the linear-algebra sweeps run at sizes no exact
/// solver reaches) — a flag must never be accepted and then silently
/// ignored.
pub fn reject_exact_backend(options: &Options, binary: &str) {
    if options.exact_backend.is_some() {
        eprintln!(
            "{binary}: --exact-backend is not supported here (no exact series at this \
             figure's instance sizes); it applies to fig10..fig13 and minmem"
        );
        std::process::exit(2);
    }
}

/// Exits with status 2 when checkpoint/resume flags were passed to a binary
/// that is not a campaign (same never-silently-ignore rule as
/// [`reject_exact_backend`]).
pub fn reject_campaign_flags(options: &Options, binary: &str) {
    if options.checkpoint.is_some() || options.resume || options.stop_after.is_some() {
        eprintln!(
            "{binary}: --checkpoint/--resume/--stop-after apply to the campaign binaries \
             (fig10, fig12) only"
        );
        std::process::exit(2);
    }
}

/// `--exact-backend lp-export` handler shared by the binaries: prints the
/// paper's § 4 ILP of `graph` in CPLEX LP text format on stdout, with the
/// memory bounds pinned at HEFT's own requirement (the `α = 1` point of the
/// campaigns), so the file can be fed to an external MILP solver.
pub fn print_ilp_export(graph: &mals_dag::TaskGraph, platform: &mals_platform::Platform) {
    let reference = crate::sweep::heft_reference(graph, platform);
    let bound = reference.heft_peaks.max();
    let bounded = platform.with_memory_bounds(bound, bound);
    eprintln!(
        "# exporting the Section-4 ILP ({} tasks, memory bounds = HEFT requirement {bound})",
        graph.n_tasks()
    );
    print!(
        "{}",
        mals_exact::backend::LpExport::export_text(graph, &bounded)
    );
}

/// Dispatches `--exact-backend lp-export`: when selected, builds the
/// figure's instance with `build` (only then — generation can be costly),
/// exports its ILP via [`print_ilp_export`] and returns `true` so the
/// binary can stop instead of running the experiment.
pub fn handle_lp_export(
    options: &Options,
    platform: &mals_platform::Platform,
    build: impl FnOnce() -> mals_dag::TaskGraph,
) -> bool {
    if options.exact_backend != Some(ExactBackendKind::LpExport) {
        return false;
    }
    print_ilp_export(&build(), platform);
    true
}

/// The display name (series label) of a registry solver key, for the
/// binaries' header lines; unknown keys echo back unchanged.
pub fn solver_display_name(key: &str) -> String {
    mals_exact::solver_registry()
        .build(key)
        .map(|s| s.name().to_string())
        .unwrap_or_else(|| key.to_string())
}

/// Warns on stderr when the MILP backend is asked for an instance above its
/// certification ceiling ([`MilpBackend::MAX_TASKS`]): beyond it the
/// backend falls back to the heuristic incumbent, so a series labelled
/// `Optimal(MILP)` would otherwise present heuristic data as optima without
/// any marker.
pub fn warn_milp_ceiling(backend: Option<ExactBackendKind>, n_tasks: usize, instance: &str) {
    if backend == Some(ExactBackendKind::Milp) && n_tasks > MilpBackend::MAX_TASKS {
        eprintln!(
            "# note: {instance} has {n_tasks} tasks, above the MILP backend's {}-task \
             certification ceiling — its Optimal(MILP) series is best-effort (heuristic \
             incumbent); use a smaller instance or --exact-backend bb",
            MilpBackend::MAX_TASKS
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_strs(args: &[&str]) -> Result<Options, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse_strs(&[]).unwrap();
        assert_eq!(o, Options::default());
        assert!(!o.full);
    }

    #[test]
    fn all_flags() {
        let o = parse_strs(&[
            "--full",
            "--dags",
            "7",
            "--tasks",
            "25",
            "--tiles",
            "9",
            "--threads",
            "4",
            "--dump-dot",
            "--exact-backend",
            "milp",
        ])
        .unwrap();
        assert!(o.full);
        assert_eq!(o.dags, Some(7));
        assert_eq!(o.tasks, Some(25));
        assert_eq!(o.tiles, Some(9));
        assert_eq!(o.threads, Some(4));
        assert!(o.dump_dot);
        assert_eq!(o.exact_backend, Some(ExactBackendKind::Milp));
    }

    #[test]
    fn exact_backend_values() {
        for (flag, kind) in [
            ("bb", ExactBackendKind::BranchAndBound),
            ("milp", ExactBackendKind::Milp),
            ("lp-export", ExactBackendKind::LpExport),
        ] {
            let o = parse_strs(&["--exact-backend", flag]).unwrap();
            assert_eq!(o.exact_backend, Some(kind));
        }
        assert!(parse_strs(&["--exact-backend"]).is_err());
        assert!(parse_strs(&["--exact-backend", "cplex"]).is_err());
    }

    #[test]
    fn threads_flag_maps_to_parallel_config() {
        let o = parse_strs(&["--threads", "4"]).unwrap();
        // The flag always wins over the environment, so this is stable no
        // matter what MALS_THREADS is set to in the surrounding shell.
        assert_eq!(o.parallel().unwrap().resolved_threads(), 4);
        assert_eq!(o.parallel_or_sequential().resolved_threads(), 4);
    }

    #[test]
    fn exact_solver_resolves_flag_over_default() {
        // No flag, no default → no exact series.
        let o = parse_strs(&[]).unwrap();
        assert_eq!(o.exact_solver(None, 8, "test"), None);
        // No flag, a default → the default's registry key.
        assert_eq!(
            o.exact_solver(Some(ExactBackendKind::BranchAndBound), 8, "test"),
            Some("bb".into())
        );
        // The flag wins over the default.
        let o = parse_strs(&["--exact-backend", "milp"]).unwrap();
        assert_eq!(
            o.exact_solver(Some(ExactBackendKind::BranchAndBound), 8, "test"),
            Some("milp".into())
        );
    }

    #[test]
    fn solver_keys_resolve_to_display_names() {
        assert_eq!(solver_display_name("bb"), "Optimal(B&B)");
        assert_eq!(solver_display_name("milp"), "Optimal(MILP)");
        assert_eq!(solver_display_name("memheft"), "MemHEFT");
        // Unknown keys echo back so header lines never panic.
        assert_eq!(solver_display_name("mystery"), "mystery");
        // Every backend kind's key is registered.
        for kind in [
            ExactBackendKind::BranchAndBound,
            ExactBackendKind::Milp,
            ExactBackendKind::LpExport,
        ] {
            assert_eq!(solver_display_name(kind.solver_key()), kind.method_name());
        }
    }

    #[test]
    fn campaign_flags_parse_into_io() {
        let o = parse_strs(&["--checkpoint", "ck.json", "--resume", "--stop-after", "5"]).unwrap();
        assert_eq!(o.checkpoint.as_deref(), Some("ck.json"));
        assert!(o.resume);
        assert_eq!(o.stop_after, Some(5));
        let io = o.campaign_io();
        assert_eq!(
            io.checkpoint.as_deref(),
            Some(std::path::Path::new("ck.json"))
        );
        assert!(io.resume && io.progress);
        assert_eq!(io.stop_after, Some(5));
        assert!(parse_strs(&["--checkpoint"]).is_err());
        assert!(parse_strs(&["--stop-after", "x"]).is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_strs(&["--bogus"]).is_err());
        assert!(parse_strs(&["--dags"]).is_err());
        assert!(parse_strs(&["--dags", "x"]).is_err());
        assert!(parse_strs(&["--help"]).is_err());
    }
}
