//! Normalised campaigns over whole DAG sets (Figures 10 and 12), built for
//! scale: streaming aggregation and checkpoint/resume.
//!
//! For every DAG of a set, the memory axis is normalised by the amount of
//! memory the classical HEFT schedule of that DAG needs
//! (`max(M_blue^HEFT, M_red^HEFT)`), and the makespan axis by HEFT's
//! makespan. At every normalised bound `α ∈ [0, 1]` the campaign reports, for
//! each solver, the average normalised makespan over the DAGs it managed
//! to schedule and the fraction of DAGs it managed to schedule (the paper's
//! plain and dotted lines).
//!
//! Solvers are selected **by registry key** ([`CampaignConfig::solvers`],
//! resolved against `mals_exact::solver_registry()`), so heuristics and
//! exact backends run through one code path.
//!
//! # Streaming aggregation
//!
//! Campaign memory is independent of the number of DAGs: each instance is
//! generated from its seed, solved at every `(α, solver)` point, folded into
//! a [`CampaignAccumulator`] (Welford statistics plus a fixed-grid quantile
//! sketch per series, from `mals_util::streaming`), and dropped. Folding
//! happens in DAG-index order no matter how the solves were spread over
//! threads, so the aggregates — and therefore the final CSV — are identical
//! for every thread count and every chunking.
//!
//! # Checkpoint / resume
//!
//! [`run_streaming_campaign`] can persist a JSON checkpoint (seed cursor +
//! aggregates, via `mals_util::json`, whose float encoding round-trips
//! bit-exactly) after every chunk of DAGs. A killed campaign resumed from
//! its checkpoint folds the exact same stream of values in the exact same
//! order, so the final aggregates are byte-identical to an uninterrupted
//! run; a checkpoint recorded under a different configuration is rejected by
//! a fingerprint check instead of silently blending two campaigns.

use crate::sweep::heft_reference;
use mals_dag::TaskGraph;
use mals_gen::{daggen, SetParams};
use mals_platform::Platform;
use mals_sched::{SolveCtx, SolveLimits, Solver};
use mals_util::streaming::{stats_from_json, stats_to_json};
use mals_util::{parallel_map, Json, OnlineStats, ParallelConfig, Pcg64, QuantileSketch};
use std::path::PathBuf;

/// Configuration of a normalised campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Normalised memory bounds to sweep (fractions of HEFT's requirement).
    pub alphas: Vec<f64>,
    /// Registry keys of the solvers to run (default: `memheft`,
    /// `memminmin`; append `"bb"` / `"milp"` for an optimal series).
    pub solvers: Vec<String>,
    /// Node budget of the exact solvers.
    pub optimal_node_limit: u64,
    /// Parallelism used to spread the DAGs over threads.
    pub parallel: ParallelConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            alphas: (0..=20).map(|i| i as f64 / 20.0).collect(),
            solvers: vec!["memheft".into(), "memminmin".into()],
            optimal_node_limit: 200_000,
            parallel: ParallelConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Appends a solver (by registry key) to the campaign.
    pub fn with_solver(mut self, key: impl Into<String>) -> Self {
        self.solvers.push(key.into());
        self
    }

    /// Campaign with the default exact solver (`bb`) enabled — the Figure 10
    /// configuration.
    pub fn with_optimal(mut self, node_limit: u64) -> Self {
        self.optimal_node_limit = node_limit;
        self.with_solver("bb")
    }
}

/// Aggregated results of one solver at one normalised memory bound.
#[derive(Debug, Clone)]
pub struct MethodAggregate {
    /// Solver display name.
    pub name: String,
    /// Mean of `makespan / makespan_HEFT` over the DAGs successfully
    /// scheduled (`None` when every DAG failed).
    pub mean_normalized_makespan: Option<f64>,
    /// Fraction of the DAGs successfully scheduled.
    pub success_rate: f64,
}

/// One point (one normalised memory bound) of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Normalised memory bound `α`.
    pub alpha: f64,
    /// Per-solver aggregates.
    pub methods: Vec<MethodAggregate>,
}

impl CampaignPoint {
    /// Looks a method up by display name.
    pub fn method(&self, name: &str) -> Option<&MethodAggregate> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Raw per-DAG, per-alpha outcome (normalised makespan or failure).
struct DagOutcomes {
    /// `per_alpha[alpha_index][method_index]`
    per_alpha: Vec<Vec<Option<f64>>>,
}

/// Constant-memory campaign state: one Welford accumulator and one quantile
/// sketch per `(α, solver)` series, plus the seed cursor. Fold order is the
/// DAG-index order, which makes the accumulated floats — and anything
/// printed from them — independent of threading and of any checkpoint/resume
/// boundary.
#[derive(Debug, Clone)]
pub struct CampaignAccumulator {
    alphas: Vec<f64>,
    names: Vec<String>,
    /// `stats[alpha_index][method_index]` over successful normalised makespans.
    stats: Vec<Vec<OnlineStats>>,
    /// Same layout; approximate distribution of the successes.
    sketches: Vec<Vec<QuantileSketch>>,
    /// Number of DAGs folded so far (the resume cursor).
    dags_done: usize,
}

impl CampaignAccumulator {
    /// Creates an empty accumulator for the given series grid.
    pub fn new(alphas: &[f64], names: &[String]) -> Self {
        CampaignAccumulator {
            alphas: alphas.to_vec(),
            names: names.to_vec(),
            stats: vec![vec![OnlineStats::new(); names.len()]; alphas.len()],
            sketches: vec![vec![QuantileSketch::normalized_makespan(); names.len()]; alphas.len()],
            dags_done: 0,
        }
    }

    /// Number of DAGs folded so far.
    pub fn dags_done(&self) -> usize {
        self.dags_done
    }

    /// Folds one DAG's outcomes in.
    fn fold(&mut self, outcomes: &DagOutcomes) {
        for (alpha_idx, row) in outcomes.per_alpha.iter().enumerate() {
            for (method_idx, outcome) in row.iter().enumerate() {
                if let Some(norm) = outcome {
                    self.stats[alpha_idx][method_idx].push(*norm);
                    self.sketches[alpha_idx][method_idx].push(*norm);
                }
            }
        }
        self.dags_done += 1;
    }

    /// Approximate median normalised makespan of one series (from the
    /// fixed-grid sketch), if any DAG succeeded there.
    pub fn approx_median(&self, alpha_idx: usize, method_idx: usize) -> Option<f64> {
        self.sketches[alpha_idx][method_idx].median()
    }

    /// Renders the aggregates as campaign points. `total_dags` is the
    /// denominator of the success rates (the full set size).
    pub fn points(&self, total_dags: usize) -> Vec<CampaignPoint> {
        self.alphas
            .iter()
            .enumerate()
            .map(|(alpha_idx, &alpha)| {
                let methods = self
                    .names
                    .iter()
                    .enumerate()
                    .map(|(method_idx, name)| {
                        let stats = &self.stats[alpha_idx][method_idx];
                        MethodAggregate {
                            name: name.clone(),
                            mean_normalized_makespan: (stats.count() > 0).then(|| stats.mean()),
                            success_rate: if total_dags == 0 {
                                0.0
                            } else {
                                stats.count() as f64 / total_dags as f64
                            },
                        }
                    })
                    .collect();
                CampaignPoint { alpha, methods }
            })
            .collect()
    }

    /// Serialises the accumulator (checkpoint payload).
    fn to_json(&self) -> Json {
        let series = |rows: &Vec<Vec<OnlineStats>>| {
            Json::Arr(
                rows.iter()
                    .map(|row| Json::Arr(row.iter().map(stats_to_json).collect()))
                    .collect(),
            )
        };
        Json::obj([
            ("dags_done", Json::Num(self.dags_done as f64)),
            ("stats", series(&self.stats)),
            (
                "sketches",
                Json::Arr(
                    self.sketches
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(QuantileSketch::to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores an accumulator with the given grid from a checkpoint
    /// payload.
    fn from_json(alphas: &[f64], names: &[String], json: &Json) -> Result<Self, String> {
        let dags_done = json
            .get("dags_done")
            .and_then(Json::as_usize)
            .ok_or("checkpoint: missing dags_done")?;
        let parse_grid = |key: &str| -> Result<Vec<Vec<&Json>>, String> {
            let rows = json
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("checkpoint: missing {key}"))?;
            if rows.len() != alphas.len() {
                return Err(format!("checkpoint: {key} has wrong alpha count"));
            }
            rows.iter()
                .map(|row| {
                    let row = row
                        .as_arr()
                        .ok_or_else(|| format!("checkpoint: malformed {key} row"))?;
                    if row.len() != names.len() {
                        return Err(format!("checkpoint: {key} has wrong method count"));
                    }
                    Ok(row.iter().collect())
                })
                .collect()
        };
        let stats = parse_grid("stats")?
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|cell| stats_from_json(cell).ok_or("checkpoint: bad stats cell"))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let sketches = parse_grid("sketches")?
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|cell| QuantileSketch::from_json(cell).ok_or("checkpoint: bad sketch"))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignAccumulator {
            alphas: alphas.to_vec(),
            names: names.to_vec(),
            stats,
            sketches,
            dags_done,
        })
    }
}

/// Resolves the configured solver keys against the full registry.
///
/// # Panics
/// Panics on an unknown key — campaign configurations are written by the
/// figure drivers, so this is a programming error, and the message lists
/// the valid keys.
fn build_solvers(config: &CampaignConfig) -> Vec<Box<dyn Solver>> {
    let registry = mals_exact::solver_registry();
    config
        .solvers
        .iter()
        .map(|key| {
            registry.build(key).unwrap_or_else(|| {
                panic!(
                    "unknown solver `{key}` in campaign config (known: {})",
                    registry.keys().join(", ")
                )
            })
        })
        .collect()
}

/// Runs the normalised campaign over pre-generated `dags` on `platform`
/// (whose memory bounds are ignored — they are replaced by the swept
/// values). Outcomes are folded into a [`CampaignAccumulator`] as they
/// arrive instead of being collected.
pub fn run_normalized_campaign(
    dags: &[TaskGraph],
    platform: &Platform,
    config: &CampaignConfig,
) -> Vec<CampaignPoint> {
    let solvers = build_solvers(config);
    let names: Vec<String> = solvers.iter().map(|s| s.name().to_string()).collect();
    let mut acc = CampaignAccumulator::new(&config.alphas, &names);
    // Chunked fan-out: each chunk's DAGs solve in parallel, then fold in
    // index order, so memory stays bounded by the chunk and the result is
    // thread-count invariant.
    for chunk in dags.chunks(campaign_chunk_size(config.parallel)) {
        let outcomes = parallel_map(chunk, config.parallel, |graph| {
            run_one_dag(graph, platform, config, &solvers)
        });
        for outcome in &outcomes {
            acc.fold(outcome);
        }
    }
    acc.points(dags.len())
}

/// DAGs solved per fan-out round (and between checkpoint writes).
fn campaign_chunk_size(parallel: ParallelConfig) -> usize {
    parallel.resolved_threads().max(1) * 4
}

/// Checkpoint / progress options of a streaming campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignIo {
    /// Checkpoint file, written after every chunk of DAGs.
    pub checkpoint: Option<PathBuf>,
    /// Resume from the checkpoint file instead of starting fresh.
    pub resume: bool,
    /// Stop (after checkpointing) once this many DAGs were folded *in this
    /// run* — a deterministic stand-in for a mid-campaign kill, used by the
    /// resume round-trip checks.
    pub stop_after: Option<usize>,
    /// Emit a progress line on stderr after every chunk.
    pub progress: bool,
}

/// Outcome of a [`run_streaming_campaign`] call.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The campaign points — `None` when the run stopped early
    /// ([`CampaignIo::stop_after`]) with a checkpoint on disk.
    pub points: Option<Vec<CampaignPoint>>,
    /// DAGs folded so far (across all runs of this campaign).
    pub dags_done: usize,
    /// Total DAGs in the set.
    pub total_dags: usize,
}

/// The configuration fingerprint stored in (and checked against) a
/// checkpoint: resuming under a different DAG set, platform, grid or solver
/// list must fail loudly, not blend two campaigns.
fn fingerprint_json(set: &SetParams, platform: &Platform, config: &CampaignConfig) -> Json {
    let range = |(lo, hi): (u64, u64)| Json::Arr(vec![Json::Num(lo as f64), Json::Num(hi as f64)]);
    Json::obj([
        // Stringly encoded: seeds are arbitrary 64-bit values, beyond what a
        // JSON number represents exactly.
        ("seed", Json::str(set.seed.to_string())),
        ("count", Json::Num(set.count as f64)),
        ("size", Json::Num(set.shape.size as f64)),
        ("width", Json::Num(set.shape.width)),
        ("density", Json::Num(set.shape.density)),
        ("jumps", Json::Num(set.shape.jumps as f64)),
        ("work", range(set.weights.work)),
        ("file_size", range(set.weights.file_size)),
        ("comm_cost", range(set.weights.comm_cost)),
        // The platform's processor counts/speeds change every makespan; its
        // memory bounds are overridden by the swept α values but ride along
        // harmlessly.
        ("platform", platform.to_json()),
        (
            "alphas",
            Json::Arr(config.alphas.iter().map(|&a| Json::Num(a)).collect()),
        ),
        (
            "solvers",
            Json::Arr(config.solvers.iter().map(Json::str).collect()),
        ),
        ("node_limit", Json::Num(config.optimal_node_limit as f64)),
    ])
}

/// Runs a normalised campaign directly from the set's seeds: every DAG is
/// generated, solved at every `(α, solver)` point, folded into the
/// accumulator and dropped — memory is constant in the number of DAGs, which
/// is what lets the harness sweep thousands of seeds of 10⁴–10⁵-task
/// instances. With [`CampaignIo::checkpoint`] the accumulator and seed
/// cursor are persisted after every chunk; a resumed run produces
/// byte-identical final aggregates to an uninterrupted one.
pub fn run_streaming_campaign(
    set: &SetParams,
    platform: &Platform,
    config: &CampaignConfig,
    io: &CampaignIo,
) -> Result<CampaignRun, String> {
    // A stop without a checkpoint would silently discard every solved DAG
    // (and a zero budget would stop before the first checkpoint write):
    // reject both instead of losing work.
    match io.stop_after {
        Some(0) => return Err("stop-after expects a positive DAG count".into()),
        Some(_) if io.checkpoint.is_none() => {
            return Err(
                "stop-after without a checkpoint would discard the completed work; \
                 pass a checkpoint path"
                    .into(),
            )
        }
        _ => {}
    }
    let solvers = build_solvers(config);
    let names: Vec<String> = solvers.iter().map(|s| s.name().to_string()).collect();
    let fingerprint = fingerprint_json(set, platform, config);

    let mut acc = CampaignAccumulator::new(&config.alphas, &names);
    if io.resume {
        let path = io
            .checkpoint
            .as_ref()
            .ok_or("resume requested without a checkpoint path")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("bad checkpoint: {e}"))?;
        let stored = json
            .get("fingerprint")
            .ok_or("checkpoint: no fingerprint")?;
        if *stored != fingerprint {
            return Err(
                "checkpoint was recorded under a different campaign configuration \
                 (set/platform/alphas/solvers/limits); refusing to resume"
                    .into(),
            );
        }
        let payload = json
            .get("accumulator")
            .ok_or("checkpoint: no accumulator")?;
        acc = CampaignAccumulator::from_json(&config.alphas, &names, payload)?;
        if acc.dags_done() > set.count {
            return Err(format!(
                "checkpoint cursor {} exceeds the campaign size {}",
                acc.dags_done(),
                set.count
            ));
        }
    }

    // Replay the seed derivation up to the cursor: forking the master RNG is
    // O(1) per DAG, so resuming never regenerates (or re-solves) anything.
    // Forks are drawn one chunk at a time (the cursor only moves forward),
    // keeping memory constant in the number of seeds.
    let mut master = Pcg64::new(set.seed);
    for i in 0..acc.dags_done() {
        let _ = master.fork(i as u64);
    }

    let chunk_size = campaign_chunk_size(config.parallel);
    let mut folded_this_run = 0usize;
    while acc.dags_done() < set.count {
        let lo = acc.dags_done();
        let mut hi = (lo + chunk_size).min(set.count);
        if let Some(stop_after) = io.stop_after {
            let budget = stop_after.saturating_sub(folded_this_run);
            hi = hi.min(lo + budget);
            if hi == lo {
                break;
            }
        }
        let chunk_rngs: Vec<Pcg64> = (lo..hi).map(|i| master.fork(i as u64)).collect();
        let outcomes = parallel_map(&chunk_rngs, config.parallel, |rng| {
            let mut rng = rng.clone();
            let graph = daggen::generate(&set.shape, &set.weights, &mut rng);
            run_one_dag(&graph, platform, config, &solvers)
        });
        for outcome in &outcomes {
            acc.fold(outcome);
        }
        folded_this_run += hi - lo;

        if let Some(path) = &io.checkpoint {
            let checkpoint = Json::obj([
                ("schema", Json::Num(1.0)),
                ("kind", Json::str("mals-campaign-checkpoint")),
                ("fingerprint", fingerprint.clone()),
                ("accumulator", acc.to_json()),
            ]);
            // Write-then-rename so the kill this file exists to survive can
            // never leave a truncated checkpoint behind: the previous good
            // one stays intact until the replacement is fully on disk.
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, checkpoint.to_pretty())
                .map_err(|e| format!("cannot write checkpoint {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, path)
                .map_err(|e| format!("cannot finalise checkpoint {}: {e}", path.display()))?;
        }
        if io.progress {
            progress_line(&acc, set.count, &names);
        }
    }

    let complete = acc.dags_done() == set.count;
    Ok(CampaignRun {
        points: complete.then(|| acc.points(set.count)),
        dags_done: acc.dags_done(),
        total_dags: set.count,
    })
}

/// One stderr progress line: cursor plus the α = 1 series summary (success
/// rate, streaming mean and sketch median of the first solver).
fn progress_line(acc: &CampaignAccumulator, total: usize, names: &[String]) {
    let last_alpha = acc.alphas.len().saturating_sub(1);
    let stats = &acc.stats[last_alpha][0];
    let median = acc
        .approx_median(last_alpha, 0)
        .map(|m| format!("{m:.3}"))
        .unwrap_or_else(|| "-".into());
    eprintln!(
        "# campaign: {}/{} dags | {} @ alpha={:.2}: n={} mean={:.3} p50~{}",
        acc.dags_done(),
        total,
        names.first().map(String::as_str).unwrap_or("?"),
        acc.alphas.get(last_alpha).copied().unwrap_or(1.0),
        stats.count(),
        stats.mean(),
        median,
    );
}

fn run_one_dag(
    graph: &TaskGraph,
    platform: &Platform,
    config: &CampaignConfig,
    solvers: &[Box<dyn Solver>],
) -> DagOutcomes {
    let reference = heft_reference(graph, platform);
    let baseline_memory = reference.heft_peaks.max();
    let baseline_makespan = reference.heft_makespan.max(f64::MIN_POSITIVE);
    let ctx = SolveCtx::with_limits(SolveLimits::with_node_limit(config.optimal_node_limit));

    let per_alpha = config
        .alphas
        .iter()
        .map(|&alpha| {
            let bound = alpha * baseline_memory;
            let bounded = platform.with_memory_bounds(bound, bound);
            solvers
                .iter()
                .map(|solver| {
                    crate::sweep::checked_makespan(solver, graph, &bounded, &ctx)
                        .map(|m| m / baseline_makespan)
                })
                .collect()
        })
        .collect();
    DagOutcomes { per_alpha }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::SetParams;

    fn tiny_campaign(include_optimal: bool) -> Vec<CampaignPoint> {
        let dags = SetParams::small_rand().scaled(4, 8).generate();
        let platform = Platform::single_pair(0.0, 0.0);
        let mut config = CampaignConfig {
            alphas: vec![0.2, 0.5, 1.0],
            optimal_node_limit: 20_000,
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        };
        if include_optimal {
            config = config.with_solver("bb");
        }
        run_normalized_campaign(&dags, &platform, &config)
    }

    #[test]
    fn campaign_structure() {
        let points = tiny_campaign(false);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.methods.len(), 2);
            assert!(p.method("MemHEFT").is_some());
            assert!(p.method("MemMinMin").is_some());
            for m in &p.methods {
                assert!((0.0..=1.0).contains(&m.success_rate));
            }
        }
    }

    #[test]
    fn full_memory_reproduces_heft_equivalence() {
        // At alpha = 1 the bounds equal HEFT's own requirement, so MemHEFT
        // succeeds on every DAG and its normalised makespan is 1.
        let points = tiny_campaign(false);
        let full = points.last().unwrap();
        let memheft = full.method("MemHEFT").unwrap();
        assert_eq!(memheft.success_rate, 1.0);
        let mean = memheft.mean_normalized_makespan.unwrap();
        assert!(
            (mean - 1.0).abs() < 1e-9,
            "mean normalised makespan {mean} should be 1 at alpha=1"
        );
    }

    #[test]
    fn success_rate_increases_with_memory() {
        let points = tiny_campaign(false);
        for name in ["MemHEFT", "MemMinMin"] {
            let rates: Vec<f64> = points
                .iter()
                .map(|p| p.method(name).unwrap().success_rate)
                .collect();
            for w in rates.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{name} success rate must not decrease with memory"
                );
            }
        }
    }

    #[test]
    fn optimal_is_at_least_as_good_as_heuristics() {
        let points = tiny_campaign(true);
        for p in &points {
            let opt = p.method("Optimal(B&B)").unwrap();
            for name in ["MemHEFT", "MemMinMin"] {
                let h = p.method(name).unwrap();
                // The optimal schedules at least as many DAGs…
                assert!(opt.success_rate >= h.success_rate - 1e-9);
            }
        }
    }

    #[test]
    fn milp_backend_campaign_dominates_bb_series() {
        // The MILP backend must schedule at least as many DAGs as B&B and
        // never report a worse mean at any point of a tiny campaign.
        let dags = SetParams::small_rand().scaled(2, 6).generate();
        let platform = Platform::single_pair(0.0, 0.0);
        let base = CampaignConfig {
            alphas: vec![0.5, 1.0],
            optimal_node_limit: 50_000,
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        };
        let bb = run_normalized_campaign(&dags, &platform, &base.clone().with_solver("bb"));
        let milp = run_normalized_campaign(&dags, &platform, &base.with_solver("milp"));
        for (p, q) in bb.iter().zip(&milp) {
            let a = p.method("Optimal(B&B)").unwrap();
            let b = q.method("Optimal(MILP)").unwrap();
            assert!(b.success_rate >= a.success_rate - 1e-9);
            if let (Some(x), Some(y)) = (a.mean_normalized_makespan, b.mean_normalized_makespan) {
                assert!(y <= x + 1e-6, "MILP mean {y} worse than B&B mean {x}");
            }
        }
    }

    #[test]
    fn empty_dag_set() {
        let platform = Platform::single_pair(0.0, 0.0);
        let config = CampaignConfig {
            alphas: vec![0.5],
            ..Default::default()
        };
        let points = run_normalized_campaign(&[], &platform, &config);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].methods[0].success_rate, 0.0);
        assert!(points[0].methods[0].mean_normalized_makespan.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown solver")]
    fn unknown_solver_key_panics_with_known_list() {
        let platform = Platform::single_pair(0.0, 0.0);
        let config = CampaignConfig::default().with_solver("cplex");
        run_normalized_campaign(&[], &platform, &config);
    }

    // ---- streaming / checkpoint tests ----

    fn tiny_set() -> SetParams {
        SetParams::small_rand().scaled(6, 8)
    }

    fn tiny_stream_config() -> CampaignConfig {
        CampaignConfig {
            alphas: vec![0.4, 1.0],
            optimal_node_limit: 10_000,
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        }
    }

    fn points_csv(points: &[CampaignPoint]) -> String {
        crate::csv::campaign_to_csv(points)
    }

    #[test]
    fn streaming_campaign_matches_batch_campaign() {
        let set = tiny_set();
        let platform = Platform::single_pair(0.0, 0.0);
        let config = tiny_stream_config();
        let batch = run_normalized_campaign(&set.generate(), &platform, &config);
        let streamed = run_streaming_campaign(&set, &platform, &config, &CampaignIo::default())
            .unwrap()
            .points
            .expect("no stop requested");
        assert_eq!(points_csv(&batch), points_csv(&streamed));
    }

    #[test]
    fn killed_campaign_resumes_to_byte_identical_aggregates() {
        let set = tiny_set();
        let platform = Platform::single_pair(0.0, 0.0);
        let config = tiny_stream_config();
        let uninterrupted =
            run_streaming_campaign(&set, &platform, &config, &CampaignIo::default())
                .unwrap()
                .points
                .unwrap();

        let dir = std::env::temp_dir().join(format!(
            "mals-campaign-ck-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("checkpoint.json");
        // "Kill" the campaign after 2 of 6 DAGs (the chunk size exceeds the
        // budget, so this also exercises the partial-chunk path)…
        let stopped = run_streaming_campaign(
            &set,
            &platform,
            &config,
            &CampaignIo {
                checkpoint: Some(ck.clone()),
                stop_after: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(stopped.points.is_none());
        assert_eq!(stopped.dags_done, 2);
        // …then resume to completion.
        let resumed = run_streaming_campaign(
            &set,
            &platform,
            &config,
            &CampaignIo {
                checkpoint: Some(ck.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.dags_done, set.count);
        let resumed_points = resumed.points.unwrap();
        assert_eq!(
            points_csv(&uninterrupted),
            points_csv(&resumed_points),
            "resumed aggregates must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_fingerprint_mismatch_is_rejected() {
        let set = tiny_set();
        let platform = Platform::single_pair(0.0, 0.0);
        let config = tiny_stream_config();
        let dir = std::env::temp_dir().join(format!(
            "mals-campaign-fp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("checkpoint.json");
        run_streaming_campaign(
            &set,
            &platform,
            &config,
            &CampaignIo {
                checkpoint: Some(ck.clone()),
                stop_after: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        // Resuming with a different alpha grid must fail.
        let other = CampaignConfig {
            alphas: vec![0.5, 1.0],
            ..tiny_stream_config()
        };
        let err = run_streaming_campaign(
            &set,
            &platform,
            &other,
            &CampaignIo {
                checkpoint: Some(ck.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("different campaign configuration"), "{err}");
        // A different platform (more processors → different makespans) must
        // be refused too.
        let err = run_streaming_campaign(
            &set,
            &Platform::new(2, 2, 0.0, 0.0).unwrap(),
            &tiny_stream_config(),
            &CampaignIo {
                checkpoint: Some(ck.clone()),
                resume: true,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("different campaign configuration"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stop_after_requires_a_checkpoint_and_a_positive_budget() {
        let set = tiny_set();
        let platform = Platform::single_pair(0.0, 0.0);
        let config = tiny_stream_config();
        let err = run_streaming_campaign(
            &set,
            &platform,
            &config,
            &CampaignIo {
                stop_after: Some(2),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("checkpoint"), "{err}");
        let err = run_streaming_campaign(
            &set,
            &platform,
            &config,
            &CampaignIo {
                checkpoint: Some(std::env::temp_dir().join("unused.ck.json")),
                stop_after: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn resume_without_checkpoint_path_errors() {
        let err = run_streaming_campaign(
            &tiny_set(),
            &Platform::single_pair(0.0, 0.0),
            &tiny_stream_config(),
            &CampaignIo {
                resume: true,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("checkpoint"), "{err}");
    }
}
