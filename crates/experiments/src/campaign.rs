//! Normalised campaigns over whole DAG sets (Figures 10 and 12).
//!
//! For every DAG of a set, the memory axis is normalised by the amount of
//! memory the classical HEFT schedule of that DAG needs
//! (`max(M_blue^HEFT, M_red^HEFT)`), and the makespan axis by HEFT's
//! makespan. At every normalised bound `α ∈ [0, 1]` the campaign reports, for
//! each solver, the average normalised makespan over the DAGs it managed
//! to schedule and the fraction of DAGs it managed to schedule (the paper's
//! plain and dotted lines).
//!
//! Solvers are selected **by registry key** ([`CampaignConfig::solvers`],
//! resolved against `mals_exact::solver_registry()`), so heuristics and
//! exact backends run through one code path.

use crate::sweep::heft_reference;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sched::{SolveCtx, SolveLimits, Solver};
use mals_util::{parallel_map, OnlineStats, ParallelConfig};

/// Configuration of a normalised campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Normalised memory bounds to sweep (fractions of HEFT's requirement).
    pub alphas: Vec<f64>,
    /// Registry keys of the solvers to run (default: `memheft`,
    /// `memminmin`; append `"bb"` / `"milp"` for an optimal series).
    pub solvers: Vec<String>,
    /// Node budget of the exact solvers.
    pub optimal_node_limit: u64,
    /// Parallelism used to spread the DAGs over threads.
    pub parallel: ParallelConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            alphas: (0..=20).map(|i| i as f64 / 20.0).collect(),
            solvers: vec!["memheft".into(), "memminmin".into()],
            optimal_node_limit: 200_000,
            parallel: ParallelConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// Appends a solver (by registry key) to the campaign.
    pub fn with_solver(mut self, key: impl Into<String>) -> Self {
        self.solvers.push(key.into());
        self
    }

    /// Campaign with the default exact solver (`bb`) enabled — the Figure 10
    /// configuration.
    pub fn with_optimal(mut self, node_limit: u64) -> Self {
        self.optimal_node_limit = node_limit;
        self.with_solver("bb")
    }
}

/// Aggregated results of one solver at one normalised memory bound.
#[derive(Debug, Clone)]
pub struct MethodAggregate {
    /// Solver display name.
    pub name: String,
    /// Mean of `makespan / makespan_HEFT` over the DAGs successfully
    /// scheduled (`None` when every DAG failed).
    pub mean_normalized_makespan: Option<f64>,
    /// Fraction of the DAGs successfully scheduled.
    pub success_rate: f64,
}

/// One point (one normalised memory bound) of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Normalised memory bound `α`.
    pub alpha: f64,
    /// Per-solver aggregates.
    pub methods: Vec<MethodAggregate>,
}

impl CampaignPoint {
    /// Looks a method up by display name.
    pub fn method(&self, name: &str) -> Option<&MethodAggregate> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// Raw per-DAG, per-alpha outcome (normalised makespan or failure).
struct DagOutcomes {
    /// `per_alpha[alpha_index][method_index]`
    per_alpha: Vec<Vec<Option<f64>>>,
}

/// Resolves the configured solver keys against the full registry.
///
/// # Panics
/// Panics on an unknown key — campaign configurations are written by the
/// figure drivers, so this is a programming error, and the message lists
/// the valid keys.
fn build_solvers(config: &CampaignConfig) -> Vec<Box<dyn Solver>> {
    let registry = mals_exact::solver_registry();
    config
        .solvers
        .iter()
        .map(|key| {
            registry.build(key).unwrap_or_else(|| {
                panic!(
                    "unknown solver `{key}` in campaign config (known: {})",
                    registry.keys().join(", ")
                )
            })
        })
        .collect()
}

/// Runs the normalised campaign over `dags` on `platform` (whose memory
/// bounds are ignored — they are replaced by the swept values).
pub fn run_normalized_campaign(
    dags: &[TaskGraph],
    platform: &Platform,
    config: &CampaignConfig,
) -> Vec<CampaignPoint> {
    let solvers = build_solvers(config);
    let names: Vec<String> = solvers.iter().map(|s| s.name().to_string()).collect();
    let outcomes = parallel_map(dags, config.parallel, |graph| {
        run_one_dag(graph, platform, config, &solvers)
    });

    config
        .alphas
        .iter()
        .enumerate()
        .map(|(alpha_idx, &alpha)| {
            let methods = names
                .iter()
                .enumerate()
                .map(|(method_idx, name)| {
                    let mut stats = OnlineStats::new();
                    let mut successes = 0usize;
                    for dag in &outcomes {
                        if let Some(norm) = dag.per_alpha[alpha_idx][method_idx] {
                            stats.push(norm);
                            successes += 1;
                        }
                    }
                    MethodAggregate {
                        name: name.clone(),
                        mean_normalized_makespan: (successes > 0).then(|| stats.mean()),
                        success_rate: if dags.is_empty() {
                            0.0
                        } else {
                            successes as f64 / dags.len() as f64
                        },
                    }
                })
                .collect();
            CampaignPoint { alpha, methods }
        })
        .collect()
}

fn run_one_dag(
    graph: &TaskGraph,
    platform: &Platform,
    config: &CampaignConfig,
    solvers: &[Box<dyn Solver>],
) -> DagOutcomes {
    let reference = heft_reference(graph, platform);
    let baseline_memory = reference.heft_peaks.max();
    let baseline_makespan = reference.heft_makespan.max(f64::MIN_POSITIVE);
    let ctx = SolveCtx::with_limits(SolveLimits::with_node_limit(config.optimal_node_limit));

    let per_alpha = config
        .alphas
        .iter()
        .map(|&alpha| {
            let bound = alpha * baseline_memory;
            let bounded = platform.with_memory_bounds(bound, bound);
            solvers
                .iter()
                .map(|solver| {
                    crate::sweep::checked_makespan(solver, graph, &bounded, &ctx)
                        .map(|m| m / baseline_makespan)
                })
                .collect()
        })
        .collect();
    DagOutcomes { per_alpha }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::SetParams;

    fn tiny_campaign(include_optimal: bool) -> Vec<CampaignPoint> {
        let dags = SetParams::small_rand().scaled(4, 8).generate();
        let platform = Platform::single_pair(0.0, 0.0);
        let mut config = CampaignConfig {
            alphas: vec![0.2, 0.5, 1.0],
            optimal_node_limit: 20_000,
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        };
        if include_optimal {
            config = config.with_solver("bb");
        }
        run_normalized_campaign(&dags, &platform, &config)
    }

    #[test]
    fn campaign_structure() {
        let points = tiny_campaign(false);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.methods.len(), 2);
            assert!(p.method("MemHEFT").is_some());
            assert!(p.method("MemMinMin").is_some());
            for m in &p.methods {
                assert!((0.0..=1.0).contains(&m.success_rate));
            }
        }
    }

    #[test]
    fn full_memory_reproduces_heft_equivalence() {
        // At alpha = 1 the bounds equal HEFT's own requirement, so MemHEFT
        // succeeds on every DAG and its normalised makespan is 1.
        let points = tiny_campaign(false);
        let full = points.last().unwrap();
        let memheft = full.method("MemHEFT").unwrap();
        assert_eq!(memheft.success_rate, 1.0);
        let mean = memheft.mean_normalized_makespan.unwrap();
        assert!(
            (mean - 1.0).abs() < 1e-9,
            "mean normalised makespan {mean} should be 1 at alpha=1"
        );
    }

    #[test]
    fn success_rate_increases_with_memory() {
        let points = tiny_campaign(false);
        for name in ["MemHEFT", "MemMinMin"] {
            let rates: Vec<f64> = points
                .iter()
                .map(|p| p.method(name).unwrap().success_rate)
                .collect();
            for w in rates.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{name} success rate must not decrease with memory"
                );
            }
        }
    }

    #[test]
    fn optimal_is_at_least_as_good_as_heuristics() {
        let points = tiny_campaign(true);
        for p in &points {
            let opt = p.method("Optimal(B&B)").unwrap();
            for name in ["MemHEFT", "MemMinMin"] {
                let h = p.method(name).unwrap();
                // The optimal schedules at least as many DAGs…
                assert!(opt.success_rate >= h.success_rate - 1e-9);
            }
        }
    }

    #[test]
    fn milp_backend_campaign_dominates_bb_series() {
        // The MILP backend must schedule at least as many DAGs as B&B and
        // never report a worse mean at any point of a tiny campaign.
        let dags = SetParams::small_rand().scaled(2, 6).generate();
        let platform = Platform::single_pair(0.0, 0.0);
        let base = CampaignConfig {
            alphas: vec![0.5, 1.0],
            optimal_node_limit: 50_000,
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        };
        let bb = run_normalized_campaign(&dags, &platform, &base.clone().with_solver("bb"));
        let milp = run_normalized_campaign(&dags, &platform, &base.with_solver("milp"));
        for (p, q) in bb.iter().zip(&milp) {
            let a = p.method("Optimal(B&B)").unwrap();
            let b = q.method("Optimal(MILP)").unwrap();
            assert!(b.success_rate >= a.success_rate - 1e-9);
            if let (Some(x), Some(y)) = (a.mean_normalized_makespan, b.mean_normalized_makespan) {
                assert!(y <= x + 1e-6, "MILP mean {y} worse than B&B mean {x}");
            }
        }
    }

    #[test]
    fn empty_dag_set() {
        let platform = Platform::single_pair(0.0, 0.0);
        let config = CampaignConfig {
            alphas: vec![0.5],
            ..Default::default()
        };
        let points = run_normalized_campaign(&[], &platform, &config);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].methods[0].success_rate, 0.0);
        assert!(points[0].methods[0].mean_normalized_makespan.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown solver")]
    fn unknown_solver_key_panics_with_known_list() {
        let platform = Platform::single_pair(0.0, 0.0);
        let config = CampaignConfig::default().with_solver("cplex");
        run_normalized_campaign(&[], &platform, &config);
    }
}
