//! The embeddable service surface: `SolveRequest` in, `SolveReport` out.
//!
//! This is the library-first "endpoint" shape of the workspace: a request
//! names a solver (a registry key of `mals_exact::solver_registry()`),
//! carries the task graph, the platform, the thread budget and the solve
//! limits, and [`solve_request`] returns a provenance-stamped report — the
//! schedule, its makespan and memory peaks, an *independent* validation
//! verdict from `mals_sim::validate`, the optimality status, the wall time
//! and the solver/engine identity. Both types round-trip through JSON
//! ([`SolveRequest::to_json`] / [`SolveRequest::from_json`], same for the
//! report), and the `schedule` binary wires the same functions to a file /
//! stdin, so any process that can write JSON can use every solver in the
//! registry through one code path.

use mals_dag::{serialize, TaskGraph};
use mals_exact::solver_registry;
use mals_platform::Platform;
use mals_sched::{Engine, EngineConfig, MemberReport, OptimalityStatus, Portfolio, SolveLimits};
use mals_sim::{
    peaks_from_json, peaks_to_json, schedule_from_json, schedule_to_json, validate, MemoryPeaks,
    Schedule,
};
use mals_util::{Deadline, Json, ParallelConfig};

/// Encodes a `u64` losslessly: as a JSON number while `f64` is exact
/// (≤ 2⁵³), as a decimal string beyond (seeds are arbitrary 64-bit values).
fn u64_to_json(x: u64) -> Json {
    if x <= 9_007_199_254_740_992 {
        Json::Num(x as f64)
    } else {
        Json::Str(x.to_string())
    }
}

/// Parses either encoding produced by [`u64_to_json`].
fn json_to_u64(value: &Json) -> Option<u64> {
    value
        .as_u64()
        .or_else(|| value.as_str().and_then(|s| s.parse().ok()))
}

/// Largest worker-thread count a JSON request may ask for (`0` = all
/// cores is always allowed); guards the endpoint against thread-spawn
/// exhaustion from untrusted documents.
pub const MAX_REQUEST_THREADS: usize = 512;

/// A solve request: everything needed to reproduce one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// The platform to schedule on.
    pub platform: Platform,
    /// Registry key of the solver (`"memheft"`, `"milp"`, …).
    pub solver: String,
    /// Worker threads for within-schedule parallelism (`0` = all cores;
    /// results are bit-identical for every setting).
    pub threads: usize,
    /// Budgets for exact solvers.
    pub limits: SolveLimits,
    /// Seed for randomised solvers (`None` = 0); echoed in the report.
    pub seed: Option<u64>,
    /// Member keys when `solver` is `"portfolio"` (empty: the default
    /// member set); ignored for ordinary solvers.
    pub solvers: Vec<String>,
    /// Wall-clock deadline for the solve in milliseconds (`None`: no
    /// deadline). Every solver polls it cooperatively; a portfolio returns
    /// the best member result available when it passes.
    pub deadline_ms: Option<u64>,
}

impl SolveRequest {
    /// A sequential request with default limits and no seed.
    pub fn new(graph: TaskGraph, platform: Platform, solver: impl Into<String>) -> Self {
        SolveRequest {
            graph,
            platform,
            solver: solver.into(),
            threads: 1,
            limits: SolveLimits::default(),
            seed: None,
            solvers: Vec::new(),
            deadline_ms: None,
        }
    }

    /// Serialises the request.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("solver".to_string(), Json::str(&self.solver)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
        ];
        if let Some(seed) = self.seed {
            pairs.push(("seed".into(), u64_to_json(seed)));
        }
        if !self.solvers.is_empty() {
            pairs.push((
                "solvers".into(),
                Json::Arr(self.solvers.iter().map(Json::str).collect()),
            ));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), u64_to_json(ms)));
        }
        pairs.push((
            "limits".into(),
            Json::obj([
                ("node_limit", u64_to_json(self.limits.node_limit)),
                (
                    "lp_iteration_limit",
                    u64_to_json(self.limits.lp_iteration_limit),
                ),
            ]),
        ));
        pairs.push(("graph".into(), serialize::to_json(&self.graph)));
        pairs.push(("platform".into(), self.platform.to_json()));
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`SolveRequest::to_json`]. `threads`,
    /// `limits` and `seed` are optional (defaults: 1 thread, default
    /// limits, no seed); `solver`, `graph` and `platform` are required.
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        let solver = json
            .get("solver")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::BadRequest("missing `solver` name".into()))?
            .to_string();
        let threads = match json.get("threads") {
            None => 1,
            Some(value) => value.as_usize().ok_or_else(|| {
                ServiceError::BadRequest("`threads` must be a non-negative integer".into())
            })?,
        };
        // The pool spawns one OS thread per requested worker; an absurd
        // count from an untrusted document must fail as a named error, not
        // as a thread-spawn abort.
        if threads > MAX_REQUEST_THREADS {
            return Err(ServiceError::BadRequest(format!(
                "`threads` must be at most {MAX_REQUEST_THREADS} (0 = all cores)"
            )));
        }
        let seed = match json.get("seed") {
            None | Some(Json::Null) => None,
            Some(value) => Some(json_to_u64(value).ok_or_else(|| {
                ServiceError::BadRequest("`seed` must be a non-negative integer".into())
            })?),
        };
        let solvers = match json.get("solvers") {
            None | Some(Json::Null) => Vec::new(),
            Some(value) => value
                .as_arr()
                .ok_or_else(|| {
                    ServiceError::BadRequest("`solvers` must be an array of registry keys".into())
                })?
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ServiceError::BadRequest("`solvers` entries must be strings".into())
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(value) => Some(json_to_u64(value).ok_or_else(|| {
                ServiceError::BadRequest("`deadline_ms` must be a non-negative integer".into())
            })?),
        };
        let mut limits = SolveLimits::default();
        if let Some(doc) = json.get("limits") {
            if let Some(n) = doc.get("node_limit") {
                limits.node_limit = json_to_u64(n).ok_or_else(|| {
                    ServiceError::BadRequest("`limits.node_limit` must be an integer".into())
                })?;
            }
            if let Some(n) = doc.get("lp_iteration_limit") {
                limits.lp_iteration_limit = json_to_u64(n).ok_or_else(|| {
                    ServiceError::BadRequest(
                        "`limits.lp_iteration_limit` must be an integer".into(),
                    )
                })?;
            }
        }
        let graph = json
            .get("graph")
            .ok_or_else(|| ServiceError::BadRequest("missing `graph`".into()))
            .and_then(|doc| {
                serialize::from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))
            })?;
        let platform = json
            .get("platform")
            .ok_or_else(|| ServiceError::BadRequest("missing `platform`".into()))
            .and_then(|doc| {
                Platform::from_json(doc)
                    .map_err(|e| ServiceError::BadRequest(format!("bad platform: {e}")))
            })?;
        Ok(SolveRequest {
            graph,
            platform,
            solver,
            threads,
            limits,
            seed,
            solvers,
            deadline_ms,
        })
    }

    /// Parses a request from JSON text.
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let json = Json::parse(text).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        SolveRequest::from_json(&json)
    }
}

/// One portfolio member's outcome, echoed in a portfolio [`SolveReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberOutcome {
    /// Registry key of the member.
    pub key: String,
    /// Display name of the member.
    pub name: String,
    /// The member's own claimed status.
    pub status: OptimalityStatus,
    /// Makespan of the member's schedule, if it produced one.
    pub makespan: Option<f64>,
    /// Search effort the member spent.
    pub nodes: u64,
    /// Wall time the member ran for, in milliseconds.
    pub wall_time_ms: u64,
    /// `true` when the member was cooperatively cancelled.
    pub cancelled: bool,
    /// A contained panic, solver error, or validation exclusion.
    pub error: Option<String>,
}

impl From<&MemberReport> for MemberOutcome {
    fn from(member: &MemberReport) -> Self {
        MemberOutcome {
            key: member.key.clone(),
            name: member.name.clone(),
            status: member.status,
            makespan: member.makespan,
            nodes: member.nodes,
            wall_time_ms: member.wall_time_ms,
            cancelled: member.cancelled,
            error: member.error.clone(),
        }
    }
}

impl MemberOutcome {
    /// Serialises the member outcome.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("key".to_string(), Json::str(&self.key)),
            ("name".to_string(), Json::str(&self.name)),
            ("status".to_string(), Json::str(self.status.as_str())),
            (
                "makespan".to_string(),
                self.makespan.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("nodes".to_string(), u64_to_json(self.nodes)),
            ("wall_time_ms".to_string(), u64_to_json(self.wall_time_ms)),
            ("cancelled".to_string(), Json::Bool(self.cancelled)),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error".into(), Json::str(error)));
        }
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`MemberOutcome::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        let text = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServiceError::BadRequest(format!("member missing `{key}`")))
        };
        Ok(MemberOutcome {
            key: text("key")?,
            name: text("name")?,
            status: OptimalityStatus::parse(&text("status")?)
                .ok_or_else(|| ServiceError::BadRequest("unknown member `status`".into()))?,
            makespan: json.get("makespan").and_then(Json::as_f64),
            nodes: json.get("nodes").and_then(json_to_u64).unwrap_or(0),
            wall_time_ms: json.get("wall_time_ms").and_then(json_to_u64).unwrap_or(0),
            cancelled: json
                .get("cancelled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// The provenance-stamped result of a [`SolveRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Display name of the solver that ran (`"MemHEFT"`, `"Optimal(MILP)"`).
    pub solver: String,
    /// Registry key it was resolved from.
    pub solver_key: String,
    /// Version of the engine (the workspace crate version).
    pub engine_version: String,
    /// What the solve proved.
    pub status: OptimalityStatus,
    /// The schedule, when the status carries one.
    pub schedule: Option<Schedule>,
    /// Its makespan.
    pub makespan: Option<f64>,
    /// Its memory peaks, replayed by the independent validator.
    pub peaks: Option<MemoryPeaks>,
    /// Verdict of `mals_sim::validate` (memory-oblivious baselines are
    /// checked against the unbounded platform — their declared contract).
    pub valid: Option<bool>,
    /// Rendered validation errors (empty for a valid schedule).
    pub validation_errors: Vec<String>,
    /// Search effort (0 for heuristics).
    pub nodes: u64,
    /// Wall-clock solve time in milliseconds.
    pub wall_time_ms: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The request's seed, echoed for provenance.
    pub seed: Option<u64>,
    /// The request's deadline, echoed for provenance.
    pub deadline_ms: Option<u64>,
    /// Per-member outcomes of a portfolio race (empty for ordinary solves).
    pub members: Vec<MemberOutcome>,
    /// Registry key of the winning portfolio member, if any.
    pub winner: Option<String>,
    /// Why the instance was rejected, when it never reached the solver.
    pub error: Option<String>,
}

impl SolveReport {
    /// Serialises the report (the schedule is embedded, so the report is
    /// self-contained and can be re-validated downstream).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("solver".to_string(), Json::str(&self.solver)),
            ("solver_key".to_string(), Json::str(&self.solver_key)),
            (
                "engine_version".to_string(),
                Json::str(&self.engine_version),
            ),
            ("status".to_string(), Json::str(self.status.as_str())),
            (
                "makespan".to_string(),
                self.makespan.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "peaks".to_string(),
                self.peaks.as_ref().map(peaks_to_json).unwrap_or(Json::Null),
            ),
            (
                "valid".to_string(),
                self.valid.map(Json::Bool).unwrap_or(Json::Null),
            ),
            (
                "validation_errors".to_string(),
                Json::Arr(self.validation_errors.iter().map(Json::str).collect()),
            ),
            ("nodes".to_string(), u64_to_json(self.nodes)),
            ("wall_time_ms".to_string(), Json::Num(self.wall_time_ms)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
        ];
        if let Some(seed) = self.seed {
            pairs.push(("seed".into(), u64_to_json(seed)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), u64_to_json(ms)));
        }
        if !self.members.is_empty() {
            pairs.push((
                "portfolio".into(),
                Json::Arr(self.members.iter().map(MemberOutcome::to_json).collect()),
            ));
        }
        if let Some(winner) = &self.winner {
            pairs.push(("winner".into(), Json::str(winner)));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".into(), Json::str(error)));
        }
        if let Some(schedule) = &self.schedule {
            pairs.push(("schedule".into(), schedule_to_json(schedule)));
        }
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`SolveReport::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        let text = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServiceError::BadRequest(format!("missing `{key}`")))
        };
        let status = OptimalityStatus::parse(&text("status")?)
            .ok_or_else(|| ServiceError::BadRequest("unknown `status`".into()))?;
        let schedule = match json.get("schedule") {
            None | Some(Json::Null) => None,
            Some(doc) => {
                Some(schedule_from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))?)
            }
        };
        let peaks = match json.get("peaks") {
            None | Some(Json::Null) => None,
            Some(doc) => {
                Some(peaks_from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))?)
            }
        };
        Ok(SolveReport {
            solver: text("solver")?,
            solver_key: text("solver_key")?,
            engine_version: text("engine_version")?,
            status,
            schedule,
            makespan: json.get("makespan").and_then(Json::as_f64),
            peaks,
            valid: json.get("valid").and_then(Json::as_bool),
            validation_errors: json
                .get("validation_errors")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|e| e.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
            nodes: json.get("nodes").and_then(json_to_u64).unwrap_or(0),
            wall_time_ms: json
                .get("wall_time_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            threads: json.get("threads").and_then(Json::as_usize).unwrap_or(1),
            seed: json.get("seed").and_then(json_to_u64),
            deadline_ms: json.get("deadline_ms").and_then(json_to_u64),
            members: match json.get("portfolio") {
                None | Some(Json::Null) => Vec::new(),
                Some(doc) => doc
                    .as_arr()
                    .ok_or_else(|| ServiceError::BadRequest("`portfolio` must be an array".into()))?
                    .iter()
                    .map(MemberOutcome::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            winner: json
                .get("winner")
                .and_then(Json::as_str)
                .map(str::to_string),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let json = Json::parse(text).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        SolveReport::from_json(&json)
    }
}

/// Errors raised by the service surface.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request document is malformed or inconsistent.
    BadRequest(String),
    /// The requested solver is not registered; the payload lists the keys
    /// that are.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every registered key.
        known: Vec<&'static str>,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            ServiceError::UnknownSolver { name, known } => {
                write!(f, "unknown solver `{name}` (known: {})", known.join(", "))
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Solves a request on a dedicated engine (pool spun up for this one call).
/// Services handling many requests should create one [`Engine`] and use
/// [`solve_with_engine`] to amortise the pool startup.
pub fn solve_request(request: &SolveRequest) -> Result<SolveReport, ServiceError> {
    let engine = Engine::new(
        solver_registry(),
        EngineConfig {
            // `0` resolves to all cores inside the pool, per the request
            // contract.
            parallel: ParallelConfig::with_threads(request.threads),
            limits: request.limits,
        },
    );
    solve_with_engine(&engine, request)
}

/// Solves a request on an existing engine session. The request's limits
/// override the engine's defaults; the engine's pool and registry are used
/// as-is.
pub fn solve_with_engine(
    engine: &Engine,
    request: &SolveRequest,
) -> Result<SolveReport, ServiceError> {
    let entry =
        engine
            .registry()
            .entry(&request.solver)
            .ok_or_else(|| ServiceError::UnknownSolver {
                name: request.solver.clone(),
                known: engine.registry().keys(),
            })?;
    let info = entry.info;
    let seed = request.seed.unwrap_or(0);
    let mut ctx = engine.ctx();
    ctx.limits = request.limits;
    ctx.cancel.deadline = request.deadline_ms.map(Deadline::after_millis);

    // The `portfolio` key is dispatched through `Portfolio::solve_race`
    // directly (not through the registry factory) so the request can select
    // the member set and the report can echo the per-member breakdown.
    let started = std::time::Instant::now();
    let (solver_name, outcome, members, winner) = if info.key == "portfolio" {
        let portfolio = Portfolio::from_registry(engine.registry(), &request.solvers, seed)
            .map_err(|key| ServiceError::UnknownSolver {
                name: key,
                known: engine.registry().keys(),
            })?;
        let race = portfolio.solve_race(&request.graph, &request.platform, &ctx);
        let members: Vec<MemberOutcome> = race.members.iter().map(MemberOutcome::from).collect();
        let winner = race.winner_key().map(str::to_string);
        ("Portfolio".to_string(), race.outcome, members, winner)
    } else {
        let solver = entry.build(seed);
        let outcome = solver.solve(&request.graph, &request.platform, &ctx);
        (solver.name().to_string(), outcome, Vec::new(), None)
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;

    // Memory-oblivious baselines schedule on the unbounded platform by
    // contract, so their schedules are validated against it; everything
    // else must honour the request's bounds.
    let validation_platform = if info.memory_aware {
        request.platform.clone()
    } else {
        request.platform.unbounded()
    };
    let validation = outcome
        .schedule
        .as_ref()
        .map(|s| validate(&request.graph, &validation_platform, s));
    Ok(SolveReport {
        solver: solver_name,
        solver_key: info.key.to_string(),
        engine_version: env!("CARGO_PKG_VERSION").to_string(),
        status: outcome.status,
        makespan: outcome.makespan(),
        peaks: validation.as_ref().map(|v| v.peaks),
        valid: validation.as_ref().map(|v| v.is_valid()),
        validation_errors: validation
            .as_ref()
            .map(|v| v.errors.iter().map(|e| e.to_string()).collect())
            .unwrap_or_default(),
        schedule: outcome.schedule,
        nodes: outcome.nodes,
        wall_time_ms,
        threads: engine.threads(),
        seed: request.seed,
        deadline_ms: request.deadline_ms,
        members,
        winner,
        error: outcome.error,
    })
}

/// A ready-made example request (the paper's `D_ex` toy DAG on a 1+1
/// platform with 5 memory units per side), used by `schedule
/// --print-request` and the docs.
pub fn example_request() -> SolveRequest {
    let (graph, _) = mals_gen::dex();
    SolveRequest::new(graph, Platform::single_pair(5.0, 5.0), "memheft")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_roundtrip() {
        let mut request = example_request();
        request.threads = 4;
        request.seed = Some(99);
        request.limits = SolveLimits::with_node_limit(1234);
        request.solvers = vec!["memheft".into(), "memminmin".into()];
        request.deadline_ms = Some(750);
        let json = request.to_json();
        assert_eq!(SolveRequest::from_json(&json).unwrap(), request);
        // Through text (pretty and compact).
        assert_eq!(SolveRequest::parse(&json.to_pretty()).unwrap(), request);
        assert_eq!(SolveRequest::parse(&json.to_compact()).unwrap(), request);
    }

    #[test]
    fn minimal_request_document_uses_defaults() {
        let text = r#"{
            "solver": "memminmin",
            "graph": {"tasks": [{"name": "a", "blue": 1, "red": 1}], "edges": []},
            "platform": {"blue_procs": 1, "red_procs": 1, "mem_blue": 5, "mem_red": 5}
        }"#;
        let request = SolveRequest::parse(text).unwrap();
        assert_eq!(request.threads, 1);
        assert_eq!(request.seed, None);
        assert_eq!(request.limits, SolveLimits::default());
        let report = solve_request(&request).unwrap();
        assert_eq!(report.solver, "MemMinMin");
        assert_eq!(report.valid, Some(true));
    }

    #[test]
    fn heuristic_and_exact_share_the_code_path() {
        let request = example_request();
        for (key, status) in [
            ("memheft", OptimalityStatus::Heuristic),
            ("bb", OptimalityStatus::Optimal),
            ("milp", OptimalityStatus::Optimal),
        ] {
            let report = solve_request(&SolveRequest {
                solver: key.into(),
                ..request.clone()
            })
            .unwrap();
            assert_eq!(report.status, status, "{key}");
            assert_eq!(report.solver_key, key);
            assert_eq!(report.valid, Some(true), "{key}");
            assert!(report.validation_errors.is_empty(), "{key}");
            assert!(report.makespan.unwrap() >= 6.0 - 1e-9, "{key}");
            assert!(report.peaks.unwrap().max() <= 5.0 + 1e-9, "{key}");
            assert!(report.wall_time_ms >= 0.0);
            assert_eq!(report.engine_version, env!("CARGO_PKG_VERSION"));
        }
    }

    #[test]
    fn memory_oblivious_solver_validates_against_unbounded_platform() {
        let mut request = example_request();
        request.solver = "heft".into();
        request.platform = Platform::single_pair(1.0, 1.0); // hopeless bounds
        let report = solve_request(&request).unwrap();
        // HEFT ignores the bounds and its schedule is valid on the
        // unbounded platform it actually targets.
        assert_eq!(report.valid, Some(true));
        assert!(report.peaks.unwrap().max() > 1.0);
    }

    #[test]
    fn infeasible_request_reports_without_schedule() {
        let mut request = example_request();
        request.platform = Platform::single_pair(2.0, 2.0);
        request.solver = "bb".into();
        let report = solve_request(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::Infeasible);
        assert!(report.schedule.is_none());
        assert_eq!(report.valid, None);
        // The report still round-trips.
        let back = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = solve_request(&example_request()).unwrap();
        let json = report.to_json();
        let back = SolveReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // The embedded schedule re-validates independently.
        let request = example_request();
        let verdict = validate(
            &request.graph,
            &request.platform,
            back.schedule.as_ref().unwrap(),
        );
        assert!(verdict.is_valid());
    }

    #[test]
    fn unknown_solver_is_reported_with_known_keys() {
        let mut request = example_request();
        request.solver = "cplex".into();
        let err = solve_request(&request).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSolver { .. }));
        assert!(err.to_string().contains("memheft"));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(SolveRequest::parse("{").is_err());
        assert!(SolveRequest::parse("{}").is_err());
        let no_platform = r#"{"solver": "memheft", "graph": {"tasks": [], "edges": []}}"#;
        let err = SolveRequest::parse(no_platform).unwrap_err();
        assert!(err.to_string().contains("platform"));
    }

    #[test]
    fn absurd_thread_counts_are_named_errors_not_spawn_aborts() {
        let mut request = example_request();
        request.threads = 500_000;
        let err = SolveRequest::from_json(&request.to_json()).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
        // `0` (= all cores) is always allowed and resolves in the pool.
        request.threads = 0;
        let reparsed = SolveRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(reparsed.threads, 0);
        let report = solve_request(&reparsed).unwrap();
        assert_eq!(report.valid, Some(true));
        assert!(report.threads >= 1); // 0 resolved to the actual core count
    }

    #[test]
    fn portfolio_request_reports_member_breakdown() {
        let mut request = example_request();
        request.solver = "portfolio".into();
        let report = solve_request(&request).unwrap();
        assert_eq!(report.solver, "Portfolio");
        assert_eq!(report.solver_key, "portfolio");
        assert_eq!(report.status, OptimalityStatus::Heuristic);
        assert_eq!(report.valid, Some(true));
        assert_eq!(report.members.len(), mals_sched::DEFAULT_MEMBERS.len());
        let winner = report
            .winner
            .as_deref()
            .expect("dex at bound 5 is feasible");
        let winning = report.members.iter().find(|m| m.key == winner).unwrap();
        assert_eq!(winning.makespan, report.makespan);
        // The member breakdown and deadline echo survive the JSON round-trip.
        let back = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);

        // A custom member set may mix heuristics and exact backends; the
        // aggregate inherits the winner's status (`bb` first so a makespan
        // tie resolves to the exact proof).
        request.solvers = vec!["bb".into(), "memheft".into()];
        let report = solve_request(&request).unwrap();
        assert_eq!(report.members.len(), 2);
        assert_eq!(report.status, OptimalityStatus::Optimal);
        assert_eq!(report.makespan, Some(6.0));

        // Unknown member keys are named errors.
        request.solvers = vec!["memheft".into(), "cplex".into()];
        let err = solve_request(&request).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSolver { .. }));
    }

    #[test]
    fn expired_deadline_yields_limit_hit_with_echo() {
        let mut request = example_request();
        request.solver = "portfolio".into();
        request.deadline_ms = Some(0);
        let report = solve_request(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report.schedule.is_none());
        assert_eq!(report.deadline_ms, Some(0));
        assert!(report.members.iter().all(|m| m.cancelled));
        assert_eq!(report.winner, None);
        let back = SolveReport::parse(&report.to_json().to_compact()).unwrap();
        assert_eq!(back, report);
        // Ordinary solvers honour the deadline through the same field.
        request.solver = "memheft".into();
        let report = solve_request(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report.members.is_empty());
    }

    #[test]
    fn engine_reuse_matches_one_shot_solves() {
        let engine = mals_exact::engine(EngineConfig::sequential());
        let request = example_request();
        let one_shot = solve_request(&request).unwrap();
        for _ in 0..3 {
            let reused = solve_with_engine(&engine, &request).unwrap();
            assert_eq!(reused.schedule, one_shot.schedule);
            assert_eq!(reused.status, one_shot.status);
        }
    }
}
