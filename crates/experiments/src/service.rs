//! The embeddable service surface: `SolveRequest` in, `SolveReport` out.
//!
//! This is the library-first "endpoint" shape of the workspace: a request
//! names a solver (a registry key of `mals_exact::solver_registry()`),
//! carries the task graph, the platform, the thread budget and the solve
//! limits, and a [`Service`] session turns it into a provenance-stamped
//! report — the schedule, its makespan and memory peaks, an *independent*
//! validation verdict from `mals_sim::validate`, the optimality status, the
//! wall time and the solver/engine identity. Both types round-trip through
//! JSON ([`SolveRequest::to_json`] / [`SolveRequest::from_json`], same for
//! the report), and the `schedule` binary and the `malsd` daemon wire the
//! same session to a file / stdin / TCP socket, so any process that can
//! write JSON can use every solver in the registry through one code path.
//!
//! The JSON wire format is **versioned**: both documents carry a top-level
//! `"v"` field ([`PROTOCOL_VERSION`]); an absent field means version 1
//! (back-compat with pre-versioning documents), an unknown version is a
//! structured [`ServiceError::UnsupportedVersion`] error. Failures are
//! machine-readable: every [`ServiceError`] maps onto an [`ErrorCode`]
//! (`bad_request`, `unknown_solver`, `queue_full`, `deadline_exceeded`,
//! `internal`), carried as [`CodedError`] objects in the report's `errors`
//! array and in the daemon's reject frames.

use mals_dag::{serialize, TaskGraph};
use mals_exact::solver_registry;
use mals_platform::Platform;
use mals_sched::{
    Engine, EngineConfig, MemberReport, OptimalityStatus, Portfolio, SolveLimits, Solver,
};
use mals_sim::{
    peaks_from_json, peaks_to_json, schedule_from_json, schedule_to_json, validate, MemoryPeaks,
    Schedule,
};
use mals_util::{Deadline, Json, ParallelConfig};

/// Version of the JSON wire protocol spoken by [`SolveRequest`] /
/// [`SolveReport`] and the `malsd` daemon. Documents without a `"v"` field
/// are interpreted as version 1.
pub const PROTOCOL_VERSION: u64 = 1;

/// Encodes a `u64` losslessly: as a JSON number while `f64` is exact
/// (≤ 2⁵³), as a decimal string beyond (seeds are arbitrary 64-bit values).
fn u64_to_json(x: u64) -> Json {
    if x <= 9_007_199_254_740_992 {
        Json::Num(x as f64)
    } else {
        Json::Str(x.to_string())
    }
}

/// Parses either encoding produced by [`u64_to_json`].
fn json_to_u64(value: &Json) -> Option<u64> {
    value
        .as_u64()
        .or_else(|| value.as_str().and_then(|s| s.parse().ok()))
}

/// Checks the top-level `"v"` field of a wire document: absent (or null)
/// means version 1, anything other than [`PROTOCOL_VERSION`] is a
/// structured error.
pub fn check_version(json: &Json) -> Result<(), ServiceError> {
    match json.get("v") {
        None | Some(Json::Null) => Ok(()),
        Some(value) => match value.as_u64() {
            Some(PROTOCOL_VERSION) => Ok(()),
            _ => Err(ServiceError::UnsupportedVersion {
                got: value.to_compact(),
            }),
        },
    }
}

/// Largest worker-thread count a JSON request may ask for (`0` = all
/// cores is always allowed); guards the endpoint against thread-spawn
/// exhaustion from untrusted documents.
pub const MAX_REQUEST_THREADS: usize = 512;

/// A solve request: everything needed to reproduce one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The task graph to schedule.
    pub graph: TaskGraph,
    /// The platform to schedule on.
    pub platform: Platform,
    /// Registry key of the solver (`"memheft"`, `"milp"`, …).
    pub solver: String,
    /// Worker threads for within-schedule parallelism (`0` = all cores;
    /// results are bit-identical for every setting).
    pub threads: usize,
    /// Budgets for exact solvers.
    pub limits: SolveLimits,
    /// Seed for randomised solvers (`None` = 0); echoed in the report.
    pub seed: Option<u64>,
    /// Member keys when `solver` is `"portfolio"` (empty: the default
    /// member set); ignored for ordinary solvers.
    pub solvers: Vec<String>,
    /// Wall-clock deadline for the solve in milliseconds (`None`: no
    /// deadline). Every solver polls it cooperatively; a portfolio returns
    /// the best member result available when it passes. The daemon stamps
    /// the deadline at *admission*, so queueing delay counts against it.
    pub deadline_ms: Option<u64>,
}

impl SolveRequest {
    /// A sequential request with default limits and no seed.
    pub fn new(graph: TaskGraph, platform: Platform, solver: impl Into<String>) -> Self {
        SolveRequest {
            graph,
            platform,
            solver: solver.into(),
            threads: 1,
            limits: SolveLimits::default(),
            seed: None,
            solvers: Vec::new(),
            deadline_ms: None,
        }
    }

    /// Serialises the request (wire version [`PROTOCOL_VERSION`]).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v".to_string(), Json::Num(PROTOCOL_VERSION as f64)),
            ("solver".to_string(), Json::str(&self.solver)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
        ];
        if let Some(seed) = self.seed {
            pairs.push(("seed".into(), u64_to_json(seed)));
        }
        if !self.solvers.is_empty() {
            pairs.push((
                "solvers".into(),
                Json::Arr(self.solvers.iter().map(Json::str).collect()),
            ));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), u64_to_json(ms)));
        }
        pairs.push((
            "limits".into(),
            Json::obj([
                ("node_limit", u64_to_json(self.limits.node_limit)),
                (
                    "lp_iteration_limit",
                    u64_to_json(self.limits.lp_iteration_limit),
                ),
            ]),
        ));
        pairs.push(("graph".into(), serialize::to_json(&self.graph)));
        pairs.push(("platform".into(), self.platform.to_json()));
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`SolveRequest::to_json`]. `v`,
    /// `threads`, `limits` and `seed` are optional (defaults: version 1,
    /// 1 thread, default limits, no seed); `solver`, `graph` and `platform`
    /// are required.
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        check_version(json)?;
        let solver = json
            .get("solver")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::BadRequest("missing `solver` name".into()))?
            .to_string();
        let threads = match json.get("threads") {
            None => 1,
            Some(value) => value.as_usize().ok_or_else(|| {
                ServiceError::BadRequest("`threads` must be a non-negative integer".into())
            })?,
        };
        // The pool spawns one OS thread per requested worker; an absurd
        // count from an untrusted document must fail as a named error, not
        // as a thread-spawn abort.
        if threads > MAX_REQUEST_THREADS {
            return Err(ServiceError::BadRequest(format!(
                "`threads` must be at most {MAX_REQUEST_THREADS} (0 = all cores)"
            )));
        }
        let seed = match json.get("seed") {
            None | Some(Json::Null) => None,
            Some(value) => Some(json_to_u64(value).ok_or_else(|| {
                ServiceError::BadRequest("`seed` must be a non-negative integer".into())
            })?),
        };
        let solvers = match json.get("solvers") {
            None | Some(Json::Null) => Vec::new(),
            Some(value) => value
                .as_arr()
                .ok_or_else(|| {
                    ServiceError::BadRequest("`solvers` must be an array of registry keys".into())
                })?
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        ServiceError::BadRequest("`solvers` entries must be strings".into())
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let deadline_ms = match json.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(value) => Some(json_to_u64(value).ok_or_else(|| {
                ServiceError::BadRequest("`deadline_ms` must be a non-negative integer".into())
            })?),
        };
        let mut limits = SolveLimits::default();
        if let Some(doc) = json.get("limits") {
            if let Some(n) = doc.get("node_limit") {
                limits.node_limit = json_to_u64(n).ok_or_else(|| {
                    ServiceError::BadRequest("`limits.node_limit` must be an integer".into())
                })?;
            }
            if let Some(n) = doc.get("lp_iteration_limit") {
                limits.lp_iteration_limit = json_to_u64(n).ok_or_else(|| {
                    ServiceError::BadRequest(
                        "`limits.lp_iteration_limit` must be an integer".into(),
                    )
                })?;
            }
        }
        let graph = json
            .get("graph")
            .ok_or_else(|| ServiceError::BadRequest("missing `graph`".into()))
            .and_then(|doc| {
                serialize::from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))
            })?;
        let platform = json
            .get("platform")
            .ok_or_else(|| ServiceError::BadRequest("missing `platform`".into()))
            .and_then(|doc| {
                Platform::from_json(doc)
                    .map_err(|e| ServiceError::BadRequest(format!("bad platform: {e}")))
            })?;
        Ok(SolveRequest {
            graph,
            platform,
            solver,
            threads,
            limits,
            seed,
            solvers,
            deadline_ms,
        })
    }

    /// Parses a request from JSON text.
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let json = Json::parse(text).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        SolveRequest::from_json(&json)
    }
}

/// One portfolio member's outcome, echoed in a portfolio [`SolveReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberOutcome {
    /// Registry key of the member.
    pub key: String,
    /// Display name of the member.
    pub name: String,
    /// The member's own claimed status.
    pub status: OptimalityStatus,
    /// Makespan of the member's schedule, if it produced one.
    pub makespan: Option<f64>,
    /// Search effort the member spent.
    pub nodes: u64,
    /// Wall time the member ran for, in milliseconds.
    pub wall_time_ms: u64,
    /// `true` when the member was cooperatively cancelled.
    pub cancelled: bool,
    /// A contained panic, solver error, or validation exclusion.
    pub error: Option<String>,
}

impl From<&MemberReport> for MemberOutcome {
    fn from(member: &MemberReport) -> Self {
        MemberOutcome {
            key: member.key.clone(),
            name: member.name.clone(),
            status: member.status,
            makespan: member.makespan,
            nodes: member.nodes,
            wall_time_ms: member.wall_time_ms,
            cancelled: member.cancelled,
            error: member.error.clone(),
        }
    }
}

impl MemberOutcome {
    /// Serialises the member outcome.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("key".to_string(), Json::str(&self.key)),
            ("name".to_string(), Json::str(&self.name)),
            ("status".to_string(), Json::str(self.status.as_str())),
            (
                "makespan".to_string(),
                self.makespan.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("nodes".to_string(), u64_to_json(self.nodes)),
            ("wall_time_ms".to_string(), u64_to_json(self.wall_time_ms)),
            ("cancelled".to_string(), Json::Bool(self.cancelled)),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error".into(), Json::str(error)));
        }
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`MemberOutcome::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        let text = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServiceError::BadRequest(format!("member missing `{key}`")))
        };
        Ok(MemberOutcome {
            key: text("key")?,
            name: text("name")?,
            status: OptimalityStatus::parse(&text("status")?)
                .ok_or_else(|| ServiceError::BadRequest("unknown member `status`".into()))?,
            makespan: json.get("makespan").and_then(Json::as_f64),
            nodes: json.get("nodes").and_then(json_to_u64).unwrap_or(0),
            wall_time_ms: json.get("wall_time_ms").and_then(json_to_u64).unwrap_or(0),
            cancelled: json
                .get("cancelled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// The provenance-stamped result of a [`SolveRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Display name of the solver that ran (`"MemHEFT"`, `"Optimal(MILP)"`).
    pub solver: String,
    /// Registry key it was resolved from.
    pub solver_key: String,
    /// Version of the engine (the workspace crate version).
    pub engine_version: String,
    /// What the solve proved.
    pub status: OptimalityStatus,
    /// The schedule, when the status carries one.
    pub schedule: Option<Schedule>,
    /// Its makespan.
    pub makespan: Option<f64>,
    /// Its memory peaks, replayed by the independent validator.
    pub peaks: Option<MemoryPeaks>,
    /// Verdict of `mals_sim::validate` (memory-oblivious baselines are
    /// checked against the unbounded platform — their declared contract).
    pub valid: Option<bool>,
    /// Rendered validation errors (empty for a valid schedule).
    pub validation_errors: Vec<String>,
    /// Machine-readable errors: why a request was rejected (bad request,
    /// unknown solver), why a solve fell short (deadline exceeded), or a
    /// contained internal failure. Empty for clean solves.
    pub errors: Vec<CodedError>,
    /// Search effort (0 for heuristics).
    pub nodes: u64,
    /// Wall-clock solve time in milliseconds.
    pub wall_time_ms: f64,
    /// Worker threads used.
    pub threads: usize,
    /// The request's seed, echoed for provenance.
    pub seed: Option<u64>,
    /// The request's deadline, echoed for provenance.
    pub deadline_ms: Option<u64>,
    /// Per-member outcomes of a portfolio race (empty for ordinary solves).
    pub members: Vec<MemberOutcome>,
    /// Registry key of the winning portfolio member, if any.
    pub winner: Option<String>,
    /// Why the instance was rejected, when it never reached the solver
    /// (human-readable twin of the first [`CodedError`] in `errors`).
    pub error: Option<String>,
}

impl SolveReport {
    /// A rejection report: the request never reached a solver. Status is
    /// [`OptimalityStatus::LimitHit`] (nothing was proven), the coded cause
    /// is in [`SolveReport::errors`] and its rendering in
    /// [`SolveReport::error`].
    pub fn rejection(solver_key: &str, error: &ServiceError) -> Self {
        SolveReport {
            solver: solver_key.to_string(),
            solver_key: solver_key.to_string(),
            engine_version: env!("CARGO_PKG_VERSION").to_string(),
            status: OptimalityStatus::LimitHit,
            schedule: None,
            makespan: None,
            peaks: None,
            valid: None,
            validation_errors: Vec::new(),
            errors: vec![CodedError::from(error)],
            nodes: 0,
            wall_time_ms: 0.0,
            threads: 0,
            seed: None,
            deadline_ms: None,
            members: Vec::new(),
            winner: None,
            error: Some(error.to_string()),
        }
    }

    /// Serialises the report (the schedule is embedded, so the report is
    /// self-contained and can be re-validated downstream).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v".to_string(), Json::Num(PROTOCOL_VERSION as f64)),
            ("solver".to_string(), Json::str(&self.solver)),
            ("solver_key".to_string(), Json::str(&self.solver_key)),
            (
                "engine_version".to_string(),
                Json::str(&self.engine_version),
            ),
            ("status".to_string(), Json::str(self.status.as_str())),
            (
                "makespan".to_string(),
                self.makespan.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "peaks".to_string(),
                self.peaks.as_ref().map(peaks_to_json).unwrap_or(Json::Null),
            ),
            (
                "valid".to_string(),
                self.valid.map(Json::Bool).unwrap_or(Json::Null),
            ),
            (
                "validation_errors".to_string(),
                Json::Arr(self.validation_errors.iter().map(Json::str).collect()),
            ),
            ("nodes".to_string(), u64_to_json(self.nodes)),
            ("wall_time_ms".to_string(), Json::Num(self.wall_time_ms)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
        ];
        if !self.errors.is_empty() {
            pairs.push((
                "errors".into(),
                Json::Arr(self.errors.iter().map(CodedError::to_json).collect()),
            ));
        }
        if let Some(seed) = self.seed {
            pairs.push(("seed".into(), u64_to_json(seed)));
        }
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), u64_to_json(ms)));
        }
        if !self.members.is_empty() {
            pairs.push((
                "portfolio".into(),
                Json::Arr(self.members.iter().map(MemberOutcome::to_json).collect()),
            ));
        }
        if let Some(winner) = &self.winner {
            pairs.push(("winner".into(), Json::str(winner)));
        }
        if let Some(error) = &self.error {
            pairs.push(("error".into(), Json::str(error)));
        }
        if let Some(schedule) = &self.schedule {
            pairs.push(("schedule".into(), schedule_to_json(schedule)));
        }
        Json::Obj(pairs)
    }

    /// Parses the shape produced by [`SolveReport::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        check_version(json)?;
        let text = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServiceError::BadRequest(format!("missing `{key}`")))
        };
        let status = OptimalityStatus::parse(&text("status")?)
            .ok_or_else(|| ServiceError::BadRequest("unknown `status`".into()))?;
        let schedule = match json.get("schedule") {
            None | Some(Json::Null) => None,
            Some(doc) => {
                Some(schedule_from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))?)
            }
        };
        let peaks = match json.get("peaks") {
            None | Some(Json::Null) => None,
            Some(doc) => {
                Some(peaks_from_json(doc).map_err(|e| ServiceError::BadRequest(e.to_string()))?)
            }
        };
        Ok(SolveReport {
            solver: text("solver")?,
            solver_key: text("solver_key")?,
            engine_version: text("engine_version")?,
            status,
            schedule,
            makespan: json.get("makespan").and_then(Json::as_f64),
            peaks,
            valid: json.get("valid").and_then(Json::as_bool),
            validation_errors: json
                .get("validation_errors")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|e| e.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
            errors: match json.get("errors") {
                None | Some(Json::Null) => Vec::new(),
                Some(doc) => doc
                    .as_arr()
                    .ok_or_else(|| ServiceError::BadRequest("`errors` must be an array".into()))?
                    .iter()
                    .map(CodedError::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            nodes: json.get("nodes").and_then(json_to_u64).unwrap_or(0),
            wall_time_ms: json
                .get("wall_time_ms")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            threads: json.get("threads").and_then(Json::as_usize).unwrap_or(1),
            seed: json.get("seed").and_then(json_to_u64),
            deadline_ms: json.get("deadline_ms").and_then(json_to_u64),
            members: match json.get("portfolio") {
                None | Some(Json::Null) => Vec::new(),
                Some(doc) => doc
                    .as_arr()
                    .ok_or_else(|| ServiceError::BadRequest("`portfolio` must be an array".into()))?
                    .iter()
                    .map(MemberOutcome::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            },
            winner: json
                .get("winner")
                .and_then(Json::as_str)
                .map(str::to_string),
            error: json.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<Self, ServiceError> {
        let json = Json::parse(text).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        SolveReport::from_json(&json)
    }
}

/// Machine-readable failure categories of the service surface and the
/// daemon's wire protocol. Stable strings; clients switch on these instead
/// of parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request document is malformed, inconsistent, or speaks an
    /// unsupported protocol version.
    BadRequest,
    /// The requested solver key is not in the registry.
    UnknownSolver,
    /// The daemon's bounded request queue is full (or the daemon is
    /// draining for shutdown): admission refused, try again later.
    QueueFull,
    /// The request's deadline passed before a schedule was found.
    DeadlineExceeded,
    /// A contained internal failure (solver error, panic, I/O).
    Internal,
}

impl ErrorCode {
    /// Stable lower-case identifier used on the wire.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownSolver => "unknown_solver",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses [`ErrorCode::as_str`] output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_solver" => ErrorCode::UnknownSolver,
            "queue_full" => ErrorCode::QueueFull,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A machine-readable error: a stable [`ErrorCode`] plus a human-readable
/// message. Carried in [`SolveReport::errors`] and in the daemon's reject
/// frames as `{"code": "...", "message": "..."}`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedError {
    /// The stable category.
    pub code: ErrorCode,
    /// Human-readable detail (free-form; never parse this).
    pub message: String,
}

impl CodedError {
    /// A coded error from its parts.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        CodedError {
            code,
            message: message.into(),
        }
    }

    /// Serialises as `{"code": ..., "message": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::str(self.code.as_str())),
            ("message", Json::str(&self.message)),
        ])
    }

    /// Parses the shape produced by [`CodedError::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, ServiceError> {
        let code = json
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse)
            .ok_or_else(|| ServiceError::BadRequest("error entry missing a known `code`".into()))?;
        Ok(CodedError {
            code,
            message: json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        })
    }
}

impl std::fmt::Display for CodedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl From<&ServiceError> for CodedError {
    fn from(error: &ServiceError) -> Self {
        CodedError {
            code: error.code(),
            message: error.to_string(),
        }
    }
}

/// Errors raised by the service surface. Every variant maps onto a stable
/// [`ErrorCode`] via [`ServiceError::code`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request document is malformed or inconsistent.
    BadRequest(String),
    /// The document declares a wire-protocol version this engine does not
    /// speak. The payload is the rendered `"v"` value.
    UnsupportedVersion {
        /// The rendered version value that failed to match.
        got: String,
    },
    /// The requested solver is not registered; the payload lists the keys
    /// that are.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every registered key.
        known: Vec<&'static str>,
    },
    /// The daemon's bounded queue rejected the request (admission control).
    QueueFull {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The daemon is draining for shutdown and refuses new work.
    ShuttingDown,
    /// The request's deadline passed before any schedule was found.
    DeadlineExceeded,
    /// A contained internal failure.
    Internal(String),
}

impl ServiceError {
    /// The stable machine-readable category of this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServiceError::BadRequest(_) | ServiceError::UnsupportedVersion { .. } => {
                ErrorCode::BadRequest
            }
            ServiceError::UnknownSolver { .. } => ErrorCode::UnknownSolver,
            // Shutdown refusal is admission control too: the client-visible
            // contract ("try again later, possibly elsewhere") is the same.
            ServiceError::QueueFull { .. } | ServiceError::ShuttingDown => ErrorCode::QueueFull,
            ServiceError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServiceError::Internal(_) => ErrorCode::Internal,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(reason) => write!(f, "bad request: {reason}"),
            ServiceError::UnsupportedVersion { got } => write!(
                f,
                "unsupported protocol version {got} (this engine speaks v{PROTOCOL_VERSION})"
            ),
            ServiceError::UnknownSolver { name, known } => {
                write!(f, "unknown solver `{name}` (known: {})", known.join(", "))
            }
            ServiceError::QueueFull { capacity } => {
                write!(
                    f,
                    "request queue full ({capacity} pending); try again later"
                )
            }
            ServiceError::ShuttingDown => write!(f, "daemon is shutting down; refusing new work"),
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline passed before a schedule was found")
            }
            ServiceError::Internal(reason) => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A window of prepared solves: one request plus its admission-stamped
/// deadline (the daemon stamps [`Deadline`]s when requests are *queued*, so
/// time spent waiting counts against the budget).
pub type PreparedRequest<'a> = (&'a SolveRequest, Option<Deadline>);

/// Cache of instantiated solvers, keyed by `(registry key, seed)` — the
/// cross-request batch-formation machinery: one solver instance serves
/// every request in a drained queue window that names the same solver.
type SolverCache = Vec<((String, u64), Box<dyn Solver>)>;

/// A service session: owns the [`Engine`] (registry + worker pool + default
/// limits) and turns [`SolveRequest`]s into [`SolveReport`]s.
///
/// Create one `Service` per process (or per daemon) and call
/// [`Service::handle`] for every request — the worker pool is spawned once
/// and amortised across the session, which is what the
/// `engine/batch-solve-16x12-t2` bench quantifies (~7× over per-solve
/// setup). The request's `threads` field is honoured only by
/// [`Service::once`]; a long-lived session's pool is fixed at construction.
pub struct Service {
    engine: Engine,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("engine", &self.engine)
            .finish()
    }
}

impl Service {
    /// A session over the full solver registry (heuristics + exact
    /// backends) with the given engine configuration.
    pub fn new(config: EngineConfig) -> Self {
        Service {
            engine: Engine::new(solver_registry(), config),
        }
    }

    /// A session around an existing engine (custom registry, shared pool).
    pub fn with_engine(engine: Engine) -> Self {
        Service { engine }
    }

    /// A session sized to one request: pool threads from the request's
    /// `threads` field (`0` = all cores), default limits from its `limits`.
    /// For anything beyond a one-shot, create a `Service` once and reuse it.
    pub fn for_request(request: &SolveRequest) -> Self {
        Service::new(EngineConfig {
            parallel: ParallelConfig::with_threads(request.threads),
            limits: request.limits,
        })
    }

    /// Handles a single request on a throwaway [`Service::for_request`]
    /// session (pool spun up for this one call).
    pub fn once(request: &SolveRequest) -> SolveReport {
        Service::for_request(request).handle(request)
    }

    /// The engine backing this session.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Handles one request; failures become *rejection reports* (status
    /// `limit_hit`, coded cause in [`SolveReport::errors`]) so the caller
    /// always has one report per request.
    pub fn handle(&self, request: &SolveRequest) -> SolveReport {
        self.handle_at(request, request.deadline_ms.map(Deadline::after_millis))
    }

    /// [`Service::handle`] with an explicit absolute deadline (overriding
    /// the request's relative `deadline_ms`). The daemon stamps deadlines
    /// at admission and passes them here, so queueing delay is on the
    /// clock.
    pub fn handle_at(&self, request: &SolveRequest, deadline: Option<Deadline>) -> SolveReport {
        let mut cache = SolverCache::new();
        match solve_on_engine(&self.engine, request, deadline, &mut cache) {
            Ok(report) => report,
            Err(error) => SolveReport::rejection(&request.solver, &error),
        }
    }

    /// Handles one request, surfacing rejections as `Err` instead of a
    /// rejection report.
    pub fn try_handle(&self, request: &SolveRequest) -> Result<SolveReport, ServiceError> {
        let mut cache = SolverCache::new();
        solve_on_engine(
            &self.engine,
            request,
            request.deadline_ms.map(Deadline::after_millis),
            &mut cache,
        )
    }

    /// Handles a *window* of prepared requests back to back — the daemon's
    /// cross-request batch formation. Solver instances are built once per
    /// distinct `(solver, seed)` in the window and reused (the same
    /// amortisation as [`Engine::solve_batch`], but across requests that
    /// may mix solvers, platforms and deadlines). Reports come back in
    /// window order, one per request, rejections included.
    pub fn handle_window(&self, window: &[PreparedRequest<'_>]) -> Vec<SolveReport> {
        let mut cache = SolverCache::new();
        window
            .iter()
            .map(|(request, deadline)| {
                solve_on_engine(&self.engine, request, *deadline, &mut cache)
                    .unwrap_or_else(|error| SolveReport::rejection(&request.solver, &error))
            })
            .collect()
    }
}

/// The solve core shared by [`Service`] and the deprecated free functions:
/// resolves the solver (through `cache`, so a window of same-solver
/// requests builds it once), runs it under the engine's pool with the
/// prepared deadline, validates the schedule independently, and stamps the
/// report.
fn solve_on_engine(
    engine: &Engine,
    request: &SolveRequest,
    deadline: Option<Deadline>,
    cache: &mut SolverCache,
) -> Result<SolveReport, ServiceError> {
    let entry =
        engine
            .registry()
            .entry(&request.solver)
            .ok_or_else(|| ServiceError::UnknownSolver {
                name: request.solver.clone(),
                known: engine.registry().keys(),
            })?;
    let info = entry.info;
    let seed = request.seed.unwrap_or(0);
    let ctx = engine.ctx_with(Some(request.limits), deadline);

    // The `portfolio` key is dispatched through `Portfolio::solve_race`
    // directly (not through the registry factory) so the request can select
    // the member set and the report can echo the per-member breakdown.
    let started = std::time::Instant::now();
    let (solver_name, outcome, members, winner) = if info.key == "portfolio" {
        let portfolio = Portfolio::from_registry(engine.registry(), &request.solvers, seed)
            .map_err(|key| ServiceError::UnknownSolver {
                name: key,
                known: engine.registry().keys(),
            })?;
        let race = portfolio.solve_race(&request.graph, &request.platform, &ctx);
        let members: Vec<MemberOutcome> = race.members.iter().map(MemberOutcome::from).collect();
        let winner = race.winner_key().map(str::to_string);
        ("Portfolio".to_string(), race.outcome, members, winner)
    } else {
        let cache_key = (info.key.to_string(), seed);
        let solver = match cache.iter().position(|(k, _)| *k == cache_key) {
            Some(at) => &cache[at].1,
            None => {
                cache.push((cache_key, entry.build(seed)));
                &cache.last().expect("just pushed").1
            }
        };
        let outcome = solver.solve(&request.graph, &request.platform, &ctx);
        (solver.name().to_string(), outcome, Vec::new(), None)
    };
    let wall_time_ms = started.elapsed().as_secs_f64() * 1e3;

    // Machine-readable failure annotations: a deadline that expired with
    // nothing proven, and any instance-rejection the solver reported.
    let mut errors = Vec::new();
    if outcome.status == OptimalityStatus::LimitHit && deadline.is_some_and(|d| d.expired()) {
        errors.push(CodedError::new(
            ErrorCode::DeadlineExceeded,
            ServiceError::DeadlineExceeded.to_string(),
        ));
    }
    if let Some(cause) = &outcome.error {
        errors.push(CodedError::new(ErrorCode::Internal, cause.clone()));
    }

    // Memory-oblivious baselines schedule on the unbounded platform by
    // contract, so their schedules are validated against it; everything
    // else must honour the request's bounds.
    let validation_platform = if info.memory_aware {
        request.platform.clone()
    } else {
        request.platform.unbounded()
    };
    let validation = outcome
        .schedule
        .as_ref()
        .map(|s| validate(&request.graph, &validation_platform, s));
    Ok(SolveReport {
        solver: solver_name,
        solver_key: info.key.to_string(),
        engine_version: env!("CARGO_PKG_VERSION").to_string(),
        status: outcome.status,
        makespan: outcome.makespan(),
        peaks: validation.as_ref().map(|v| v.peaks),
        valid: validation.as_ref().map(|v| v.is_valid()),
        validation_errors: validation
            .as_ref()
            .map(|v| v.errors.iter().map(|e| e.to_string()).collect())
            .unwrap_or_default(),
        errors,
        schedule: outcome.schedule,
        nodes: outcome.nodes,
        wall_time_ms,
        threads: engine.threads(),
        seed: request.seed,
        deadline_ms: request.deadline_ms,
        members,
        winner,
        error: outcome.error,
    })
}

/// A ready-made example request (the paper's `D_ex` toy DAG on a 1+1
/// platform with 5 memory units per side), used by `schedule
/// --print-request` and the docs.
pub fn example_request() -> SolveRequest {
    let (graph, _) = mals_gen::dex();
    SolveRequest::new(graph, Platform::single_pair(5.0, 5.0), "memheft")
}

/// A generated request: a seeded LargeRandSet-shaped DAG of `tasks` tasks
/// with both memory bounds pinned at the memory-oblivious HEFT schedule's
/// own requirement — the `α = 1` campaign point, where MemHEFT is
/// guaranteed feasible. Used by `schedule --gen-tasks`, the `loadgen`
/// request mix, and the CI large-DAG smoke path.
pub fn generated_request(tasks: usize, seed: u64) -> SolveRequest {
    use mals_gen::{daggen, DaggenParams, WeightRanges};
    let mut rng = mals_util::Pcg64::new(seed);
    let graph = daggen::generate(
        &DaggenParams::large_rand().with_size(tasks),
        &WeightRanges::large_rand(),
        &mut rng,
    );
    let platform = Platform::single_pair(0.0, 0.0);
    let reference = crate::heft_reference(&graph, &platform);
    let bound = reference.heft_peaks.max();
    let platform = platform.with_memory_bounds(bound, bound);
    let mut request = SolveRequest::new(graph, platform, "memheft");
    // Echo the generation seed through the request so the report's
    // provenance names the instance it solved.
    request.seed = Some(seed);
    request
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `Service`-session equivalent of the old `solve_request` free
    /// function: a throwaway session sized to the request.
    fn solve(request: &SolveRequest) -> Result<SolveReport, ServiceError> {
        Service::for_request(request).try_handle(request)
    }

    #[test]
    fn request_json_roundtrip() {
        let mut request = example_request();
        request.threads = 4;
        request.seed = Some(99);
        request.limits = SolveLimits::with_node_limit(1234);
        request.solvers = vec!["memheft".into(), "memminmin".into()];
        request.deadline_ms = Some(750);
        let json = request.to_json();
        assert_eq!(SolveRequest::from_json(&json).unwrap(), request);
        // Through text (pretty and compact).
        assert_eq!(SolveRequest::parse(&json.to_pretty()).unwrap(), request);
        assert_eq!(SolveRequest::parse(&json.to_compact()).unwrap(), request);
    }

    #[test]
    fn wire_documents_carry_the_protocol_version() {
        let request = example_request();
        let json = request.to_json();
        assert_eq!(json.get("v").and_then(Json::as_u64), Some(PROTOCOL_VERSION));
        let report = solve(&request).unwrap();
        assert_eq!(
            report.to_json().get("v").and_then(Json::as_u64),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn absent_version_means_v1_and_unknown_versions_are_structured_errors() {
        // Pre-versioning documents (no "v") still parse.
        let mut json = example_request().to_json();
        {
            let Json::Obj(pairs) = &mut json else {
                unreachable!()
            };
            pairs.retain(|(k, _)| k != "v");
        }
        assert!(SolveRequest::from_json(&json).is_ok());
        // An unknown version is refused with the bad_request code, for
        // requests and reports alike.
        {
            let Json::Obj(pairs) = &mut json else {
                unreachable!()
            };
            pairs.insert(0, ("v".into(), Json::Num(2.0)));
        }
        let err = SolveRequest::from_json(&json).unwrap_err();
        assert!(matches!(err, ServiceError::UnsupportedVersion { .. }));
        assert_eq!(err.code(), ErrorCode::BadRequest);
        assert!(err.to_string().contains("v1"), "{err}");
        let report_json = Json::parse(r#"{"v": "vFuture"}"#).unwrap();
        assert!(matches!(
            SolveReport::from_json(&report_json),
            Err(ServiceError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn error_codes_round_trip_and_cover_every_service_error() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::UnknownSolver,
            ErrorCode::QueueFull,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("no_such_code"), None);
        let cases: Vec<(ServiceError, ErrorCode)> = vec![
            (ServiceError::BadRequest("x".into()), ErrorCode::BadRequest),
            (
                ServiceError::UnsupportedVersion { got: "9".into() },
                ErrorCode::BadRequest,
            ),
            (
                ServiceError::UnknownSolver {
                    name: "x".into(),
                    known: vec!["memheft"],
                },
                ErrorCode::UnknownSolver,
            ),
            (
                ServiceError::QueueFull { capacity: 4 },
                ErrorCode::QueueFull,
            ),
            (ServiceError::ShuttingDown, ErrorCode::QueueFull),
            (ServiceError::DeadlineExceeded, ErrorCode::DeadlineExceeded),
            (ServiceError::Internal("x".into()), ErrorCode::Internal),
        ];
        for (error, expected) in cases {
            assert_eq!(error.code(), expected, "{error}");
            let coded = CodedError::from(&error);
            let back = CodedError::from_json(&coded.to_json()).unwrap();
            assert_eq!(back, coded);
        }
        assert!(CodedError::from_json(&Json::parse(r#"{"code": "nope"}"#).unwrap()).is_err());
    }

    #[test]
    fn rejection_reports_carry_coded_errors_and_round_trip() {
        let mut request = example_request();
        request.solver = "cplex".into();
        let report = Service::for_request(&request).handle(&request);
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report.schedule.is_none());
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].code, ErrorCode::UnknownSolver);
        assert_eq!(report.solver_key, "cplex");
        assert!(report.error.as_deref().unwrap().contains("memheft"));
        let back = SolveReport::parse(&report.to_json().to_compact()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn minimal_request_document_uses_defaults() {
        let text = r#"{
            "solver": "memminmin",
            "graph": {"tasks": [{"name": "a", "blue": 1, "red": 1}], "edges": []},
            "platform": {"blue_procs": 1, "red_procs": 1, "mem_blue": 5, "mem_red": 5}
        }"#;
        let request = SolveRequest::parse(text).unwrap();
        assert_eq!(request.threads, 1);
        assert_eq!(request.seed, None);
        assert_eq!(request.limits, SolveLimits::default());
        let report = solve(&request).unwrap();
        assert_eq!(report.solver, "MemMinMin");
        assert_eq!(report.valid, Some(true));
        assert!(report.errors.is_empty());
    }

    #[test]
    fn heuristic_and_exact_share_the_code_path() {
        let request = example_request();
        for (key, status) in [
            ("memheft", OptimalityStatus::Heuristic),
            ("bb", OptimalityStatus::Optimal),
            ("milp", OptimalityStatus::Optimal),
        ] {
            let report = solve(&SolveRequest {
                solver: key.into(),
                ..request.clone()
            })
            .unwrap();
            assert_eq!(report.status, status, "{key}");
            assert_eq!(report.solver_key, key);
            assert_eq!(report.valid, Some(true), "{key}");
            assert!(report.validation_errors.is_empty(), "{key}");
            assert!(report.makespan.unwrap() >= 6.0 - 1e-9, "{key}");
            assert!(report.peaks.unwrap().max() <= 5.0 + 1e-9, "{key}");
            assert!(report.wall_time_ms >= 0.0);
            assert_eq!(report.engine_version, env!("CARGO_PKG_VERSION"));
        }
    }

    #[test]
    fn memory_oblivious_solver_validates_against_unbounded_platform() {
        let mut request = example_request();
        request.solver = "heft".into();
        request.platform = Platform::single_pair(1.0, 1.0); // hopeless bounds
        let report = solve(&request).unwrap();
        // HEFT ignores the bounds and its schedule is valid on the
        // unbounded platform it actually targets.
        assert_eq!(report.valid, Some(true));
        assert!(report.peaks.unwrap().max() > 1.0);
    }

    #[test]
    fn infeasible_request_reports_without_schedule() {
        let mut request = example_request();
        request.platform = Platform::single_pair(2.0, 2.0);
        request.solver = "bb".into();
        let report = solve(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::Infeasible);
        assert!(report.schedule.is_none());
        assert_eq!(report.valid, None);
        // The report still round-trips.
        let back = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = solve(&example_request()).unwrap();
        let json = report.to_json();
        let back = SolveReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // The embedded schedule re-validates independently.
        let request = example_request();
        let verdict = validate(
            &request.graph,
            &request.platform,
            back.schedule.as_ref().unwrap(),
        );
        assert!(verdict.is_valid());
    }

    #[test]
    fn unknown_solver_is_reported_with_known_keys() {
        let mut request = example_request();
        request.solver = "cplex".into();
        let err = solve(&request).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSolver { .. }));
        assert!(err.to_string().contains("memheft"));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(SolveRequest::parse("{").is_err());
        assert!(SolveRequest::parse("{}").is_err());
        let no_platform = r#"{"solver": "memheft", "graph": {"tasks": [], "edges": []}}"#;
        let err = SolveRequest::parse(no_platform).unwrap_err();
        assert!(err.to_string().contains("platform"));
    }

    #[test]
    fn absurd_thread_counts_are_named_errors_not_spawn_aborts() {
        let mut request = example_request();
        request.threads = 500_000;
        let err = SolveRequest::from_json(&request.to_json()).unwrap_err();
        assert!(err.to_string().contains("at most"), "{err}");
        // `0` (= all cores) is always allowed and resolves in the pool.
        request.threads = 0;
        let reparsed = SolveRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(reparsed.threads, 0);
        let report = solve(&reparsed).unwrap();
        assert_eq!(report.valid, Some(true));
        assert!(report.threads >= 1); // 0 resolved to the actual core count
    }

    #[test]
    fn portfolio_request_reports_member_breakdown() {
        let mut request = example_request();
        request.solver = "portfolio".into();
        let report = solve(&request).unwrap();
        assert_eq!(report.solver, "Portfolio");
        assert_eq!(report.solver_key, "portfolio");
        assert_eq!(report.status, OptimalityStatus::Heuristic);
        assert_eq!(report.valid, Some(true));
        assert_eq!(report.members.len(), mals_sched::DEFAULT_MEMBERS.len());
        let winner = report
            .winner
            .as_deref()
            .expect("dex at bound 5 is feasible");
        let winning = report.members.iter().find(|m| m.key == winner).unwrap();
        assert_eq!(winning.makespan, report.makespan);
        // The member breakdown and deadline echo survive the JSON round-trip.
        let back = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);

        // A custom member set may mix heuristics and exact backends; the
        // aggregate inherits the winner's status (`bb` first so a makespan
        // tie resolves to the exact proof).
        request.solvers = vec!["bb".into(), "memheft".into()];
        let report = solve(&request).unwrap();
        assert_eq!(report.members.len(), 2);
        assert_eq!(report.status, OptimalityStatus::Optimal);
        assert_eq!(report.makespan, Some(6.0));

        // Unknown member keys are named errors.
        request.solvers = vec!["memheft".into(), "cplex".into()];
        let err = solve(&request).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownSolver { .. }));
    }

    #[test]
    fn expired_deadline_yields_limit_hit_with_coded_error() {
        let mut request = example_request();
        request.solver = "portfolio".into();
        request.deadline_ms = Some(0);
        let report = solve(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report.schedule.is_none());
        assert_eq!(report.deadline_ms, Some(0));
        assert!(report.members.iter().all(|m| m.cancelled));
        assert_eq!(report.winner, None);
        assert!(
            report
                .errors
                .iter()
                .any(|e| e.code == ErrorCode::DeadlineExceeded),
            "{:?}",
            report.errors
        );
        let back = SolveReport::parse(&report.to_json().to_compact()).unwrap();
        assert_eq!(back, report);
        // Ordinary solvers honour the deadline through the same field.
        request.solver = "memheft".into();
        let report = solve(&request).unwrap();
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report.members.is_empty());
        assert!(report
            .errors
            .iter()
            .any(|e| e.code == ErrorCode::DeadlineExceeded));
    }

    #[test]
    fn admission_stamped_deadline_overrides_the_request_field() {
        let request = example_request();
        let service = Service::for_request(&request);
        // An already-expired admission deadline loses even though the
        // request itself carries none.
        let report = service.handle_at(&request, Some(Deadline::after_millis(0)));
        assert_eq!(report.status, OptimalityStatus::LimitHit);
        assert!(report
            .errors
            .iter()
            .any(|e| e.code == ErrorCode::DeadlineExceeded));
        // No deadline at all solves normally on the same session.
        let report = service.handle_at(&request, None);
        assert_eq!(report.valid, Some(true));
    }

    #[test]
    fn session_reuse_matches_one_shot_solves() {
        let service = Service::new(EngineConfig::sequential());
        let request = example_request();
        let one_shot = Service::once(&request);
        for _ in 0..3 {
            let reused = service.handle(&request);
            assert_eq!(reused.schedule, one_shot.schedule);
            assert_eq!(reused.status, one_shot.status);
        }
    }

    #[test]
    fn handle_window_matches_individual_handles_in_order() {
        let service = Service::new(EngineConfig::sequential());
        let base = example_request();
        let memminmin = SolveRequest {
            solver: "memminmin".into(),
            ..base.clone()
        };
        let unknown = SolveRequest {
            solver: "cplex".into(),
            ..base.clone()
        };
        // A window mixing solvers (with a repeat, exercising the per-window
        // solver cache) and a rejection.
        let window: Vec<PreparedRequest<'_>> = vec![
            (&base, None),
            (&memminmin, None),
            (&base, None),
            (&unknown, None),
        ];
        let reports = service.handle_window(&window);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].schedule, service.handle(&base).schedule);
        assert_eq!(reports[1].schedule, service.handle(&memminmin).schedule);
        assert_eq!(reports[2].schedule, reports[0].schedule);
        assert_eq!(reports[3].errors[0].code, ErrorCode::UnknownSolver);
    }

    #[test]
    fn session_equals_one_shot() {
        let engine = mals_exact::engine(EngineConfig::sequential());
        let request = example_request();
        let one_shot = Service::once(&request);
        let via_session = Service::with_engine(engine).handle(&request);
        assert_eq!(one_shot.schedule, via_session.schedule);
        assert_eq!(one_shot.status, via_session.status);
    }
}
