//! One entry point per figure of the paper's evaluation section.
//!
//! Every function has a `Default` configuration scaled down for interactive /
//! benchmark use and a `paper()` configuration matching the instance sizes of
//! the paper. The experiment binaries print which configuration is in effect,
//! so no scaling is ever silent.
//!
//! Solvers are selected **by registry key** (`"memheft"`, `"bb"`, `"milp"`,
//! …; resolved against `mals_exact::solver_registry()`), so every figure
//! runs heuristics and exact backends through the same engine-layer code
//! path and the series labels come from the solvers' display names.

use crate::campaign::{
    run_streaming_campaign, CampaignConfig, CampaignIo, CampaignPoint, CampaignRun,
};
use crate::sweep::{heft_reference, sweep_absolute, SweepPoint};
use mals_dag::TaskGraph;
use mals_exact::bounds::makespan_lower_bound;
use mals_gen::{cholesky_dag, lu_dag, KernelCosts, SetParams};
use mals_platform::Platform;
use mals_sched::{SolveCtx, SolveLimits, Solver};
use mals_util::{ParallelConfig, WorkerPool};

/// Configuration of the Figure 10 campaign (SmallRandSet vs the optimal).
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Number of random DAGs.
    pub n_dags: usize,
    /// Tasks per DAG.
    pub n_tasks: usize,
    /// Normalised memory bounds.
    pub alphas: Vec<f64>,
    /// Registry key of the exact solver drawing the optimal series.
    pub exact_solver: String,
    /// Node budget of the exact solver per (DAG, bound) pair.
    pub optimal_node_limit: u64,
    /// Thread configuration.
    pub parallel: ParallelConfig,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            n_dags: 10,
            n_tasks: 16,
            alphas: (0..=10).map(|i| i as f64 / 10.0).collect(),
            exact_solver: "bb".into(),
            optimal_node_limit: 50_000,
            parallel: ParallelConfig::default(),
        }
    }
}

impl Fig10Config {
    /// The paper's configuration: 50 DAGs of 30 tasks (slow: the exact solver
    /// runs on every DAG × memory-bound combination).
    pub fn paper() -> Self {
        Fig10Config {
            n_dags: 50,
            n_tasks: 30,
            alphas: (0..=20).map(|i| i as f64 / 20.0).collect(),
            exact_solver: "bb".into(),
            optimal_node_limit: 2_000_000,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Figure 10: SmallRandSet — normalised makespan and success rate of MemHEFT,
/// MemMinMin and the optimal schedule, as a function of the normalised memory
/// bound, on a 1 blue + 1 red platform.
pub fn fig10(config: &Fig10Config) -> Vec<CampaignPoint> {
    fig10_with_io(config, &CampaignIo::default())
        .expect("in-memory campaign cannot fail")
        .points
        .expect("no early stop requested")
}

/// [`fig10`] with checkpoint/resume support (the `--checkpoint` / `--resume`
/// wiring of the `fig10` binary); the campaign streams DAG by DAG from the
/// set's seeds instead of materialising the whole set.
pub fn fig10_with_io(config: &Fig10Config, io: &CampaignIo) -> Result<CampaignRun, String> {
    let set = SetParams::small_rand().scaled(config.n_dags, config.n_tasks);
    let platform = Platform::single_pair(0.0, 0.0);
    let campaign = CampaignConfig {
        alphas: config.alphas.clone(),
        solvers: vec![
            "memheft".into(),
            "memminmin".into(),
            config.exact_solver.clone(),
        ],
        optimal_node_limit: config.optimal_node_limit,
        parallel: config.parallel,
    };
    run_streaming_campaign(&set, &platform, &campaign, io)
}

/// Configuration of the Figure 12 campaign (LargeRandSet).
#[derive(Debug, Clone)]
pub struct Fig12Config {
    /// Number of random DAGs.
    pub n_dags: usize,
    /// Tasks per DAG.
    pub n_tasks: usize,
    /// Normalised memory bounds.
    pub alphas: Vec<f64>,
    /// Optional exact solver key: the paper omits the optimal at this size,
    /// but `--exact-backend` lets scaled-down runs include it anyway.
    pub exact_solver: Option<String>,
    /// Node budget of the exact solver per (DAG, bound) pair.
    pub optimal_node_limit: u64,
    /// Thread configuration.
    pub parallel: ParallelConfig,
}

impl Default for Fig12Config {
    fn default() -> Self {
        Fig12Config {
            n_dags: 6,
            n_tasks: 150,
            alphas: (0..=10).map(|i| i as f64 / 10.0).collect(),
            exact_solver: None,
            optimal_node_limit: 200_000,
            parallel: ParallelConfig::default(),
        }
    }
}

impl Fig12Config {
    /// The paper's configuration: 100 DAGs of 1000 tasks.
    pub fn paper() -> Self {
        Fig12Config {
            n_dags: 100,
            n_tasks: 1000,
            alphas: (0..=20).map(|i| i as f64 / 20.0).collect(),
            exact_solver: None,
            optimal_node_limit: 200_000,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Figure 12: LargeRandSet — normalised makespan and success rate of MemHEFT
/// and MemMinMin (the optimal is out of reach at the paper's size; an exact
/// solver can be opted in for scaled-down runs), on a 1 blue + 1 red
/// platform.
pub fn fig12(config: &Fig12Config) -> Vec<CampaignPoint> {
    fig12_with_io(config, &CampaignIo::default())
        .expect("in-memory campaign cannot fail")
        .points
        .expect("no early stop requested")
}

/// [`fig12`] with checkpoint/resume support — the scaling campaign of the
/// workspace: DAGs are generated from their seeds one chunk at a time,
/// folded into streaming aggregates and dropped, so the LargeRandSet
/// configuration extends to 10⁴–10⁵-task instances and thousands of seeds
/// without memory growth, and a killed run resumes from its checkpoint to
/// byte-identical output.
pub fn fig12_with_io(config: &Fig12Config, io: &CampaignIo) -> Result<CampaignRun, String> {
    let set = SetParams::large_rand().scaled(config.n_dags, config.n_tasks);
    let platform = Platform::single_pair(0.0, 0.0);
    let mut solvers = vec!["memheft".to_string(), "memminmin".to_string()];
    solvers.extend(config.exact_solver.iter().cloned());
    let campaign = CampaignConfig {
        alphas: config.alphas.clone(),
        solvers,
        optimal_node_limit: config.optimal_node_limit,
        parallel: config.parallel,
    };
    run_streaming_campaign(&set, &platform, &campaign, io)
}

/// Result of a single-DAG absolute sweep (Figures 11, 13, 14, 15).
#[derive(Debug, Clone)]
pub struct SingleDagSweep {
    /// The DAG used.
    pub graph: TaskGraph,
    /// The sweep rows.
    pub points: Vec<SweepPoint>,
    /// Memory- and platform-independent makespan lower bound (the "Lower
    /// bound" line of Figure 11).
    pub lower_bound: f64,
    /// Memory needed by the memory-oblivious HEFT schedule (the right end of
    /// the interesting memory range).
    pub heft_memory: f64,
}

/// Builds the memory grid of an absolute sweep: `steps + 1` evenly spaced
/// bounds from 0 to ~110% of HEFT's requirement.
fn memory_grid(heft_memory: f64, steps: usize) -> Vec<f64> {
    let top = (heft_memory * 1.1).max(1.0);
    (0..=steps)
        .map(|i| (top * i as f64 / steps as f64).round())
        .collect()
}

fn single_dag_sweep(
    graph: TaskGraph,
    platform: &Platform,
    steps: usize,
    parallel: ParallelConfig,
    exact: Option<(&str, u64)>,
) -> SingleDagSweep {
    let reference = heft_reference(&graph, platform);
    let heft_memory = reference.heft_peaks.max();
    let grid = memory_grid(heft_memory, steps);
    // A single DAG cannot be spread over threads the way a campaign spreads
    // whole DAGs, so the parallelism goes *inside* each schedule: one worker
    // pool, shared by every solver through the solve context.
    let registry = mals_exact::solver_registry();
    let build = |key: &str| {
        registry
            .build(key)
            .unwrap_or_else(|| panic!("solver `{key}` not registered"))
    };
    let memheft = build("memheft");
    let memminmin = build("memminmin");
    let heft = build("heft");
    let minmin = build("minmin");
    let exact_solver = exact.as_ref().map(|&(key, _)| build(key));
    let mut memory_aware: Vec<&dyn Solver> = vec![&memheft, &memminmin];
    if let Some(s) = &exact_solver {
        memory_aware.push(s);
    }
    let pool = (parallel.resolved_threads() > 1).then(|| WorkerPool::new(parallel));
    let ctx = SolveCtx {
        limits: exact
            .map(|(_, node_limit)| SolveLimits::with_node_limit(node_limit))
            .unwrap_or_default(),
        pool: pool.as_ref(),
        ..Default::default()
    };
    let points = sweep_absolute(
        &graph,
        platform,
        &grid,
        &memory_aware,
        &[&heft, &minmin],
        &ctx,
    );
    let lower_bound = makespan_lower_bound(&graph, platform);
    SingleDagSweep {
        graph,
        points,
        lower_bound,
        heft_memory,
    }
}

/// Configuration for the single-DAG random sweeps (Figures 11 and 13).
#[derive(Debug, Clone)]
pub struct SingleRandConfig {
    /// Tasks in the DAG.
    pub n_tasks: usize,
    /// Number of memory points in the sweep.
    pub steps: usize,
    /// Within-schedule thread configuration (ready-list evaluation).
    pub parallel: ParallelConfig,
    /// Optional registry key of an exact solver adding an optimal series to
    /// the sweep (only sensible for small `n_tasks`).
    pub exact_solver: Option<String>,
    /// Node budget of the exact solver per memory point.
    pub exact_node_limit: u64,
}

impl SingleRandConfig {
    /// Figure 11 default (paper: the 30-task DAG of Figure 8).
    pub fn fig11_default() -> Self {
        SingleRandConfig {
            n_tasks: 30,
            steps: 20,
            parallel: ParallelConfig::sequential(),
            exact_solver: None,
            exact_node_limit: 200_000,
        }
    }

    /// Figure 11 paper configuration.
    pub fn fig11_paper() -> Self {
        SingleRandConfig {
            n_tasks: 30,
            steps: 35,
            ..SingleRandConfig::fig11_default()
        }
    }

    /// Figure 13 default (scaled down from the paper's 1000-task DAG).
    pub fn fig13_default() -> Self {
        SingleRandConfig {
            n_tasks: 300,
            steps: 20,
            ..SingleRandConfig::fig11_default()
        }
    }

    /// Figure 13 paper configuration.
    pub fn fig13_paper() -> Self {
        SingleRandConfig {
            n_tasks: 1000,
            steps: 25,
            ..SingleRandConfig::fig11_default()
        }
    }
}

/// Figure 11: makespan versus (absolute) memory bound for one SmallRandSet
/// DAG — HEFT, MinMin, MemHEFT, MemMinMin and the makespan lower bound, on a
/// 1 blue + 1 red platform. The DAG is the first one of the (seeded)
/// SmallRandSet, mirroring the paper's use of the Figure 8 DAG.
pub fn fig11(config: &SingleRandConfig) -> SingleDagSweep {
    let graph = SetParams::small_rand()
        .scaled(1, config.n_tasks)
        .generate()
        .pop()
        .expect("one DAG requested");
    single_dag_sweep(
        graph,
        &Platform::single_pair(0.0, 0.0),
        config.steps,
        config.parallel,
        config
            .exact_solver
            .as_deref()
            .map(|key| (key, config.exact_node_limit)),
    )
}

/// Figure 13: the same sweep for one LargeRandSet DAG (the paper's Figure 9
/// DAG).
pub fn fig13(config: &SingleRandConfig) -> SingleDagSweep {
    let graph = SetParams::large_rand()
        .scaled(1, config.n_tasks)
        .generate()
        .pop()
        .expect("one DAG requested");
    single_dag_sweep(
        graph,
        &Platform::single_pair(0.0, 0.0),
        config.steps,
        config.parallel,
        config
            .exact_solver
            .as_deref()
            .map(|key| (key, config.exact_node_limit)),
    )
}

/// Configuration for the linear-algebra sweeps (Figures 14 and 15).
#[derive(Debug, Clone)]
pub struct LinalgConfig {
    /// Number of tile rows/columns of the factored matrix.
    pub tiles: usize,
    /// Number of memory points in the sweep.
    pub steps: usize,
    /// Within-schedule thread configuration (ready-list evaluation).
    pub parallel: ParallelConfig,
}

impl LinalgConfig {
    /// Default (scaled-down) configuration: a 6×6 tile matrix.
    pub fn small() -> Self {
        LinalgConfig {
            tiles: 6,
            steps: 16,
            parallel: ParallelConfig::sequential(),
        }
    }

    /// The paper's configuration: a 13×13 tile matrix.
    pub fn paper() -> Self {
        LinalgConfig {
            tiles: 13,
            steps: 24,
            parallel: ParallelConfig::sequential(),
        }
    }
}

/// Figure 14: makespan versus memory (in tiles) for the tiled LU
/// factorisation on the mirage-like platform (12 CPU cores + 3 accelerators).
pub fn fig14(config: &LinalgConfig) -> SingleDagSweep {
    let graph = lu_dag(config.tiles, &KernelCosts::table1());
    single_dag_sweep(
        graph,
        &Platform::mirage(0.0, 0.0),
        config.steps,
        config.parallel,
        None,
    )
}

/// Figure 15: the same sweep for the tiled Cholesky factorisation.
pub fn fig15(config: &LinalgConfig) -> SingleDagSweep {
    let graph = cholesky_dag(config.tiles, &KernelCosts::table1());
    single_dag_sweep(
        graph,
        &Platform::mirage(0.0, 0.0),
        config.steps,
        config.parallel,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_tiny_run_has_expected_shape() {
        let config = Fig10Config {
            n_dags: 3,
            n_tasks: 6,
            alphas: vec![0.3, 1.0],
            optimal_node_limit: 10_000,
            parallel: ParallelConfig::sequential(),
            ..Fig10Config::default()
        };
        let points = fig10(&config);
        assert_eq!(points.len(), 2);
        let full = &points[1];
        // At alpha = 1 every heuristic schedules every DAG.
        assert_eq!(full.method("MemHEFT").unwrap().success_rate, 1.0);
        assert_eq!(full.method("MemMinMin").unwrap().success_rate, 1.0);
        let opt = full.method("Optimal(B&B)").unwrap();
        assert!(opt.success_rate >= 1.0 - 1e-9);
        // The optimal normalised makespan is never worse than MemHEFT's.
        assert!(
            opt.mean_normalized_makespan.unwrap()
                <= full
                    .method("MemHEFT")
                    .unwrap()
                    .mean_normalized_makespan
                    .unwrap()
                    + 1e-9
        );
    }

    #[test]
    fn fig12_tiny_run() {
        let config = Fig12Config {
            n_dags: 2,
            n_tasks: 40,
            alphas: vec![0.4, 1.0],
            parallel: ParallelConfig::sequential(),
            ..Fig12Config::default()
        };
        let points = fig12(&config);
        assert_eq!(points.len(), 2);
        assert!(points[1].method("MemHEFT").unwrap().success_rate >= 0.99);
        assert!(
            points[0].method("Optimal(B&B)").is_none(),
            "no exact solver at this scale"
        );
    }

    #[test]
    fn fig11_tiny_run() {
        let sweep = fig11(&SingleRandConfig {
            n_tasks: 12,
            steps: 6,
            ..SingleRandConfig::fig11_default()
        });
        assert_eq!(sweep.points.len(), 7);
        assert!(sweep.lower_bound > 0.0);
        assert!(sweep.heft_memory > 0.0);
        // At the top of the grid every scheduler succeeds and respects the
        // lower bound.
        let top = sweep.points.last().unwrap();
        for outcome in &top.outcomes {
            let mk = outcome.makespan.expect("ample memory");
            assert!(mk >= sweep.lower_bound - 1e-9);
        }
    }

    #[test]
    fn fig14_and_fig15_tiny_runs() {
        let config = LinalgConfig {
            tiles: 3,
            steps: 6,
            parallel: ParallelConfig::sequential(),
        };
        let lu = fig14(&config);
        let chol = fig15(&config);
        assert!(lu.graph.n_tasks() > chol.graph.n_tasks());
        for sweep in [&lu, &chol] {
            let top = sweep.points.last().unwrap();
            assert!(top.outcome("MemHEFT").unwrap().makespan.is_some());
            assert!(top.outcome("MemMinMin").unwrap().makespan.is_some());
        }
    }

    #[test]
    fn fig11_with_exact_solver_adds_a_dominating_series() {
        // A tiny sweep with the MILP backend: the optimal series exists and
        // is never worse than MemHEFT wherever both succeed.
        let sweep = fig11(&SingleRandConfig {
            n_tasks: 8,
            steps: 4,
            exact_solver: Some("milp".into()),
            ..SingleRandConfig::fig11_default()
        });
        let mut saw_optimal = false;
        for point in &sweep.points {
            let opt = point.outcome("Optimal(MILP)").expect("series present");
            if let (Some(o), Some(h)) = (
                opt.makespan,
                point.outcome("MemHEFT").and_then(|m| m.makespan),
            ) {
                saw_optimal = true;
                assert!(o <= h + 1e-9, "optimal {o} worse than MemHEFT {h}");
                assert!(o >= sweep.lower_bound - 1e-9);
            }
        }
        assert!(saw_optimal, "the exact series never succeeded");
    }

    #[test]
    fn single_dag_sweep_is_thread_count_invariant() {
        let base = SingleRandConfig {
            n_tasks: 24,
            steps: 4,
            parallel: ParallelConfig::sequential(),
            ..SingleRandConfig::fig11_default()
        };
        let seq = fig11(&base);
        let par = fig11(&SingleRandConfig {
            parallel: ParallelConfig::with_threads(4),
            ..base
        });
        for (a, b) in seq.points.iter().zip(&par.points) {
            assert_eq!(a.memory_bound, b.memory_bound);
            for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(oa.name, ob.name);
                // Bitwise equality: the parallel engine must not perturb a
                // single makespan anywhere in the sweep.
                assert_eq!(oa.makespan, ob.makespan, "{} diverged", oa.name);
            }
        }
    }

    #[test]
    fn memory_grid_covers_zero_to_above_heft() {
        let grid = memory_grid(100.0, 10);
        assert_eq!(grid.len(), 11);
        assert_eq!(grid[0], 0.0);
        assert!(*grid.last().unwrap() >= 100.0);
    }
}
