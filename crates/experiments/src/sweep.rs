//! Per-DAG memory sweeps.
//!
//! The experiments of the paper all have the same skeleton: take a DAG,
//! measure the memory footprint of the memory-oblivious HEFT schedule, then
//! re-schedule the DAG with the memory-aware solvers under increasingly
//! tight memory bounds and record the makespan (or the failure) of each
//! solver at each bound. Solvers are addressed through the unified
//! [`Solver`] interface, so heuristics and exact backends ride the same
//! sweeps.

use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sched::{Heft, MinMin, Scheduler, SolveCtx, Solver};
use mals_sim::{memory_peaks, MemoryPeaks};

/// The memory-oblivious reference for one DAG: HEFT's makespan and memory
/// peaks (used to normalise both axes of Figures 10 and 12).
#[derive(Debug, Clone, Copy)]
pub struct Reference {
    /// Makespan of the HEFT schedule (memory ignored).
    pub heft_makespan: f64,
    /// Memory peaks of that schedule.
    pub heft_peaks: MemoryPeaks,
    /// Makespan of the MinMin schedule (memory ignored).
    pub minmin_makespan: f64,
    /// Memory peaks of that schedule.
    pub minmin_peaks: MemoryPeaks,
}

/// Computes the HEFT / MinMin references of a DAG on `platform` (the memory
/// bounds of `platform` are ignored).
pub fn heft_reference(graph: &TaskGraph, platform: &Platform) -> Reference {
    let unbounded = platform.unbounded();
    let heft = Heft::new()
        .schedule(graph, &unbounded)
        .expect("HEFT cannot fail");
    let minmin = MinMin::new()
        .schedule(graph, &unbounded)
        .expect("MinMin cannot fail");
    Reference {
        heft_makespan: heft.makespan(),
        heft_peaks: memory_peaks(graph, &unbounded, &heft),
        minmin_makespan: minmin.makespan(),
        minmin_peaks: memory_peaks(graph, &unbounded, &minmin),
    }
}

/// Result of one solver at one memory bound.
#[derive(Debug, Clone)]
pub struct SchedulerOutcome {
    /// Solver display name.
    pub name: String,
    /// Makespan, or `None` when the solver failed within the bounds.
    pub makespan: Option<f64>,
}

/// One point of an absolute memory sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Memory bound applied to both memories.
    pub memory_bound: f64,
    /// Outcome of every solver at that bound.
    pub outcomes: Vec<SchedulerOutcome>,
}

impl SweepPoint {
    /// The outcome of a solver, looked up by display name.
    pub fn outcome(&self, name: &str) -> Option<&SchedulerOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

/// Runs a memory-oblivious solver and reports its makespan only when its
/// own memory peaks fit in the bounds of `platform` (this is how the HEFT /
/// MinMin series of Figures 11 and 13–15 are drawn: the baseline simply
/// cannot run below its own memory requirement).
pub fn memory_oblivious_result(
    graph: &TaskGraph,
    platform: &Platform,
    solver: &dyn Solver,
    ctx: &SolveCtx,
) -> Option<f64> {
    let unbounded = platform.unbounded();
    let schedule = solver.solve(graph, &unbounded, ctx).schedule?;
    let peaks = memory_peaks(graph, &unbounded, &schedule);
    let fits = peaks.blue <= platform.mem_blue + mals_util::EPSILON
        && peaks.red <= platform.mem_red + mals_util::EPSILON;
    fits.then(|| schedule.makespan())
}

/// Solves and returns the makespan, distinguishing honest infeasibility
/// (`None`) from an instance the solver *rejected* (cyclic graph, …), which
/// panics with the recorded cause — a rejected instance must never be
/// reported as "infeasible at this memory bound" by the experiment drivers.
pub(crate) fn checked_makespan(
    solver: &dyn Solver,
    graph: &TaskGraph,
    platform: &Platform,
    ctx: &SolveCtx,
) -> Option<f64> {
    let outcome = solver.solve(graph, platform, ctx);
    if let Some(error) = &outcome.error {
        panic!("solver {} rejected the instance: {error}", solver.name());
    }
    outcome.makespan()
}

/// Runs a memory-aware solver under the bounds of `platform`.
fn memory_aware_result(
    graph: &TaskGraph,
    platform: &Platform,
    solver: &dyn Solver,
    ctx: &SolveCtx,
) -> Option<f64> {
    checked_makespan(solver, graph, platform, ctx)
}

/// Streaming core of the absolute memory sweeps: computes one point per
/// bound and hands it to `on_point` as soon as it exists, so drivers can
/// emit rows (or fold aggregates) without holding the whole sweep — at each
/// bound, the memory-aware solvers run under the bound, and the
/// memory-oblivious baselines are reported only where their own footprint
/// fits.
pub fn sweep_absolute_streaming(
    graph: &TaskGraph,
    platform: &Platform,
    memory_bounds: &[f64],
    memory_aware: &[&dyn Solver],
    memory_oblivious: &[&dyn Solver],
    ctx: &SolveCtx,
    mut on_point: impl FnMut(SweepPoint),
) {
    for &bound in memory_bounds {
        let bounded = platform.with_memory_bounds(bound, bound);
        let mut outcomes = Vec::new();
        for s in memory_oblivious {
            outcomes.push(SchedulerOutcome {
                name: s.name().to_string(),
                makespan: memory_oblivious_result(graph, &bounded, s, ctx),
            });
        }
        for s in memory_aware {
            outcomes.push(SchedulerOutcome {
                name: s.name().to_string(),
                makespan: memory_aware_result(graph, &bounded, s, ctx),
            });
        }
        on_point(SweepPoint {
            memory_bound: bound,
            outcomes,
        });
    }
}

/// Sweeps absolute memory bounds for one DAG (the skeleton of Figures 11, 13,
/// 14 and 15), collecting every point — the convenience wrapper over
/// [`sweep_absolute_streaming`] for sweeps small enough to hold.
pub fn sweep_absolute(
    graph: &TaskGraph,
    platform: &Platform,
    memory_bounds: &[f64],
    memory_aware: &[&dyn Solver],
    memory_oblivious: &[&dyn Solver],
    ctx: &SolveCtx,
) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(memory_bounds.len());
    sweep_absolute_streaming(
        graph,
        platform,
        memory_bounds,
        memory_aware,
        memory_oblivious,
        ctx,
        |point| points.push(point),
    );
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_sched::{MemHeft, MemMinMin};

    #[test]
    fn reference_of_dex() {
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let reference = heft_reference(&g, &platform);
        assert!(reference.heft_makespan > 0.0);
        assert!(reference.heft_peaks.max() > 0.0);
        assert!(reference.minmin_makespan > 0.0);
        // Total file volume bounds any peak.
        assert!(reference.heft_peaks.max() <= g.total_file_size());
    }

    #[test]
    fn memory_oblivious_result_gated_by_footprint() {
        let (g, _) = dex();
        let ctx = SolveCtx::sequential();
        let platform = Platform::single_pair(100.0, 100.0);
        let heft = Heft::new();
        assert!(memory_oblivious_result(&g, &platform, &heft, &ctx).is_some());
        let tiny = Platform::single_pair(1.0, 1.0);
        assert!(memory_oblivious_result(&g, &tiny, &heft, &ctx).is_none());
    }

    #[test]
    fn sweep_absolute_monotone_success() {
        let (g, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let memheft = MemHeft::new();
        let memminmin = MemMinMin::new();
        let heft = Heft::new();
        let minmin = MinMin::new();
        let bounds: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let sweep = sweep_absolute(
            &g,
            &platform,
            &bounds,
            &[&memheft, &memminmin],
            &[&heft, &minmin],
            &ctx,
        );
        assert_eq!(sweep.len(), bounds.len());
        // Success is monotone in the memory bound for each solver.
        for name in ["MemHEFT", "MemMinMin", "HEFT", "MinMin"] {
            let mut seen_success = false;
            for point in &sweep {
                let ok = point.outcome(name).unwrap().makespan.is_some();
                if seen_success {
                    assert!(
                        ok,
                        "{name} succeeded at a smaller bound but failed at {}",
                        point.memory_bound
                    );
                }
                seen_success |= ok;
            }
            assert!(seen_success, "{name} should succeed with bound 10 on D_ex");
        }
        // With ample memory every solver matches or beats nothing smaller
        // than the critical path.
        let last = sweep.last().unwrap();
        for o in &last.outcomes {
            assert!(o.makespan.unwrap() >= 5.0 - 1e-9);
        }
    }

    #[test]
    fn makespan_non_increasing_with_memory_for_memory_aware() {
        let (g, _) = dex();
        let platform = Platform::single_pair(0.0, 0.0);
        let ctx = SolveCtx::sequential();
        let memheft = MemHeft::new();
        let bounds: Vec<f64> = (3..=12).map(|i| i as f64).collect();
        let sweep = sweep_absolute(&g, &platform, &bounds, &[&memheft], &[], &ctx);
        let mut last = f64::INFINITY;
        for point in &sweep {
            if let Some(mk) = point.outcome("MemHEFT").unwrap().makespan {
                assert!(
                    mk <= last + 1e-9,
                    "more memory should never slow MemHEFT down on D_ex (bound {})",
                    point.memory_bound
                );
                last = mk;
            }
        }
    }
}
