//! `malsd` — the persistent scheduling daemon: the [`Service`] session
//! behind a TCP socket.
//!
//! # Wire protocol (version [`PROTOCOL_VERSION`])
//!
//! Newline-delimited JSON frames (see [`mals_util::frame`]). A client sends
//! a [`SolveRequest`] document with an extra top-level `"id"` field (any
//! JSON scalar, echoed verbatim) and receives exactly one frame back per
//! request, in one of two shapes:
//!
//! * a [`SolveReport`](crate::service::SolveReport) document plus the
//!   echoed `"id"` — the request was
//!   admitted and solved (rejected *solves* are still reports, with the
//!   coded cause in the report's `errors` array);
//! * a reject frame `{"v": 1, "id": ..., "error": {"code": ..., "message":
//!   ...}}` — the request never reached the solver: unparseable or
//!   oversized frame (`bad_request`), queue full or daemon draining
//!   (`queue_full`).
//!
//! Responses to *pipelined* requests on one connection come back in
//! admission order; requests from different connections interleave through
//! the shared queue. Two control frames exist: `{"op": "ping"}` answers
//! `{"op": "pong", "v": 1}` (liveness), and `{"op": "shutdown"}` starts a
//! graceful shutdown (drain queued work, refuse new) — the same path
//! SIGTERM takes in the `malsd` binary.
//!
//! # Architecture
//!
//! ```text
//!                        ┌────────────────────────── malsd ─┐
//!  client ──┐            │  acceptor ──spawns──▶ reader ─┐  │
//!  client ──┼── TCP ───▶ │            (one per connection)│  │
//!  client ──┘            │                 ▼ admission    │  │
//!                        │     [bounded queue ≤ capacity] │  │
//!                        │                 ▼ drain window │  │
//!                        │   solver thread → Service      │  │
//!                        │     └─ responses → per-conn    │  │
//!                        │        writer (shared mutex) ──┼──▶ client
//!                        └─────────────────────────────────┘
//! ```
//!
//! One **acceptor** (non-blocking, polls the shutdown token) spawns one
//! **reader** thread per connection; readers parse frames and *admit*
//! requests into a bounded queue — admission stamps the request's
//! `deadline_ms` into an absolute [`Deadline`], so queueing delay counts
//! against the budget, and a full queue answers `queue_full` immediately
//! instead of blocking (backpressure by rejection, never by hanging). One
//! **solver** thread drains the queue in windows of up to `batch_max` jobs
//! and hands them to [`Service::handle_window`], which builds each distinct
//! solver once per window (cross-request batch formation — the same
//! amortisation `Engine::solve_batch` gives a homogeneous batch). The pool
//! parallelises *inside* each solve, so a single solver thread is the
//! correct concurrency: two windows in flight would contend for the pool.

use crate::service::{PreparedRequest, Service, ServiceError, SolveRequest, PROTOCOL_VERSION};
use mals_sched::EngineConfig;
use mals_util::{
    write_frame, CancelToken, Deadline, FrameError, FrameReader, Json, ParallelConfig,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long blocking socket reads wait before the reader re-polls the
/// shutdown token (partial frames survive the poll, see [`FrameReader`]).
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the non-blocking acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port; the bound
    /// address is on the [`DaemonHandle`]).
    pub addr: String,
    /// Bounded queue capacity: requests admitted but not yet solved.
    /// Admission beyond this answers `queue_full` (backpressure).
    pub queue_capacity: usize,
    /// Largest window the solver thread drains per pass; within a window
    /// each distinct solver is built once (cross-request batching).
    pub batch_max: usize,
    /// Worker threads of the long-lived engine pool (`0` = all cores).
    pub threads: usize,
    /// Frame-size cap per connection; an oversized frame is rejected
    /// without killing the connection.
    pub max_frame_bytes: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 64,
            batch_max: 8,
            threads: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// One admitted request waiting in the queue.
struct Job {
    /// The client's `"id"`, echoed verbatim in the response frame.
    id: Json,
    request: SolveRequest,
    /// Absolute deadline stamped at admission (from `deadline_ms`).
    deadline: Option<Deadline>,
    /// Writer of the connection the request arrived on.
    writer: Arc<ConnWriter>,
}

/// Serialises response frames onto one connection: readers (rejects) and
/// the solver thread (reports) both write, so the stream sits behind a
/// mutex and every frame is written + flushed whole.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one frame; errors are swallowed (a vanished client must not
    /// take the daemon down — its remaining queued jobs just solve into
    /// the void).
    fn send(&self, payload: &str) {
        if let Ok(mut stream) = self.stream.lock() {
            let _ = write_frame(&mut *stream, payload);
        }
    }
}

/// The bounded admission queue: `try_push` never blocks (backpressure is a
/// structured rejection), `pop_window` blocks until work or shutdown.
struct Queue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Set at shutdown: refuse new admissions, drain what is queued.
    draining: bool,
}

impl Queue {
    fn new(capacity: usize) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job, or answers *immediately* why it cannot.
    fn try_push(&self, job: Job) -> Result<(), ServiceError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.draining {
            return Err(ServiceError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(ServiceError::QueueFull {
                capacity: self.capacity,
            });
        }
        state.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is queued (returning up to `max` of
    /// them, admission order) or the queue is draining *and* empty
    /// (returning an empty window: time to exit).
    fn pop_window(&self, max: usize) -> Vec<Job> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max.max(1));
                return state.jobs.drain(..take).collect();
            }
            if state.draining {
                return Vec::new();
            }
            state = self.cond.wait(state).expect("queue poisoned");
        }
    }

    /// Starts the drain: new admissions answer `queue_full`, queued jobs
    /// still solve.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").draining = true;
        self.cond.notify_all();
    }
}

/// State shared by the acceptor, the readers and the solver thread.
struct Shared {
    queue: Queue,
    shutdown: CancelToken,
    max_frame_bytes: usize,
}

impl Shared {
    /// The one graceful-shutdown path: SIGTERM, ctrl-c, the in-band
    /// `{"op": "shutdown"}` frame and [`DaemonHandle::shutdown`] all end
    /// here. Idempotent.
    fn begin_shutdown(&self) {
        self.shutdown.cancel();
        self.queue.close();
    }
}

/// The persistent scheduling daemon. [`Daemon::start`] binds the socket
/// and spawns the acceptor + solver threads; the returned [`DaemonHandle`]
/// owns the shutdown token and the joins.
#[derive(Debug)]
pub struct Daemon;

/// A running daemon: bound address + graceful shutdown + join.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    solver: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Daemon {
    /// Binds `config.addr`, spawns the acceptor and solver threads, and
    /// returns the handle. The daemon serves until
    /// [`DaemonHandle::shutdown`] (or an in-band shutdown frame / the
    /// binary's signal handler) trips the token.
    pub fn start(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            queue: Queue::new(config.queue_capacity),
            shutdown: CancelToken::new(),
            max_frame_bytes: config.max_frame_bytes,
        });

        let solver = {
            let shared = Arc::clone(&shared);
            let service = Service::new(EngineConfig {
                parallel: ParallelConfig::with_threads(config.threads),
                limits: Default::default(),
            });
            let batch_max = config.batch_max;
            std::thread::Builder::new()
                .name("malsd-solver".into())
                .spawn(move || solver_loop(&shared, &service, batch_max))?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("malsd-acceptor".into())
                .spawn(move || acceptor_loop(&shared, listener))?
        };

        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            solver: Some(solver),
        })
    }
}

impl DaemonHandle {
    /// The bound listen address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful shutdown: stop accepting, refuse new admissions,
    /// drain queued work. Does not wait — call [`DaemonHandle::join`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// True once a shutdown (any path) has started.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.is_cancelled()
    }

    /// Waits for the acceptor, every reader, and the solver to exit. Call
    /// after [`DaemonHandle::shutdown`]; joining without it blocks until
    /// some other path (in-band frame, signal) trips the token.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            if let Ok(readers) = acceptor.join() {
                for reader in readers {
                    let _ = reader.join();
                }
            }
        }
        if let Some(solver) = self.solver.take() {
            let _ = solver.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        // A dropped handle must not leave detached threads serving a dead
        // address (tests create daemons freely).
        self.shared.begin_shutdown();
    }
}

/// Accepts connections until shutdown; returns the reader joins.
fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    while !shared.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                if let Ok(reader) = std::thread::Builder::new()
                    .name("malsd-conn".into())
                    .spawn(move || connection_loop(&shared, stream))
                {
                    readers.push(reader);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    readers
}

/// Reads frames off one connection until EOF, a fatal I/O error, or
/// shutdown. Admission rejections are written here; solve reports are
/// written by the solver thread through the shared [`ConnWriter`].
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    // Two handles on one socket: the reader polls with a timeout (so it can
    // notice shutdown mid-silence), the writer half lives in `ConnWriter`
    // shared with queued jobs — the socket stays open for responses even
    // after this reader exits.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter {
            stream: Mutex::new(clone),
        }),
        Err(_) => return,
    };
    let mut reader = FrameReader::with_max_frame(stream, shared.max_frame_bytes);
    loop {
        if shared.shutdown.is_cancelled() {
            return;
        }
        match reader.read_frame() {
            Ok(Some(text)) => handle_frame(shared, &writer, &text),
            Ok(None) => return, // clean EOF
            Err(e) if e.is_retryable() => continue,
            Err(FrameError::Oversized(cap)) => {
                let error = ServiceError::BadRequest(format!(
                    "frame exceeds the {cap}-byte cap; request dropped"
                ));
                writer.send(&reject_frame(&Json::Null, &error).to_compact());
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

/// Parses and dispatches one frame: control op, or request admission.
fn handle_frame(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, text: &str) {
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => {
            let error = ServiceError::BadRequest(format!("unparseable frame: {e}"));
            writer.send(&reject_frame(&Json::Null, &error).to_compact());
            return;
        }
    };
    if let Some(op) = json.get("op").and_then(Json::as_str) {
        match op {
            "ping" => writer.send(&control_frame("pong").to_compact()),
            "shutdown" => {
                shared.begin_shutdown();
                writer.send(&control_frame("shutting_down").to_compact());
            }
            other => {
                let error = ServiceError::BadRequest(format!("unknown op `{other}`"));
                writer.send(
                    &reject_frame(json.get("id").unwrap_or(&Json::Null), &error).to_compact(),
                );
            }
        }
        return;
    }
    let id = json.get("id").cloned().unwrap_or(Json::Null);
    let request = match SolveRequest::from_json(&json) {
        Ok(request) => request,
        Err(e) => {
            writer.send(&reject_frame(&id, &e).to_compact());
            return;
        }
    };
    // Admission stamp: the deadline clock starts *now*, so time spent in
    // the queue is charged to the request.
    let deadline = request.deadline_ms.map(Deadline::after_millis);
    let job = Job {
        id: id.clone(),
        request,
        deadline,
        writer: Arc::clone(writer),
    };
    if let Err(e) = shared.queue.try_push(job) {
        writer.send(&reject_frame(&id, &e).to_compact());
    }
}

/// Drains queue windows into [`Service::handle_window`] until shutdown has
/// emptied the queue.
fn solver_loop(shared: &Arc<Shared>, service: &Service, batch_max: usize) {
    loop {
        let window = shared.queue.pop_window(batch_max);
        if window.is_empty() {
            return; // draining and drained
        }
        let prepared: Vec<PreparedRequest<'_>> = window
            .iter()
            .map(|job| (&job.request, job.deadline))
            .collect();
        let reports = service.handle_window(&prepared);
        for (job, report) in window.iter().zip(reports) {
            let mut json = report.to_json();
            if let Json::Obj(pairs) = &mut json {
                pairs.insert(0, ("id".to_string(), job.id.clone()));
            }
            job.writer.send(&json.to_compact());
        }
    }
}

/// A reject frame: the request never reached the solver.
pub fn reject_frame(id: &Json, error: &ServiceError) -> Json {
    Json::obj([
        ("v", Json::Num(PROTOCOL_VERSION as f64)),
        ("id", id.clone()),
        (
            "error",
            Json::obj([
                ("code", Json::str(error.code().as_str())),
                ("message", Json::str(error.to_string())),
            ]),
        ),
    ])
}

/// A control-op response frame (`pong`, `shutting_down`).
fn control_frame(op: &str) -> Json {
    Json::obj([
        ("op", Json::str(op)),
        ("v", Json::Num(PROTOCOL_VERSION as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::example_request;

    fn connect(handle: &DaemonHandle) -> (FrameReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let write_half = stream.try_clone().expect("clone");
        (FrameReader::new(stream), write_half)
    }

    fn request_frame(id: u64, request: &SolveRequest) -> String {
        let mut json = request.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
        }
        json.to_compact()
    }

    fn small_daemon() -> DaemonHandle {
        Daemon::start(DaemonConfig {
            threads: 1,
            ..DaemonConfig::default()
        })
        .expect("daemon start")
    }

    #[test]
    fn solves_a_request_end_to_end_and_echoes_the_id() {
        let handle = small_daemon();
        let (mut reader, mut write_half) = connect(&handle);
        write_frame(&mut write_half, &request_frame(42, &example_request())).unwrap();
        let response = reader.read_frame().unwrap().expect("a response frame");
        let json = Json::parse(&response).unwrap();
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(42));
        assert_eq!(json.get("valid").and_then(Json::as_bool), Some(true));
        assert!(json.get("error").is_none());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn ping_pong_and_graceful_inband_shutdown() {
        let handle = small_daemon();
        let (mut reader, mut write_half) = connect(&handle);
        write_frame(&mut write_half, r#"{"op":"ping"}"#).unwrap();
        let pong = Json::parse(&reader.read_frame().unwrap().unwrap()).unwrap();
        assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
        write_frame(&mut write_half, r#"{"op":"shutdown"}"#).unwrap();
        let ack = Json::parse(&reader.read_frame().unwrap().unwrap()).unwrap();
        assert_eq!(ack.get("op").and_then(Json::as_str), Some("shutting_down"));
        assert!(handle.is_shutting_down());
        handle.join();
    }

    #[test]
    fn full_queue_answers_queue_full_instead_of_hanging() {
        // Capacity 1 and a paused solver: park a slow job, then overflow.
        let handle = Daemon::start(DaemonConfig {
            queue_capacity: 1,
            batch_max: 1,
            threads: 1,
            ..DaemonConfig::default()
        })
        .expect("daemon start");
        let (mut reader, mut write_half) = connect(&handle);
        // A slow head job parks the solver thread, then a pipelined burst
        // far beyond capacity arrives while it runs: the daemon must answer
        // every frame (reject or report) immediately, never hang.
        let slow = crate::service::generated_request(3000, 1);
        write_frame(&mut write_half, &request_frame(0, &slow)).unwrap();
        let burst = 12;
        for id in 1..=burst {
            write_frame(&mut write_half, &request_frame(id, &example_request())).unwrap();
        }
        let mut reports = 0usize;
        let mut queue_full = 0usize;
        for _ in 0..=burst {
            let frame = loop {
                match reader.read_frame() {
                    Ok(Some(frame)) => break frame,
                    Ok(None) => panic!("connection closed early"),
                    Err(e) if e.is_retryable() => continue,
                    Err(e) => panic!("read failed: {e}"),
                }
            };
            let json = Json::parse(&frame).unwrap();
            match json.get("error") {
                Some(error) => {
                    assert_eq!(
                        error.get("code").and_then(Json::as_str),
                        Some("queue_full"),
                        "{frame}"
                    );
                    queue_full += 1;
                }
                None => reports += 1,
            }
        }
        assert_eq!(reports + queue_full, burst as usize + 1);
        assert!(reports >= 1, "at least the parked job must solve");
        assert!(queue_full >= 1, "the burst must overflow the 1-slot queue");
        handle.shutdown();
        handle.join();
    }
}
