//! Campaign harness reproducing the evaluation section of the paper.
//!
//! Every table and figure of Section 6 has a corresponding entry point here
//! and a thin binary under `src/bin/` that prints the regenerated series as
//! CSV (the paper plots them with matplotlib; the *shape* of the series —
//! who wins, where the heuristics start failing — is what `EXPERIMENTS.md`
//! records and compares):
//!
//! | Paper artefact | Module function | Binary |
//! |---|---|---|
//! | Table 1 (kernel timings) | [`table1::rows`] | `table1` |
//! | Figure 10 (SmallRandSet vs optimal) | [`figures::fig10`] | `fig10` |
//! | Figure 11 (single small DAG) | [`figures::fig11`] | `fig11` |
//! | Figure 12 (LargeRandSet) | [`figures::fig12`] | `fig12` |
//! | Figure 13 (single large DAG) | [`figures::fig13`] | `fig13` |
//! | Figure 14 (LU 13×13) | [`figures::fig14`] | `fig14` |
//! | Figure 15 (Cholesky 13×13) | [`figures::fig15`] | `fig15` |
//!
//! The default configurations are scaled down so that every binary and every
//! benchmark completes in seconds on a laptop; the `--full` flag of each
//! binary restores the paper's instance sizes. The scaling is always printed,
//! never silent.

#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod csv;
pub mod daemon;
pub mod figures;
pub mod loadgen;
pub mod min_memory;
pub mod service;
pub mod sweep;
pub mod table1;

pub use campaign::{
    run_normalized_campaign, run_streaming_campaign, CampaignAccumulator, CampaignConfig,
    CampaignIo, CampaignPoint, CampaignRun, MethodAggregate,
};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle};
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use min_memory::{minimum_memory, minimum_memory_table, MinMemory};
pub use service::{
    example_request, generated_request, CodedError, ErrorCode, MemberOutcome, Service,
    ServiceError, SolveReport, SolveRequest, PROTOCOL_VERSION,
};
pub use sweep::{
    heft_reference, memory_oblivious_result, sweep_absolute, sweep_absolute_streaming, Reference,
    SweepPoint,
};
