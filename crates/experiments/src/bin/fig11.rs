//! Reproduces Figure 11: makespan versus absolute memory bound for one
//! SmallRandSet DAG (the paper's Figure 8 DAG) — HEFT, MinMin, MemHEFT,
//! MemMinMin and the makespan lower bound. Pass `--dump-dot` to also print
//! the DAG in DOT format (Figure 8).

use mals_dag::dot;
use mals_experiments::cli;
use mals_experiments::csv::sweep_to_csv;
use mals_experiments::figures::{fig11, SingleRandConfig};
use mals_gen::SetParams;
use mals_platform::Platform;

fn main() {
    let options = cli::parse_or_exit();
    cli::reject_campaign_flags(&options, "fig11");
    let mut config = if options.full {
        SingleRandConfig::fig11_paper()
    } else {
        SingleRandConfig::fig11_default()
    };
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    if cli::handle_lp_export(&options, &Platform::single_pair(0.0, 0.0), || {
        SetParams::small_rand()
            .scaled(1, config.n_tasks)
            .generate()
            .pop()
            .expect("one DAG requested")
    }) {
        return;
    }
    config.exact_solver = options.exact_solver(None, config.n_tasks, "the sweep DAG");
    eprintln!(
        "# Figure 11 — one SmallRandSet DAG of {} tasks (P1 = P2 = 1){}",
        config.n_tasks,
        match &config.exact_solver {
            Some(key) => format!(", optimal series via {}", cli::solver_display_name(key)),
            None => String::new(),
        }
    );
    let sweep = fig11(&config);
    if options.dump_dot {
        println!("{}", dot::to_dot(&sweep.graph));
    }
    eprintln!(
        "# HEFT memory requirement: {} | makespan lower bound: {}",
        sweep.heft_memory, sweep.lower_bound
    );
    print!("{}", sweep_to_csv(&sweep.points));
    println!("lower_bound,{}", sweep.lower_bound);
}
