//! Online rolling-horizon replay driver: generates (or loads) an arrival
//! trace for a random DAG, replays it through the event-driven online
//! scheduler, and prints a JSON summary comparing the online schedule
//! against the static baseline.
//!
//! ```text
//! replay --tasks N [--seed S] [--arrival poisson|bursty|at-once]
//!        [--rate R] [--batch B] [--solver memheft|memminmin]
//!        [--policy every-arrival|every-k:K|horizon:W] [--threads T]
//!        [--trace FILE] [--save-trace FILE] [--no-static] [--compact]
//! ```
//!
//! The instance is the same shape as `schedule --gen-tasks`: a
//! LargeRandSet-shaped daggen DAG with both memory bounds pinned at the
//! memory-oblivious HEFT schedule's own peak (the `α = 1` campaign point).
//! `--trace` replays a previously saved trace instead of generating one;
//! `--save-trace` writes the generated trace so a run can be reproduced or
//! replayed under a different policy.
//!
//! The summary includes the static solver's makespan and memory peaks (the
//! clairvoyant baseline that sees the whole DAG at `t = 0`), the online
//! makespan and peaks, and the re-planning cost accounting (`replans`,
//! total / max / mean wall-clock per pass). `"valid"` reports the simulator
//! validation verdict of the online schedule — the CI smoke step greps it.
//!
//! Exit status: 0 on success, 1 when the replay fails (infeasible instance,
//! invalid trace), 2 on bad usage.

use mals_experiments::heft_reference;
use mals_gen::{daggen, ArrivalProcess, ArrivalTrace, DaggenParams, WeightRanges};
use mals_platform::Platform;
use mals_sched::{
    online, MemHeft, MemMinMin, OnlineConfig, OnlineFlavor, ReplanPolicy, Scheduler, SolveCtx,
    SolveLimits,
};
use mals_sim::{memory_peaks, validate, MemoryPeaks};
use mals_util::{Json, ParallelConfig, Pcg64, WorkerPool};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("replay: {message}");
    std::process::exit(2);
}

struct Args {
    tasks: usize,
    seed: u64,
    arrival: String,
    rate: f64,
    batch: usize,
    solver: String,
    policy: ReplanPolicy,
    threads: usize,
    trace: Option<String>,
    save_trace: Option<String>,
    compare_static: bool,
    compact: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        tasks: 1000,
        seed: 1,
        arrival: "poisson".into(),
        rate: 50.0,
        batch: 16,
        solver: "memheft".into(),
        policy: ReplanPolicy::EveryArrival,
        threads: 1,
        trace: None,
        save_trace: None,
        compare_static: true,
        compact: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tasks" => {
                args.tasks = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| fail("--tasks expects a positive integer"))
            }
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--seed expects an integer"))
            }
            "--arrival" => {
                args.arrival = iter
                    .next()
                    .filter(|v| matches!(v.as_str(), "poisson" | "bursty" | "at-once"))
                    .unwrap_or_else(|| fail("--arrival expects poisson, bursty or at-once"))
                    .clone()
            }
            "--rate" => {
                args.rate = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0 && r.is_finite())
                    .unwrap_or_else(|| fail("--rate expects a positive number"))
            }
            "--batch" => {
                args.batch = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&b| b > 0)
                    .unwrap_or_else(|| fail("--batch expects a positive integer"))
            }
            "--solver" => {
                args.solver = iter
                    .next()
                    .filter(|v| matches!(v.as_str(), "memheft" | "memminmin"))
                    .unwrap_or_else(|| fail("--solver expects memheft or memminmin"))
                    .clone()
            }
            "--policy" => {
                args.policy = iter
                    .next()
                    .and_then(|v| ReplanPolicy::parse(v))
                    .unwrap_or_else(|| {
                        fail("--policy expects every-arrival, every-k:K or horizon:W")
                    })
            }
            "--threads" => {
                args.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .unwrap_or_else(|| fail("--threads expects a positive integer"))
            }
            "--trace" => {
                args.trace = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--trace expects a file path"))
                        .clone(),
                )
            }
            "--save-trace" => {
                args.save_trace = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--save-trace expects a file path"))
                        .clone(),
                )
            }
            "--no-static" => args.compare_static = false,
            "--compact" => args.compact = true,
            "--help" | "-h" => {
                println!(
                    "usage: replay --tasks N [--seed S] [--arrival poisson|bursty|at-once] \
                     [--rate R] [--batch B]\n       [--solver memheft|memminmin] \
                     [--policy every-arrival|every-k:K|horizon:W] [--threads T]\n       \
                     [--trace FILE] [--save-trace FILE] [--no-static] [--compact]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown argument `{other}` (try --help)")),
        }
    }
    args
}

fn peaks_json(peaks: &MemoryPeaks) -> Json {
    Json::obj([
        ("blue", Json::Num(peaks.blue)),
        ("red", Json::Num(peaks.red)),
    ])
}

fn main() {
    let args = parse_args();

    // The α = 1 instance: daggen DAG, bounds at HEFT's own memory peak.
    let mut rng = Pcg64::new(args.seed);
    let graph = daggen::generate(
        &DaggenParams::large_rand().with_size(args.tasks),
        &WeightRanges::large_rand(),
        &mut rng,
    );
    let platform = Platform::single_pair(0.0, 0.0);
    let reference = heft_reference(&graph, &platform);
    let bound = reference.heft_peaks.max();
    let platform = platform.with_memory_bounds(bound, bound);

    let trace = match &args.trace {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
            ArrivalTrace::parse(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
        }
        None => {
            let process = match args.arrival.as_str() {
                "poisson" => ArrivalProcess::Poisson { rate: args.rate },
                "bursty" => ArrivalProcess::Bursty {
                    batch: args.batch,
                    rate: args.rate,
                },
                _ => ArrivalProcess::AtOnce,
            };
            process.generate(&graph, args.seed)
        }
    };
    if let Some(path) = &args.save_trace {
        std::fs::write(path, trace.to_json().to_pretty())
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
    }

    let flavor = OnlineFlavor::parse(&args.solver).expect("validated by parse_args");
    let config = OnlineConfig::new(flavor, args.policy);
    let pool =
        (args.threads > 1).then(|| WorkerPool::new(ParallelConfig::with_threads(args.threads)));
    let ctx = match &pool {
        Some(pool) => SolveCtx::pooled(SolveLimits::default(), pool),
        None => SolveCtx::sequential(),
    };

    let wall = std::time::Instant::now();
    let outcome = match online::replay(&graph, &platform, &trace, config, &ctx) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("replay: {e}");
            std::process::exit(1);
        }
    };
    let wall = wall.elapsed();

    let report = validate(&graph, &platform, &outcome.schedule);
    let online_peaks = memory_peaks(&graph, &platform, &outcome.schedule);

    let mut fields = vec![
        ("valid".to_string(), Json::Bool(report.is_valid())),
        ("tasks".to_string(), Json::Num(graph.n_tasks() as f64)),
        ("seed".to_string(), Json::Num(args.seed as f64)),
        (
            "arrival".to_string(),
            Json::str(if args.trace.is_some() {
                "trace-file"
            } else {
                &args.arrival
            }),
        ),
        ("solver".to_string(), Json::str(&args.solver)),
        ("policy".to_string(), Json::str(args.policy.key())),
        ("threads".to_string(), Json::Num(args.threads as f64)),
        ("makespan".to_string(), Json::Num(outcome.makespan)),
        ("peaks".to_string(), peaks_json(&online_peaks)),
        ("virtual_end".to_string(), Json::Num(outcome.virtual_end)),
        ("events".to_string(), Json::Num(outcome.events as f64)),
        ("arrivals".to_string(), Json::Num(outcome.arrivals as f64)),
        (
            "completions".to_string(),
            Json::Num(outcome.completions as f64),
        ),
        ("replans".to_string(), Json::Num(outcome.replans as f64)),
        (
            "replan_total_ms".to_string(),
            Json::Num(outcome.replan_total.as_secs_f64() * 1e3),
        ),
        (
            "replan_max_ms".to_string(),
            Json::Num(outcome.replan_max.as_secs_f64() * 1e3),
        ),
        (
            "replan_mean_ms".to_string(),
            Json::Num(outcome.replan_mean_secs() * 1e3),
        ),
        ("wall_ms".to_string(), Json::Num(wall.as_secs_f64() * 1e3)),
    ];

    if args.compare_static {
        let result = match flavor {
            OnlineFlavor::MemHeft => MemHeft::new().schedule(&graph, &platform),
            OnlineFlavor::MemMinMin => MemMinMin::new().schedule(&graph, &platform),
        };
        let schedule = result.expect("static solver feasible at the α = 1 bound");
        let static_peaks = memory_peaks(&graph, &platform, &schedule);
        let static_makespan = schedule.makespan();
        fields.push(("static_makespan".to_string(), Json::Num(static_makespan)));
        fields.push(("static_peaks".to_string(), peaks_json(&static_peaks)));
        fields.push((
            "makespan_ratio".to_string(),
            Json::Num(outcome.makespan / static_makespan),
        ));
    }

    let summary = Json::Obj(std::mem::take(&mut fields));
    if args.compact {
        println!("{}", summary.to_compact());
    } else {
        print!("{}", summary.to_pretty());
    }
    if !report.is_valid() {
        eprintln!(
            "replay: online schedule failed validation: {:?}",
            report.errors
        );
        std::process::exit(1);
    }
}
