//! Minimum-memory break-even points: for each workload, the smallest
//! symmetric memory bound at which every scheduler still produces a schedule
//! (the quantities the paper reads off the left ends of Figures 11–15, e.g.
//! "MemMinMin fails to schedule the LU factorisation below 155 tiles").
//!
//! With `--exact-backend {bb,milp}` an exact solver joins the scheduler
//! table, reporting the break-even point of *optimal* scheduling (use small
//! `--tasks` / `--tiles`: the exact solvers bisect over many solves). With
//! `--exact-backend lp-export` the random workload's § 4 ILP is printed in
//! CPLEX LP format instead.

use mals_exact::{solver_registry, ExactBackendKind};
use mals_experiments::cli;
use mals_experiments::heft_reference;
use mals_experiments::min_memory::minimum_memory_table;
use mals_gen::{cholesky_dag, lu_dag, KernelCosts, SetParams};
use mals_platform::Platform;
use mals_sched::{SolveCtx, SolveLimits, Solver};

fn main() {
    let options = cli::parse_or_exit();
    cli::reject_campaign_flags(&options, "minmem");
    let tiles = options.tiles.unwrap_or(if options.full { 13 } else { 6 });
    let rand_tasks = options.tasks.unwrap_or(if options.full { 30 } else { 20 });

    let costs = KernelCosts::table1();
    let workloads: Vec<(String, mals_dag::TaskGraph, Platform)> = vec![
        (
            format!("random_{rand_tasks}_tasks"),
            SetParams::small_rand()
                .scaled(1, rand_tasks)
                .generate()
                .pop()
                .unwrap(),
            Platform::single_pair(0.0, 0.0),
        ),
        (
            format!("lu_{tiles}x{tiles}"),
            lu_dag(tiles, &costs),
            Platform::mirage(0.0, 0.0),
        ),
        (
            format!("cholesky_{tiles}x{tiles}"),
            cholesky_dag(tiles, &costs),
            Platform::mirage(0.0, 0.0),
        ),
    ];

    if options.exact_backend == Some(ExactBackendKind::LpExport) {
        let (name, graph, platform) = &workloads[0];
        eprintln!("# minmem: exporting the `{name}` workload (other workloads skipped)");
        cli::print_ilp_export(graph, platform);
        return;
    }

    // One registry lookup covers the heuristics and the optional exact
    // solver; the MILP ceiling warning rides the shared flag helper (every
    // workload gets its own warning line when it exceeds the ceiling).
    let registry = solver_registry();
    let mut exact_key = None;
    for (name, graph, _) in &workloads {
        exact_key = options
            .exact_solver(None, graph.n_tasks(), name)
            .or(exact_key);
    }
    let memheft = registry.build("memheft").unwrap();
    let memminmin = registry.build("memminmin").unwrap();
    let exact = exact_key.map(|key| registry.build(&key).expect("registry key"));
    let mut solvers: Vec<&dyn Solver> = vec![&memheft, &memminmin];
    if let Some(s) = &exact {
        solvers.push(s);
    }

    println!("workload,scheduler,min_memory,makespan_at_min,heft_memory,heft_makespan");
    let parallel = options.parallel_or_sequential();
    let pool = (parallel.resolved_threads() > 1).then(|| mals_util::WorkerPool::new(parallel));
    let ctx = SolveCtx {
        limits: SolveLimits::with_node_limit(200_000),
        pool: pool.as_ref(),
        ..Default::default()
    };
    for (name, graph, platform) in &workloads {
        let reference = heft_reference(graph, platform);
        let upper = (reference.heft_peaks.max() * 1.5).max(1.0);
        for entry in minimum_memory_table(graph, platform, &solvers, &ctx, upper, 0.5) {
            println!(
                "{name},{},{},{},{},{}",
                entry.name,
                entry
                    .min_memory
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "na".into()),
                entry
                    .makespan_at_min
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "na".into()),
                reference.heft_peaks.max(),
                reference.heft_makespan
            );
        }
    }
}
