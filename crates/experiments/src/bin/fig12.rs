//! Reproduces Figure 12: LargeRandSet — normalised makespan and success rate
//! of MemHEFT and MemMinMin versus the normalised memory bound.
//!
//! This is the scaling campaign of the workspace: it streams DAG by DAG from
//! the set's seeds (constant memory in the number of DAGs) and supports
//! `--checkpoint PATH` / `--resume` / `--stop-after N` for long sweeps — a
//! killed run resumed from its checkpoint prints byte-identical CSV.

use mals_experiments::cli;
use mals_experiments::csv::campaign_to_csv;
use mals_experiments::figures::{fig12_with_io, Fig12Config};
use mals_gen::SetParams;
use mals_platform::Platform;

fn main() {
    let options = cli::parse_or_exit();
    let mut config = if options.full {
        Fig12Config::paper()
    } else {
        Fig12Config::default()
    };
    if let Some(dags) = options.dags {
        config.n_dags = dags;
    }
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    if cli::handle_lp_export(&options, &Platform::single_pair(0.0, 0.0), || {
        SetParams::large_rand()
            .scaled(config.n_dags, config.n_tasks)
            .generate()
            .into_iter()
            .next()
            .expect("non-empty set")
    }) {
        return;
    }
    config.exact_solver = options.exact_solver(None, config.n_tasks, "each campaign DAG");
    eprintln!(
        "# Figure 12 — LargeRandSet: {} DAGs of {} tasks{}{}",
        config.n_dags,
        config.n_tasks,
        match &config.exact_solver {
            Some(key) => format!(
                ", optimal series via {} (best effort)",
                cli::solver_display_name(key)
            ),
            None => String::new(),
        },
        if options.full {
            " (paper scale)"
        } else {
            " (scaled down; use --full for the paper scale)"
        }
    );
    let run = fig12_with_io(&config, &options.campaign_io()).unwrap_or_else(|message| {
        eprintln!("fig12: {message}");
        std::process::exit(2);
    });
    match run.points {
        Some(points) => print!("{}", campaign_to_csv(&points)),
        None => eprintln!(
            "# stopped after {}/{} dags; resume with --checkpoint <same path> --resume",
            run.dags_done, run.total_dags
        ),
    }
}
