//! Reproduces Figure 12: LargeRandSet — normalised makespan and success rate
//! of MemHEFT and MemMinMin versus the normalised memory bound.

use mals_experiments::cli;
use mals_experiments::csv::campaign_to_csv;
use mals_experiments::figures::{fig12, Fig12Config};
use mals_gen::SetParams;
use mals_platform::Platform;

fn main() {
    let options = cli::parse_or_exit();
    let mut config = if options.full {
        Fig12Config::paper()
    } else {
        Fig12Config::default()
    };
    if let Some(dags) = options.dags {
        config.n_dags = dags;
    }
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    if cli::handle_lp_export(&options, &Platform::single_pair(0.0, 0.0), || {
        SetParams::large_rand()
            .scaled(config.n_dags, config.n_tasks)
            .generate()
            .into_iter()
            .next()
            .expect("non-empty set")
    }) {
        return;
    }
    config.exact_solver = options.exact_solver(None, config.n_tasks, "each campaign DAG");
    eprintln!(
        "# Figure 12 — LargeRandSet: {} DAGs of {} tasks{}{}",
        config.n_dags,
        config.n_tasks,
        match &config.exact_solver {
            Some(key) => format!(
                ", optimal series via {} (best effort)",
                cli::solver_display_name(key)
            ),
            None => String::new(),
        },
        if options.full {
            " (paper scale)"
        } else {
            " (scaled down; use --full for the paper scale)"
        }
    );
    let points = fig12(&config);
    print!("{}", campaign_to_csv(&points));
}
