//! Reproduces Figure 12: LargeRandSet — normalised makespan and success rate
//! of MemHEFT and MemMinMin versus the normalised memory bound.

use mals_experiments::cli;
use mals_experiments::csv::campaign_to_csv;
use mals_experiments::figures::{fig12, Fig12Config};

fn main() {
    let options = cli::parse_or_exit();
    let mut config = if options.full {
        Fig12Config::paper()
    } else {
        Fig12Config::default()
    };
    if let Some(dags) = options.dags {
        config.n_dags = dags;
    }
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    eprintln!(
        "# Figure 12 — LargeRandSet: {} DAGs of {} tasks{}",
        config.n_dags,
        config.n_tasks,
        if options.full {
            " (paper scale)"
        } else {
            " (scaled down; use --full for the paper scale)"
        }
    );
    let points = fig12(&config);
    print!("{}", campaign_to_csv(&points));
}
