//! The embeddable scheduling endpoint: reads a JSON `SolveRequest` from a
//! file (or stdin with `-`), solves it through the unified solver registry,
//! and prints the JSON `SolveReport` on stdout.
//!
//! ```text
//! schedule REQUEST.json [--solver NAME] [--threads N] [--seed N] [--compact]
//! schedule -                      # read the request from stdin
//! schedule --print-request        # emit a ready-to-edit example request
//! schedule --list-solvers         # list the registry keys
//! ```
//!
//! The flags override the corresponding request fields, so one request file
//! can be replayed against every registered solver:
//!
//! ```text
//! schedule --print-request > request.json
//! schedule request.json --solver memheft
//! schedule request.json --solver milp
//! ```
//!
//! Exit status: 0 on success (including infeasible instances — that is a
//! valid answer), 2 on a bad request / unknown solver / I/O failure.

use mals_exact::solver_registry;
use mals_experiments::service::{example_request, solve_request, SolveRequest};
use std::io::Read;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("schedule: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut solver: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut compact = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--print-request" => {
                print!("{}", example_request().to_json().to_pretty());
                return;
            }
            "--list-solvers" => {
                for entry in solver_registry().entries() {
                    println!("{:<16} {}", entry.info.key, entry.info.summary);
                }
                return;
            }
            "--solver" => {
                solver = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--solver expects a registry key"))
                        .clone(),
                )
            }
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--threads expects an integer")),
                )
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--seed expects an integer")),
                )
            }
            "--compact" => compact = true,
            "--help" | "-h" => {
                // Requested help is a success, unlike the exit-2 error path.
                println!(
                    "usage: schedule REQUEST.json|- [--solver NAME] [--threads N] [--seed N] \
                     [--compact]\n       schedule --print-request | --list-solvers"
                );
                return;
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => fail(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let Some(path) = path else {
        fail("expected a request file (or `-` for stdin); try --print-request for a template");
    };
    let text = if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .unwrap_or_else(|e| fail(format!("cannot read stdin: {e}")));
        buffer
    } else {
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
    };

    let mut request = SolveRequest::parse(&text).unwrap_or_else(|e| fail(e));
    if let Some(solver) = solver {
        request.solver = solver;
    }
    if let Some(threads) = threads {
        request.threads = threads;
    }
    if seed.is_some() {
        request.seed = seed;
    }

    let report = solve_request(&request).unwrap_or_else(|e| fail(e));
    if compact {
        println!("{}", report.to_json().to_compact());
    } else {
        print!("{}", report.to_json().to_pretty());
    }
}
