//! The embeddable scheduling endpoint: reads a JSON `SolveRequest` from a
//! file (or stdin with `-`), solves it through the unified solver registry,
//! and prints the JSON `SolveReport` on stdout.
//!
//! ```text
//! schedule REQUEST.json [--solver NAME] [--online] [--threads N] [--seed N] [--compact]
//! schedule -                      # read the request from stdin
//! schedule --gen-tasks N [--gen-seed S] [--solver NAME] ...
//!                                 # solve a generated daggen instance
//! schedule ... --solver portfolio [--solvers a,b,c] [--deadline-ms N]
//!                                 # race a solver portfolio (anytime)
//! schedule --print-request        # emit a ready-to-edit example request
//! schedule --list-solvers         # list the registry keys
//! ```
//!
//! `--gen-tasks` builds a LargeRandSet-shaped random DAG of `N` tasks
//! in-process (no request file needed) with both memory bounds pinned at the
//! memory-oblivious HEFT schedule's own requirement — the `α = 1` campaign
//! point, where MemHEFT is guaranteed feasible. This is the CI large-DAG
//! smoke path: one 10⁴-task instance through any registered solver.
//!
//! The flags override the corresponding request fields, so one request file
//! can be replayed against every registered solver:
//!
//! ```text
//! schedule --print-request > request.json
//! schedule request.json --solver memheft
//! schedule request.json --solver milp
//! ```
//!
//! Exit status: 0 on success (including infeasible instances — that is a
//! valid answer), 2 on a bad request / unknown solver / I/O failure.

use mals_exact::solver_registry;
use mals_experiments::service::{example_request, generated_request, Service, SolveRequest};
use std::io::Read;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("schedule: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut solver: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut gen_tasks: Option<usize> = None;
    let mut gen_seed: Option<u64> = None;
    let mut solvers: Option<Vec<String>> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut online = false;
    let mut compact = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--print-request" => {
                print!("{}", example_request().to_json().to_pretty());
                return;
            }
            "--list-solvers" => {
                for entry in solver_registry().entries() {
                    println!("{:<16} {}", entry.info.key, entry.info.summary);
                }
                return;
            }
            "--solver" => {
                solver = Some(
                    iter.next()
                        .unwrap_or_else(|| fail("--solver expects a registry key"))
                        .clone(),
                )
            }
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--threads expects an integer")),
                )
            }
            "--seed" => {
                seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--seed expects an integer")),
                )
            }
            "--gen-tasks" => {
                gen_tasks = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| fail("--gen-tasks expects a positive integer")),
                )
            }
            "--gen-seed" => {
                gen_seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--gen-seed expects an integer")),
                )
            }
            "--solvers" => {
                solvers = Some(
                    iter.next()
                        .map(|v| {
                            v.split(',')
                                .map(str::trim)
                                .filter(|s| !s.is_empty())
                                .map(str::to_string)
                                .collect::<Vec<_>>()
                        })
                        .filter(|keys| !keys.is_empty())
                        .unwrap_or_else(|| {
                            fail("--solvers expects a comma-separated list of registry keys")
                        }),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--deadline-ms expects an integer")),
                )
            }
            "--online" => online = true,
            "--compact" => compact = true,
            "--help" | "-h" => {
                // Requested help is a success, unlike the exit-2 error path.
                println!(
                    "usage: schedule REQUEST.json|- [--solver NAME] [--online] [--threads N] \
                     [--seed N] [--solvers a,b,c] [--deadline-ms N] [--compact]\n       schedule \
                     --gen-tasks N [--gen-seed S] [--solver NAME] ...\n       schedule \
                     --print-request | --list-solvers"
                );
                return;
            }
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => fail(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let mut request = if let Some(tasks) = gen_tasks {
        if path.is_some() {
            fail("--gen-tasks replaces the request file; pass one or the other");
        }
        generated_request(tasks, gen_seed.unwrap_or(1))
    } else {
        if gen_seed.is_some() {
            fail("--gen-seed only applies together with --gen-tasks");
        }
        let Some(path) = path else {
            fail("expected a request file (or `-` for stdin); try --print-request for a template");
        };
        let text = if path == "-" {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .unwrap_or_else(|e| fail(format!("cannot read stdin: {e}")));
            buffer
        } else {
            std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
        };
        SolveRequest::parse(&text).unwrap_or_else(|e| fail(e))
    };
    if let Some(solver) = solver {
        request.solver = solver;
    }
    if let Some(threads) = threads {
        request.threads = threads;
    }
    if seed.is_some() {
        request.seed = seed;
    }
    if let Some(solvers) = solvers {
        request.solvers = solvers;
    }
    if online && !request.solver.starts_with("online-") {
        // Route the solve through the online replay engine (whole DAG at
        // t = 0, re-plan on every arrival) — only the memory-aware
        // heuristics have online counterparts.
        request.solver = format!("online-{}", request.solver);
    }
    if deadline_ms.is_some() {
        request.deadline_ms = deadline_ms;
    }

    let report = Service::for_request(&request)
        .try_handle(&request)
        .unwrap_or_else(|e| fail(e));
    if compact {
        println!("{}", report.to_json().to_compact());
    } else {
        print!("{}", report.to_json().to_pretty());
    }
}
