//! Reproduces Table 1: the kernel-cost model used by the linear-algebra
//! experiments (CPU times from the paper's MAGMA measurements, accelerator
//! times from the documented speedup factors).

use mals_experiments::table1;
use mals_gen::KernelCosts;

fn main() {
    eprintln!("# Table 1 — linear-algebra kernel running times (192x192 tiles, milliseconds)");
    print!("{}", table1::to_csv(&KernelCosts::table1()));
}
