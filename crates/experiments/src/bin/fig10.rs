//! Reproduces Figure 10: SmallRandSet — normalised makespan and success rate
//! of MemHEFT, MemMinMin and the optimal schedule versus the normalised
//! memory bound, on a 1 blue + 1 red processor platform.

use mals_exact::ExactBackendKind;
use mals_experiments::cli;
use mals_experiments::csv::campaign_to_csv;
use mals_experiments::figures::{fig10_with_io, Fig10Config};
use mals_gen::SetParams;
use mals_platform::Platform;

fn main() {
    let options = cli::parse_or_exit();
    let mut config = if options.full {
        Fig10Config::paper()
    } else {
        Fig10Config::default()
    };
    if let Some(dags) = options.dags {
        config.n_dags = dags;
    }
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    // `lp-export` prints the first DAG of the campaign set instead of solving.
    if cli::handle_lp_export(&options, &Platform::single_pair(0.0, 0.0), || {
        SetParams::small_rand()
            .scaled(config.n_dags, config.n_tasks)
            .generate()
            .into_iter()
            .next()
            .expect("non-empty set")
    }) {
        return;
    }
    if let Some(key) = options.exact_solver(
        Some(ExactBackendKind::BranchAndBound),
        config.n_tasks,
        "each campaign DAG",
    ) {
        config.exact_solver = key;
    }
    eprintln!(
        "# Figure 10 — SmallRandSet: {} DAGs of {} tasks, {} node limit {}{}",
        config.n_dags,
        config.n_tasks,
        cli::solver_display_name(&config.exact_solver),
        config.optimal_node_limit,
        if options.full {
            " (paper scale)"
        } else {
            " (scaled down; use --full for the paper scale)"
        }
    );
    let run = fig10_with_io(&config, &options.campaign_io()).unwrap_or_else(|message| {
        eprintln!("fig10: {message}");
        std::process::exit(2);
    });
    match run.points {
        Some(points) => print!("{}", campaign_to_csv(&points)),
        None => eprintln!(
            "# stopped after {}/{} dags; resume with --checkpoint <same path> --resume",
            run.dags_done, run.total_dags
        ),
    }
}
