//! `malsd` — the persistent scheduling daemon binary.
//!
//! ```text
//! malsd [--addr HOST:PORT] [--queue N] [--batch N] [--threads N]
//! ```
//!
//! Binds the address (default `127.0.0.1:0` — a free port), prints
//! `listening on HOST:PORT` on stdout (scripts parse this line to find the
//! port), and serves the newline-delimited JSON protocol documented in
//! `mals_experiments::daemon` until SIGTERM / SIGINT (ctrl-c) or an in-band
//! `{"op":"shutdown"}` frame starts a graceful shutdown: stop accepting,
//! refuse new admissions with `queue_full`, drain queued work, exit 0.

use mals_experiments::daemon::{Daemon, DaemonConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Tripped by the signal handler; the main loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed atomic store, nothing else.
    SIGNALLED.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via libc's
/// `signal`, which std already links — no new dependency.
fn install_signal_handlers() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    for signum in [2, 15] {
        unsafe {
            signal(signum, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("malsd: {message}");
    std::process::exit(2);
}

fn main() {
    let mut config = DaemonConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| fail(format!("{arg} expects {what}")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => config.addr = value("HOST:PORT"),
            "--queue" => {
                config.queue_capacity = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--queue expects a positive integer"))
            }
            "--batch" => {
                config.batch_max = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--batch expects a positive integer"))
            }
            "--threads" => {
                config.threads = value("an integer")
                    .parse()
                    .unwrap_or_else(|_| fail("--threads expects an integer"))
            }
            "--help" | "-h" => {
                println!("usage: malsd [--addr HOST:PORT] [--queue N] [--batch N] [--threads N]");
                return;
            }
            other => fail(format!("unknown argument `{other}` (try --help)")),
        }
    }

    install_signal_handlers();
    let handle = Daemon::start(config).unwrap_or_else(|e| fail(format!("cannot bind: {e}")));
    // Scripts parse this exact line to discover the port (`--addr :0`).
    println!("listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !SIGNALLED.load(Ordering::Relaxed) && !handle.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("malsd: shutting down (draining queued work)");
    handle.shutdown();
    handle.join();
}
