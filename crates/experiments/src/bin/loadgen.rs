//! `loadgen` — load generator for the `malsd` daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--connections N] [--requests N] [--tasks N]
//!         [--mix N] [--solver KEY] [--deadline-ms N] [--seed N]
//!         [--arrival-rate R] [--out FILE] [--max-p99-ms MS] [--strict]
//! ```
//!
//! Closed loop by default (each connection waits for the response before
//! the next send). `--arrival-rate R` switches to an open loop: R total
//! requests/second offered across the connections with Poisson inter-send
//! gaps, regardless of response progress.
//!
//! Prints the aggregated latency/outcome report as pretty JSON on stdout
//! (and to `--out FILE` when given). Exit status 0 on a clean run; with
//! `--strict`, exits 1 when any response was mismatched or lost, or when
//! `--max-p99-ms` is given and the observed p99 exceeds it — the CI
//! daemon-smoke gate.

use mals_experiments::loadgen::{run_loadgen, LoadgenConfig};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("loadgen: {message}");
    std::process::exit(2);
}

fn main() {
    let mut config = LoadgenConfig::default();
    let mut out: Option<String> = None;
    let mut max_p99_ms: Option<f64> = None;
    let mut strict = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| fail(format!("{arg} expects {what}")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => config.addr = value("HOST:PORT"),
            "--connections" => {
                config.connections = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--connections expects a positive integer"))
            }
            "--requests" => {
                config.requests_per_conn = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--requests expects a positive integer"))
            }
            "--tasks" => {
                config.tasks = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--tasks expects a positive integer"))
            }
            "--mix" => {
                config.mix = value("a positive integer")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| fail("--mix expects a positive integer"))
            }
            "--solver" => config.solver = value("a registry key"),
            "--deadline-ms" => {
                config.deadline_ms = Some(
                    value("an integer")
                        .parse()
                        .unwrap_or_else(|_| fail("--deadline-ms expects an integer")),
                )
            }
            "--seed" => {
                config.seed = value("an integer")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"))
            }
            "--arrival-rate" => {
                config.arrival_rate = Some(
                    value("a positive rate in requests/second")
                        .parse()
                        .ok()
                        .filter(|&r: &f64| r > 0.0 && r.is_finite())
                        .unwrap_or_else(|| {
                            fail("--arrival-rate expects a positive rate in requests/second")
                        }),
                )
            }
            "--out" => out = Some(value("a file path")),
            "--max-p99-ms" => {
                max_p99_ms = Some(
                    value("a number")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-p99-ms expects a number")),
                )
            }
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --addr HOST:PORT [--connections N] [--requests N] \
                     [--tasks N] [--mix N] [--solver KEY] [--deadline-ms N] [--seed N] \
                     [--arrival-rate R] [--out FILE] [--max-p99-ms MS] [--strict]"
                );
                return;
            }
            other => fail(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if config.addr.is_empty() {
        fail("--addr is required (the daemon prints `listening on HOST:PORT`)");
    }

    let report = run_loadgen(&config).unwrap_or_else(|e| fail(format!("cannot connect: {e}")));
    let json = report.to_json();
    print!("{}", json.to_pretty());
    if let Some(path) = out {
        std::fs::write(&path, json.to_pretty())
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
    }

    if strict {
        let mut failures = Vec::new();
        if !report.is_clean() {
            failures.push(format!(
                "not clean: {} ok of {} sent ({} mismatched, {} io errors)",
                report.ok, report.sent, report.mismatched, report.io_errors
            ));
        }
        if let Some(bound) = max_p99_ms {
            if report.p99_ms > bound {
                failures.push(format!(
                    "p99 {:.1} ms exceeds bound {bound:.1} ms",
                    report.p99_ms
                ));
            }
        }
        if !failures.is_empty() {
            for failure in failures {
                eprintln!("loadgen: FAIL: {failure}");
            }
            std::process::exit(1);
        }
        eprintln!("loadgen: strict checks passed");
    }
}
