//! Reproduces Figure 14: makespan versus memory (in tiles) for the tiled LU
//! factorisation on a mirage-like node (12 CPU cores + 3 accelerators).

use mals_experiments::cli;
use mals_experiments::csv::sweep_to_csv;
use mals_experiments::figures::{fig14, LinalgConfig};

fn main() {
    let options = cli::parse_or_exit();
    cli::reject_campaign_flags(&options, "fig14");
    cli::reject_exact_backend(&options, "fig14");
    let mut config = if options.full {
        LinalgConfig::paper()
    } else {
        LinalgConfig::small()
    };
    if let Some(tiles) = options.tiles {
        config.tiles = tiles;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    eprintln!(
        "# Figure 14 — LU factorisation of a {0}x{0} tile matrix on 12 CPUs + 3 accelerators{1}",
        config.tiles,
        if options.full {
            " (paper scale)"
        } else {
            " (scaled down; use --full for 13x13)"
        }
    );
    let sweep = fig14(&config);
    eprintln!(
        "# tasks: {} | HEFT memory requirement: {} tiles",
        sweep.graph.n_tasks(),
        sweep.heft_memory
    );
    print!("{}", sweep_to_csv(&sweep.points));
}
