//! Reproduces Figure 13: makespan versus absolute memory bound for one
//! LargeRandSet DAG (the paper's Figure 9 DAG). Pass `--dump-dot` to also
//! print the DAG in DOT format (Figure 9).

use mals_dag::dot;
use mals_experiments::cli;
use mals_experiments::csv::sweep_to_csv;
use mals_experiments::figures::{fig13, SingleRandConfig};
use mals_gen::SetParams;
use mals_platform::Platform;

fn main() {
    let options = cli::parse_or_exit();
    cli::reject_campaign_flags(&options, "fig13");
    let mut config = if options.full {
        SingleRandConfig::fig13_paper()
    } else {
        SingleRandConfig::fig13_default()
    };
    if let Some(tasks) = options.tasks {
        config.n_tasks = tasks;
    }
    if let Some(parallel) = options.parallel() {
        config.parallel = parallel;
    }
    if cli::handle_lp_export(&options, &Platform::single_pair(0.0, 0.0), || {
        SetParams::large_rand()
            .scaled(1, config.n_tasks)
            .generate()
            .pop()
            .expect("one DAG requested")
    }) {
        return;
    }
    config.exact_solver = options.exact_solver(None, config.n_tasks, "the sweep DAG");
    eprintln!(
        "# Figure 13 — one LargeRandSet DAG of {} tasks (P1 = P2 = 1){}{}",
        config.n_tasks,
        match &config.exact_solver {
            Some(key) => format!(
                ", optimal series via {} (best effort)",
                cli::solver_display_name(key)
            ),
            None => String::new(),
        },
        if options.full {
            ""
        } else {
            " (scaled down; use --full for the paper scale)"
        }
    );
    let sweep = fig13(&config);
    if options.dump_dot {
        println!("{}", dot::to_dot(&sweep.graph));
    }
    eprintln!("# HEFT memory requirement: {}", sweep.heft_memory);
    print!("{}", sweep_to_csv(&sweep.points));
}
