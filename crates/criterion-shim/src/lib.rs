//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API.
//!
//! The MALS workspace must build in environments with no access to a crates
//! registry, so the bench targets under `crates/bench/benches/` depend on
//! this shim (renamed to `criterion` in the workspace manifest) instead of
//! the real crate. It implements exactly the API surface those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then run
//! for up to `sample_size` samples or `measurement_time`, whichever ends
//! first, and the per-iteration mean / min / max are printed.
//!
//! The numbers are honest but unsophisticated (no outlier rejection, no
//! statistical comparison against saved baselines). Once a registry is
//! reachable, point the `criterion` entry of `[workspace.dependencies]` back
//! at crates.io and everything recompiles unchanged.

#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function by [`criterion_group!`].
pub struct Criterion {
    /// Optional substring filter taken from the command line (`cargo bench
    /// -- <filter>`); benchmarks whose id does not contain it are skipped.
    filter: Option<String>,
    /// How many benchmarks the filter let through, so a filter that matches
    /// nothing (e.g. a flag value misread as a filter) is not a silent no-op.
    matched: Cell<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and sometimes harness flags) to the
        // binary; the first free argument, if any, is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            matched: Cell::new(0),
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Some(filter) = &self.filter {
            if self.matched.get() == 0 {
                eprintln!(
                    "warning: benchmark filter `{filter}` matched nothing \
                     (the shim treats the first non-dash argument as a name filter)"
                );
            }
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Measure a closure under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, |b| f(b));
        self
    }

    /// Measure a closure parameterised by `input` under `<group>/<id>`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}

    fn run(&self, full_id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        self.criterion.matched.set(self.criterion.matched.get() + 1);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement_time,
            max_samples: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(full_id);
    }
}

/// Identifies one benchmark inside a group: a name plus a parameter value.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter shown after a `/`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Measure `f` repeatedly until the sample target or time budget is hit.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, not recorded
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, full_id: &str) {
        if self.samples.is_empty() {
            println!("{full_id:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{full_id:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({} samples)",
            self.samples.len()
        );
    }
}

/// Re-export of [`std::hint::black_box`], matching criterion's export.
pub use std::hint::black_box;

/// Bundle benchmark functions into a single runner function, like criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_chain() {
        let mut c = Criterion {
            filter: None,
            matched: Cell::new(0),
        };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up + at least one recorded sample
        assert!(calls >= 2);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            matched: Cell::new(0),
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
        assert_eq!(c.matched.get(), 0);
        c.matched.set(1); // silence the Drop warning for this deliberate no-match
    }

    #[test]
    fn filter_match_is_counted() {
        let mut c = Criterion {
            filter: Some("count".into()),
            matched: Cell::new(0),
        };
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(1)
            .measurement_time(Duration::from_millis(5));
        group.bench_function("counting", |b| b.iter(|| ()));
        assert_eq!(c.matched.get(), 1);
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("memheft", 400).to_string(), "memheft/400");
    }
}
