//! The four experiment DAG sets of the paper (Section 6.1), with documented
//! seeds so every figure-reproduction run sees exactly the same workloads.

use crate::daggen::{self, DaggenParams, WeightRanges};
use crate::linalg::{cholesky_dag, lu_dag, KernelCosts};
use mals_dag::TaskGraph;
use mals_util::Pcg64;

/// Seed of the SmallRandSet campaign (arbitrary but fixed).
pub const SMALL_RAND_SEED: u64 = 0x5EED_0001;
/// Seed of the LargeRandSet campaign (arbitrary but fixed).
pub const LARGE_RAND_SEED: u64 = 0x5EED_0002;

/// Parameters of a random DAG set: how many DAGs, their shape and weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetParams {
    /// Number of DAGs in the set.
    pub count: usize,
    /// DAGGEN shape parameters.
    pub shape: DaggenParams,
    /// Weight ranges.
    pub weights: WeightRanges,
    /// Campaign seed.
    pub seed: u64,
}

impl SetParams {
    /// The paper's SmallRandSet: 50 DAGs of 30 tasks.
    pub fn small_rand() -> Self {
        SetParams {
            count: 50,
            shape: DaggenParams::small_rand(),
            weights: WeightRanges::small_rand(),
            seed: SMALL_RAND_SEED,
        }
    }

    /// The paper's LargeRandSet: 100 DAGs of 1000 tasks.
    pub fn large_rand() -> Self {
        SetParams {
            count: 100,
            shape: DaggenParams::large_rand(),
            weights: WeightRanges::large_rand(),
            seed: LARGE_RAND_SEED,
        }
    }

    /// A scaled-down copy of the set (fewer, smaller DAGs) for quick runs and
    /// benchmark iterations; the scaling is reported by the experiment
    /// binaries so it is never silent.
    pub fn scaled(mut self, count: usize, size: usize) -> Self {
        self.count = count;
        self.shape = self.shape.with_size(size);
        self
    }

    /// Generates all DAGs of the set.
    pub fn generate(&self) -> Vec<TaskGraph> {
        let mut master = Pcg64::new(self.seed);
        (0..self.count)
            .map(|i| {
                let mut rng = master.fork(i as u64);
                daggen::generate(&self.shape, &self.weights, &mut rng)
            })
            .collect()
    }
}

/// Generates the paper's SmallRandSet (50 random DAGs with 30 tasks each).
pub fn small_rand_set() -> Vec<TaskGraph> {
    SetParams::small_rand().generate()
}

/// Generates the paper's LargeRandSet (100 random DAGs with 1000 tasks each).
pub fn large_rand_set() -> Vec<TaskGraph> {
    SetParams::large_rand().generate()
}

/// Generates the LU factorisation DAGs for the given tile counts (the paper
/// uses a single 13×13 matrix; passing `&[13]` reproduces it).
pub fn lu_set(tile_counts: &[usize]) -> Vec<TaskGraph> {
    let costs = KernelCosts::table1();
    tile_counts.iter().map(|&n| lu_dag(n, &costs)).collect()
}

/// Generates the Cholesky factorisation DAGs for the given tile counts.
pub fn cholesky_set(tile_counts: &[usize]) -> Vec<TaskGraph> {
    let costs = KernelCosts::table1();
    tile_counts
        .iter()
        .map(|&n| cholesky_dag(n, &costs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rand_set_shape() {
        let set = SetParams::small_rand().scaled(5, 30).generate();
        assert_eq!(set.len(), 5);
        for g in &set {
            assert_eq!(g.n_tasks(), 30);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn sets_are_reproducible() {
        let a = SetParams::small_rand().scaled(3, 30).generate();
        let b = SetParams::small_rand().scaled(3, 30).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn dags_within_a_set_differ() {
        let set = SetParams::small_rand().scaled(3, 30).generate();
        assert_ne!(set[0], set[1]);
        assert_ne!(set[1], set[2]);
    }

    #[test]
    fn large_rand_set_scaled_down() {
        let set = SetParams::large_rand().scaled(2, 100).generate();
        assert_eq!(set.len(), 2);
        for g in &set {
            assert_eq!(g.n_tasks(), 100);
            for t in g.task_ids() {
                assert!(g.task(t).work_blue <= 100.0 && g.task(t).work_blue >= 1.0);
            }
        }
    }

    #[test]
    fn paper_set_parameters() {
        let s = SetParams::small_rand();
        assert_eq!(s.count, 50);
        assert_eq!(s.shape.size, 30);
        let l = SetParams::large_rand();
        assert_eq!(l.count, 100);
        assert_eq!(l.shape.size, 1000);
    }

    #[test]
    fn linalg_sets() {
        let lus = lu_set(&[2, 3]);
        assert_eq!(lus.len(), 2);
        assert!(lus[0].n_tasks() < lus[1].n_tasks());
        let chols = cholesky_set(&[3]);
        assert_eq!(chols.len(), 1);
        assert!(chols[0].validate().is_ok());
    }
}
