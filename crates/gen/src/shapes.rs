//! Simple structured DAG shapes: chains, fork-joins and in-trees.
//!
//! The paper's random generator covers the "average" case; these explicitly
//! shaped graphs cover the extremes it mentions ("a small width leads to
//! chain graphs and a large value to fork-join graphs") and are used by the
//! test suites and ablation benchmarks to probe the heuristics where their
//! behaviour is easy to reason about:
//!
//! * a **chain** has no parallelism at all — memory pressure comes only from
//!   the files in flight between consecutive tasks;
//! * a **fork-join** has maximal parallelism — memory pressure comes from the
//!   source's output files all being alive at once;
//! * an **in-tree** (reduction tree) reproduces the tree-shaped workloads of
//!   the authors' earlier work on memory-aware tree traversals.

use mals_dag::{TaskGraph, TaskId};

/// Uniform task/edge weights used by the shape builders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeWeights {
    /// Processing time on a blue processor.
    pub work_blue: f64,
    /// Processing time on a red processor.
    pub work_red: f64,
    /// Size of every file.
    pub file_size: f64,
    /// Cross-memory transfer time of every file.
    pub comm_cost: f64,
}

impl Default for ShapeWeights {
    fn default() -> Self {
        ShapeWeights {
            work_blue: 2.0,
            work_red: 1.0,
            file_size: 1.0,
            comm_cost: 1.0,
        }
    }
}

/// Builds a chain of `n` tasks (`t0 → t1 → … → t(n-1)`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn chain(n: usize, weights: &ShapeWeights) -> TaskGraph {
    assert!(n > 0, "a chain needs at least one task");
    let mut graph = TaskGraph::with_capacity(n, n.saturating_sub(1));
    let tasks: Vec<TaskId> = (0..n)
        .map(|i| graph.add_task(format!("chain_{i}"), weights.work_blue, weights.work_red))
        .collect();
    for pair in tasks.windows(2) {
        graph
            .add_edge(pair[0], pair[1], weights.file_size, weights.comm_cost)
            .expect("chain edges are valid");
    }
    graph
}

/// Builds a fork-join: one source fanning out to `width` parallel tasks that
/// all join into one sink (`2 + width` tasks in total).
///
/// # Panics
/// Panics if `width == 0`.
pub fn fork_join(width: usize, weights: &ShapeWeights) -> TaskGraph {
    assert!(width > 0, "a fork-join needs at least one branch");
    let mut graph = TaskGraph::with_capacity(width + 2, 2 * width);
    let source = graph.add_task("fork", weights.work_blue, weights.work_red);
    let sink = graph.add_task("join", weights.work_blue, weights.work_red);
    for i in 0..width {
        let branch = graph.add_task(format!("branch_{i}"), weights.work_blue, weights.work_red);
        graph
            .add_edge(source, branch, weights.file_size, weights.comm_cost)
            .expect("fork edge");
        graph
            .add_edge(branch, sink, weights.file_size, weights.comm_cost)
            .expect("join edge");
    }
    graph
}

/// Builds a complete binary in-tree (reduction tree) with `leaves` leaves;
/// every internal node consumes the files of its two children. `leaves` is
/// rounded up to the next power of two.
///
/// # Panics
/// Panics if `leaves == 0`.
pub fn binary_in_tree(leaves: usize, weights: &ShapeWeights) -> TaskGraph {
    assert!(leaves > 0, "a reduction tree needs at least one leaf");
    let leaves = leaves.next_power_of_two();
    let mut graph = TaskGraph::new();
    // Build level by level, from the leaves towards the root.
    let mut current: Vec<TaskId> = (0..leaves)
        .map(|i| graph.add_task(format!("leaf_{i}"), weights.work_blue, weights.work_red))
        .collect();
    let mut level = 0;
    while current.len() > 1 {
        level += 1;
        let mut next = Vec::with_capacity(current.len() / 2);
        for (i, pair) in current.chunks(2).enumerate() {
            let parent = graph.add_task(
                format!("node_{level}_{i}"),
                weights.work_blue,
                weights.work_red,
            );
            for &child in pair {
                graph
                    .add_edge(child, parent, weights.file_size, weights.comm_cost)
                    .expect("tree edge");
            }
            next.push(parent);
        }
        current = next;
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_dag::{algo, graph_stats};

    #[test]
    fn chain_shape() {
        let g = chain(10, &ShapeWeights::default());
        assert_eq!(g.n_tasks(), 10);
        assert_eq!(g.n_edges(), 9);
        let stats = graph_stats(&g);
        assert_eq!(stats.depth, 10);
        assert_eq!(stats.max_width, 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn chain_of_one() {
        let g = chain(1, &ShapeWeights::default());
        assert_eq!(g.n_tasks(), 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(8, &ShapeWeights::default());
        assert_eq!(g.n_tasks(), 10);
        assert_eq!(g.n_edges(), 16);
        let stats = graph_stats(&g);
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.max_width, 8);
        assert_eq!(stats.n_sources, 1);
        assert_eq!(stats.n_sinks, 1);
        // The source's memory requirement covers all branch files at once.
        let source = g.sources()[0];
        assert_eq!(g.mem_req(source), 8.0);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_in_tree(8, &ShapeWeights::default());
        // 8 leaves + 4 + 2 + 1 internal nodes.
        assert_eq!(g.n_tasks(), 15);
        assert_eq!(g.n_edges(), 14);
        let stats = graph_stats(&g);
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.n_sinks, 1);
        assert_eq!(stats.max_in_degree, 2);
        assert!(algo::topological_order(&g).is_ok());
    }

    #[test]
    fn binary_tree_rounds_to_power_of_two() {
        let g = binary_in_tree(5, &ShapeWeights::default());
        assert_eq!(g.sources().len(), 8);
    }

    #[test]
    fn custom_weights_are_applied() {
        let w = ShapeWeights {
            work_blue: 7.0,
            work_red: 3.0,
            file_size: 2.5,
            comm_cost: 0.5,
        };
        let g = fork_join(2, &w);
        for t in g.task_ids() {
            assert_eq!(g.task(t).work_blue, 7.0);
            assert_eq!(g.task(t).work_red, 3.0);
        }
        for e in g.edge_ids() {
            assert_eq!(g.edge(e).size, 2.5);
            assert_eq!(g.edge(e).comm_cost, 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_sizes_panic() {
        let _ = chain(0, &ShapeWeights::default());
    }
}
