//! Arrival processes: releasing a DAG's tasks along a virtual timeline.
//!
//! The static heuristics of the paper see the whole DAG before the first
//! commit. The online layer relaxes that: tasks become *known* to the
//! scheduler at release times drawn from an arrival process, and the solver
//! may only plan tasks that have arrived. This module generates those
//! release timelines as replayable [`ArrivalTrace`]s — plain data, fully
//! determined by a seed, serialisable to JSON so a replay can be archived
//! and re-run bit-identically.
//!
//! Release times are assigned along a topological order of the graph, so a
//! task never arrives before its predecessors — the arrival of a task is
//! the moment its *description* becomes known, and a child's description
//! references its parents. Within that constraint three processes are
//! provided ([`ArrivalProcess`]): everything at `t = 0` (the static
//! oracle), Poisson arrivals with exponential inter-arrival gaps, and
//! bursty arrivals releasing whole batches at exponentially spaced
//! instants.

use mals_dag::{algo::topological_order, TaskGraph, TaskId};
use mals_util::{Json, Pcg64};
use std::fmt;

/// One instant of the timeline: the tasks released at time `at`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalEvent {
    /// Release time in virtual seconds (non-negative, finite).
    pub at: f64,
    /// The tasks released at this instant, in ascending id order.
    pub tasks: Vec<TaskId>,
}

/// A replayable release timeline covering every task of a graph exactly
/// once, with strictly increasing event times.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    n_tasks: usize,
    events: Vec<ArrivalEvent>,
}

/// Why a trace failed validation or parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// An event time is negative, NaN or infinite.
    BadTime(f64),
    /// Event times are not strictly increasing at this event index.
    UnsortedTimes(usize),
    /// A task index appears twice (or an event lists it twice).
    DuplicateTask(usize),
    /// A task index is `>= n_tasks`.
    TaskOutOfRange(usize, usize),
    /// Some tasks of `0..n_tasks` never arrive (count of missing tasks).
    MissingTasks(usize),
    /// A child is released before one of its parents.
    ParentAfterChild {
        /// The parent task (arrives later).
        parent: usize,
        /// The child task (arrives earlier).
        child: usize,
    },
    /// The trace covers a different task count than the graph it is
    /// replayed against.
    WrongTaskCount {
        /// Tasks in the trace.
        trace: usize,
        /// Tasks in the graph.
        graph: usize,
    },
    /// The JSON text is not a well-formed trace.
    Json(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadTime(at) => write!(f, "invalid event time {at}"),
            TraceError::UnsortedTimes(i) => {
                write!(f, "event {i} does not strictly increase the timeline")
            }
            TraceError::DuplicateTask(t) => write!(f, "task {t} arrives more than once"),
            TraceError::TaskOutOfRange(t, n) => {
                write!(f, "task {t} is out of range for {n} tasks")
            }
            TraceError::MissingTasks(n) => write!(f, "{n} task(s) never arrive"),
            TraceError::ParentAfterChild { parent, child } => {
                write!(f, "parent {parent} arrives after its child {child}")
            }
            TraceError::WrongTaskCount { trace, graph } => {
                write!(f, "trace covers {trace} tasks but the graph has {graph}")
            }
            TraceError::Json(msg) => write!(f, "malformed trace JSON: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ArrivalTrace {
    /// Builds a trace from raw events, validating the timeline invariants:
    /// finite non-negative strictly increasing times, every task of
    /// `0..n_tasks` arriving exactly once.
    pub fn new(n_tasks: usize, events: Vec<ArrivalEvent>) -> Result<Self, TraceError> {
        let mut seen = vec![false; n_tasks];
        let mut covered = 0usize;
        let mut prev_at = f64::NEG_INFINITY;
        for (i, event) in events.iter().enumerate() {
            if !event.at.is_finite() || event.at < 0.0 {
                return Err(TraceError::BadTime(event.at));
            }
            if event.at <= prev_at {
                return Err(TraceError::UnsortedTimes(i));
            }
            prev_at = event.at;
            for &task in &event.tasks {
                let t = task.index();
                if t >= n_tasks {
                    return Err(TraceError::TaskOutOfRange(t, n_tasks));
                }
                if seen[t] {
                    return Err(TraceError::DuplicateTask(t));
                }
                seen[t] = true;
                covered += 1;
            }
        }
        if covered != n_tasks {
            return Err(TraceError::MissingTasks(n_tasks - covered));
        }
        Ok(ArrivalTrace { n_tasks, events })
    }

    /// The static oracle: every task released in one event at `t = 0`.
    pub fn at_once(n_tasks: usize) -> Self {
        let tasks = (0..n_tasks).map(TaskId::from_index).collect();
        ArrivalTrace {
            n_tasks,
            events: if n_tasks == 0 {
                Vec::new()
            } else {
                vec![ArrivalEvent { at: 0.0, tasks }]
            },
        }
    }

    /// Number of tasks the trace covers.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// The timeline, in strictly increasing time order.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Checks the trace against the graph it is about to be replayed on:
    /// same task count, and no child released before a parent (a replay
    /// could never schedule such a child on arrival anyway, but catching it
    /// up front turns a subtle stall into a crisp error).
    pub fn validate_for(&self, graph: &TaskGraph) -> Result<(), TraceError> {
        if self.n_tasks != graph.n_tasks() {
            return Err(TraceError::WrongTaskCount {
                trace: self.n_tasks,
                graph: graph.n_tasks(),
            });
        }
        let mut at = vec![0.0f64; self.n_tasks];
        for event in &self.events {
            for &task in &event.tasks {
                at[task.index()] = event.at;
            }
        }
        for task in graph.task_ids() {
            for child in graph.children(task) {
                if at[task.index()] > at[child.index()] {
                    return Err(TraceError::ParentAfterChild {
                        parent: task.index(),
                        child: child.index(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Serialises the trace as versioned JSON:
    /// `{"v":1,"n_tasks":N,"events":[{"at":t,"tasks":[...]}]}`.
    pub fn to_json(&self) -> Json {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("at", Json::Num(e.at)),
                    (
                        "tasks",
                        Json::Arr(
                            e.tasks
                                .iter()
                                .map(|t| Json::Num(t.index() as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("v", Json::Num(1.0)),
            ("n_tasks", Json::Num(self.n_tasks as f64)),
            ("events", Json::Arr(events)),
        ])
    }

    /// Parses a trace from the JSON text emitted by [`ArrivalTrace::to_json`],
    /// re-running full validation.
    pub fn parse(text: &str) -> Result<Self, TraceError> {
        let json = Json::parse(text).map_err(|e| TraceError::Json(e.to_string()))?;
        let version = json
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| TraceError::Json("missing version field \"v\"".into()))?;
        if version != 1 {
            return Err(TraceError::Json(format!("unsupported version {version}")));
        }
        let n_tasks = json
            .get("n_tasks")
            .and_then(Json::as_usize)
            .ok_or_else(|| TraceError::Json("missing \"n_tasks\"".into()))?;
        let raw_events = json
            .get("events")
            .and_then(Json::as_arr)
            .ok_or_else(|| TraceError::Json("missing \"events\" array".into()))?;
        let mut events = Vec::with_capacity(raw_events.len());
        for raw in raw_events {
            let at = raw
                .get("at")
                .and_then(Json::as_f64)
                .ok_or_else(|| TraceError::Json("event missing \"at\"".into()))?;
            let tasks = raw
                .get("tasks")
                .and_then(Json::as_arr)
                .ok_or_else(|| TraceError::Json("event missing \"tasks\"".into()))?
                .iter()
                .map(|t| {
                    t.as_usize()
                        .map(TaskId::from_index)
                        .ok_or_else(|| TraceError::Json("non-integer task id".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            events.push(ArrivalEvent { at, tasks });
        }
        ArrivalTrace::new(n_tasks, events)
    }
}

/// One inter-arrival gap of a Poisson process with intensity `rate`
/// (arrivals per virtual second): `-ln(1 - u) / rate` with `u ∈ [0, 1)`.
/// Always finite and non-negative for `rate > 0`. Exposed for the open-loop
/// load generator, which paces request sends with the same distribution.
pub fn exponential_gap(rng: &mut Pcg64, rate: f64) -> f64 {
    assert!(rate > 0.0, "arrival rate must be positive, got {rate}");
    let u = rng.next_f64(); // [0, 1): 1 - u is in (0, 1], ln is finite
    -(1.0 - u).ln() / rate
}

/// A seed-driven recipe for turning a graph into an [`ArrivalTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Everything at `t = 0` — the static-equivalence oracle.
    AtOnce,
    /// One task per arrival, exponential gaps with this intensity
    /// (tasks per virtual second).
    Poisson {
        /// Arrival intensity, tasks per virtual second. Must be positive.
        rate: f64,
    },
    /// Whole batches of `batch` tasks released together, with exponential
    /// gaps between batch instants.
    Bursty {
        /// Tasks per burst (at least 1).
        batch: usize,
        /// Burst intensity, bursts per virtual second. Must be positive.
        rate: f64,
    },
}

impl ArrivalProcess {
    /// Generates the release timeline for `graph`. Tasks are released in a
    /// topological order of the graph (Kahn order, deterministic for a given
    /// graph), so parents always arrive no later than children; the gaps are
    /// drawn from a fresh [`Pcg64`] seeded with `seed`. Equal-time releases
    /// (zero-width gaps) are merged into a single event.
    ///
    /// # Panics
    /// Panics if the graph is cyclic (release order undefined) or the
    /// process parameters are out of range.
    pub fn generate(&self, graph: &TaskGraph, seed: u64) -> ArrivalTrace {
        let order = topological_order(graph).expect("arrival generation needs an acyclic graph");
        let n_tasks = graph.n_tasks();
        if n_tasks == 0 {
            return ArrivalTrace::at_once(0);
        }
        match *self {
            ArrivalProcess::AtOnce => ArrivalTrace::at_once(n_tasks),
            ArrivalProcess::Poisson { rate } => Self::release(&order, 1, rate, seed, n_tasks),
            ArrivalProcess::Bursty { batch, rate } => {
                assert!(batch >= 1, "burst batch must hold at least one task");
                Self::release(&order, batch, rate, seed, n_tasks)
            }
        }
    }

    /// Shared release walk: groups of `batch` consecutive topo-order tasks
    /// share a release instant; instants advance by exponential gaps. The
    /// first group is released at `t = 0` so every trace has work to do
    /// immediately.
    fn release(
        order: &[TaskId],
        batch: usize,
        rate: f64,
        seed: u64,
        n_tasks: usize,
    ) -> ArrivalTrace {
        let mut rng = Pcg64::new(seed);
        let mut events: Vec<ArrivalEvent> = Vec::with_capacity(n_tasks.div_ceil(batch));
        let mut now = 0.0f64;
        for group in order.chunks(batch) {
            let mut tasks = group.to_vec();
            tasks.sort_unstable();
            match events.last_mut() {
                // A zero-width gap lands on the previous instant: merge, so
                // the trace keeps its strictly-increasing-times invariant.
                Some(last) if last.at == now => {
                    last.tasks.extend(tasks);
                    last.tasks.sort_unstable();
                }
                _ => events.push(ArrivalEvent { at: now, tasks }),
            }
            now += exponential_gap(&mut rng, rate);
        }
        ArrivalTrace::new(n_tasks, events).expect("generated trace must satisfy its own invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{daggen, DaggenParams, WeightRanges};

    fn sample_graph(seed: u64) -> TaskGraph {
        let mut rng = Pcg64::new(seed);
        daggen::generate(
            &DaggenParams::small_rand(),
            &WeightRanges::small_rand(),
            &mut rng,
        )
    }

    fn all_tasks(trace: &ArrivalTrace) -> Vec<usize> {
        let mut tasks: Vec<usize> = trace
            .events()
            .iter()
            .flat_map(|e| e.tasks.iter().map(|t| t.index()))
            .collect();
        tasks.sort_unstable();
        tasks
    }

    #[test]
    fn at_once_covers_everything_at_time_zero() {
        let trace = ArrivalTrace::at_once(5);
        assert_eq!(trace.n_tasks(), 5);
        assert_eq!(trace.events().len(), 1);
        assert_eq!(trace.events()[0].at, 0.0);
        assert_eq!(all_tasks(&trace), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn poisson_trace_is_deterministic_and_valid() {
        let g = sample_graph(7);
        let process = ArrivalProcess::Poisson { rate: 2.0 };
        let a = process.generate(&g, 42);
        let b = process.generate(&g, 42);
        assert_eq!(a, b, "same seed must replay the same trace");
        assert_ne!(a, process.generate(&g, 43), "different seeds should differ");
        a.validate_for(&g).unwrap();
        assert_eq!(all_tasks(&a), (0..g.n_tasks()).collect::<Vec<_>>());
        // Strictly increasing times, first event at 0.
        assert_eq!(a.events()[0].at, 0.0);
        for w in a.events().windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn bursty_trace_releases_batches() {
        let g = sample_graph(3);
        let trace = ArrivalProcess::Bursty {
            batch: 7,
            rate: 1.0,
        }
        .generate(&g, 9);
        trace.validate_for(&g).unwrap();
        // All events except possibly merged ones hold at most ... at least
        // the first event holds a full batch (no zero gap merged at t=0
        // unless the rng drew one).
        assert!(trace.events()[0].tasks.len() >= 7.min(g.n_tasks()));
        assert_eq!(all_tasks(&trace), (0..g.n_tasks()).collect::<Vec<_>>());
    }

    #[test]
    fn parents_never_arrive_after_children() {
        let g = sample_graph(11);
        for process in [
            ArrivalProcess::Poisson { rate: 0.5 },
            ArrivalProcess::Bursty {
                batch: 3,
                rate: 5.0,
            },
        ] {
            let trace = process.generate(&g, 1);
            trace.validate_for(&g).unwrap();
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let g = sample_graph(5);
        let trace = ArrivalProcess::Poisson { rate: 3.0 }.generate(&g, 17);
        let text = trace.to_json().to_compact();
        let parsed = ArrivalTrace::parse(&text).unwrap();
        assert_eq!(trace, parsed);
        // And the re-serialisation is byte-identical.
        assert_eq!(text, parsed.to_json().to_compact());
    }

    #[test]
    fn validation_rejects_broken_traces() {
        let ev = |at: f64, ids: &[usize]| ArrivalEvent {
            at,
            tasks: ids.iter().copied().map(TaskId::from_index).collect(),
        };
        assert_eq!(
            ArrivalTrace::new(2, vec![ev(-1.0, &[0, 1])]),
            Err(TraceError::BadTime(-1.0))
        );
        assert_eq!(
            ArrivalTrace::new(2, vec![ev(0.0, &[0]), ev(0.0, &[1])]),
            Err(TraceError::UnsortedTimes(1))
        );
        assert_eq!(
            ArrivalTrace::new(2, vec![ev(0.0, &[0, 0]), ev(1.0, &[1])]),
            Err(TraceError::DuplicateTask(0))
        );
        assert_eq!(
            ArrivalTrace::new(2, vec![ev(0.0, &[0, 5])]),
            Err(TraceError::TaskOutOfRange(5, 2))
        );
        assert_eq!(
            ArrivalTrace::new(3, vec![ev(0.0, &[0, 1])]),
            Err(TraceError::MissingTasks(1))
        );
    }

    #[test]
    fn validate_for_catches_inverted_precedence() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        // b (the child) arrives before a (the parent): invalid.
        let trace = ArrivalTrace::new(
            2,
            vec![
                ArrivalEvent {
                    at: 0.0,
                    tasks: vec![b],
                },
                ArrivalEvent {
                    at: 1.0,
                    tasks: vec![a],
                },
            ],
        )
        .unwrap();
        assert_eq!(
            trace.validate_for(&g),
            Err(TraceError::ParentAfterChild {
                parent: 0,
                child: 1
            })
        );
        // Task-count mismatch is also caught.
        let at_once = ArrivalTrace::at_once(3);
        assert!(matches!(
            at_once.validate_for(&g),
            Err(TraceError::WrongTaskCount { trace: 3, graph: 2 })
        ));
    }

    #[test]
    fn exponential_gaps_are_nonnegative_and_mean_close_to_inverse_rate() {
        let mut rng = Pcg64::new(123);
        let rate = 4.0;
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let gap = exponential_gap(&mut rng, rate);
            assert!(gap >= 0.0 && gap.is_finite());
            sum += gap;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "sample mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn trace_parse_rejects_garbage() {
        assert!(matches!(
            ArrivalTrace::parse("not json"),
            Err(TraceError::Json(_))
        ));
        assert!(matches!(
            ArrivalTrace::parse("{\"v\":2,\"n_tasks\":1,\"events\":[]}"),
            Err(TraceError::Json(_))
        ));
        assert!(matches!(
            ArrivalTrace::parse("{\"v\":1,\"n_tasks\":1,\"events\":[]}"),
            Err(TraceError::MissingTasks(1))
        ));
    }
}
