//! Tiled dense linear-algebra task graphs (LU and Cholesky factorisations).
//!
//! The paper's applicative benchmarks (Section 6.1.2) are the task graphs of
//! the tiled LU and Cholesky factorisations of an `n × n` tile matrix:
//!
//! * **LU**, at every step `k`: `GETRF` factors the diagonal tile, `TRSM`
//!   kernels eliminate the first row and column of the trailing matrix, and
//!   `GEMM` kernels update the remaining tiles;
//! * **Cholesky**, at every step `k`: `POTRF` factors the diagonal tile,
//!   `TRSM` processes the first column, `SYRK` updates the diagonal of the
//!   trailing matrix and `GEMM` updates the rest.
//!
//! The scheduling model allows a single data file per edge, so a kernel whose
//! output tile feeds many consumers would artificially multiply its memory
//! footprint. Exactly as in the paper, every multi-consumer output is routed
//! through a *linear pipeline of fictitious zero-cost broadcast tasks*, each
//! forwarding the tile to one consumer and to the next stage of the pipeline.
//!
//! Kernel processing times follow Table 1 of the paper (MAGMA measurements on
//! 192×192 tiles, in milliseconds, on the *mirage* CPU+GPU node); every tile
//! transfer between memories costs 50 ms and every file is one tile
//! (`F = 1`), so memory bounds are expressed in tiles.

use mals_dag::{TaskGraph, TaskId};

/// Per-kernel processing times on the two resource types (milliseconds).
///
/// Table 1 of the paper provides one measured time per kernel; the paper does
/// not tabulate the accelerator-side times, so this implementation treats the
/// Table 1 values as CPU (blue) times and derives the GPU (red) times from
/// typical MAGMA speedup factors (documented in `DESIGN.md`): GEMM ×10,
/// SYRK ×8, TRSM ×5, GETRF/POTRF ×2 (panel factorisations accelerate
/// poorly). The qualitative comparisons of Figures 14 and 15 are insensitive
/// to the exact factors; any strongly GEMM-favouring accelerator produces the
/// same shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCosts {
    /// LU diagonal factorisation (`getrf`): (blue, red) times.
    pub getrf: (f64, f64),
    /// Matrix-matrix multiply update (`gemm`).
    pub gemm: (f64, f64),
    /// Lower triangular solve (`trsm_l`, column elimination).
    pub trsm_l: (f64, f64),
    /// Upper triangular solve (`trsm_u`, row elimination).
    pub trsm_u: (f64, f64),
    /// Cholesky diagonal factorisation (`potrf`).
    pub potrf: (f64, f64),
    /// Symmetric rank-k update (`syrk`).
    pub syrk: (f64, f64),
    /// Time to transfer one tile between memories (`C_{i,j}`).
    pub tile_transfer: f64,
}

impl KernelCosts {
    /// The Table 1 cost model of the paper (192×192 tiles on the *mirage*
    /// node, times in milliseconds), with the documented accelerator speedup
    /// factors.
    pub fn table1() -> Self {
        KernelCosts {
            getrf: (450.0, 225.0),
            gemm: (1450.0, 145.0),
            trsm_l: (990.0, 198.0),
            trsm_u: (830.0, 166.0),
            potrf: (450.0, 225.0),
            syrk: (990.0, 123.75),
            tile_transfer: 50.0,
        }
    }

    /// A cost model where both resources are identical (useful to isolate the
    /// memory behaviour from the heterogeneity in tests and ablations).
    pub fn homogeneous() -> Self {
        KernelCosts {
            getrf: (450.0, 450.0),
            gemm: (1450.0, 1450.0),
            trsm_l: (990.0, 990.0),
            trsm_u: (830.0, 830.0),
            potrf: (450.0, 450.0),
            syrk: (990.0, 990.0),
            tile_transfer: 50.0,
        }
    }
}

/// Internal helper: adds a kernel task.
fn add_kernel(g: &mut TaskGraph, name: String, cost: (f64, f64)) -> TaskId {
    g.add_task(name, cost.0, cost.1)
}

/// Routes the output tile of `producer` to all `consumers` through a linear
/// pipeline of fictitious zero-cost broadcast tasks, as described in
/// Section 6.1.2 of the paper. With zero or one consumer no fictitious task
/// is created.
fn broadcast(g: &mut TaskGraph, producer: TaskId, consumers: &[TaskId], transfer: f64) {
    match consumers {
        [] => {}
        [only] => {
            g.add_edge(producer, *only, 1.0, transfer)
                .expect("broadcast edge");
        }
        _ => {
            let mut upstream = producer;
            for (idx, &consumer) in consumers.iter().enumerate() {
                if idx + 1 == consumers.len() {
                    g.add_edge(upstream, consumer, 1.0, transfer)
                        .expect("broadcast edge");
                } else {
                    let stage = g.add_task(
                        format!("{}_bc{}", g.task(producer).name.clone(), idx),
                        0.0,
                        0.0,
                    );
                    g.add_edge(upstream, stage, 1.0, transfer)
                        .expect("broadcast edge");
                    g.add_edge(stage, consumer, 1.0, transfer)
                        .expect("broadcast edge");
                    upstream = stage;
                }
            }
        }
    }
}

/// Builds the task graph of the tiled LU factorisation of an `n × n` tile
/// matrix, using the given kernel cost model.
///
/// Kernel tasks are named `getrf_k`, `trsm_col_k_i`, `trsm_row_k_j` and
/// `gemm_k_i_j`; broadcast stages carry a `_bc` suffix.
///
/// # Panics
/// Panics if `n == 0`.
pub fn lu_dag(n: usize, costs: &KernelCosts) -> TaskGraph {
    assert!(n > 0, "matrix must have at least one tile");
    let mut g = TaskGraph::new();
    let transfer = costs.tile_transfer;

    // owner[i][j] = task that produced the current value of tile (i, j).
    let mut owner: Vec<Vec<Option<TaskId>>> = vec![vec![None; n]; n];
    // For every producer, the list of consumers discovered while building the
    // next step; the broadcast pipelines are materialised at the end of each
    // step so the consumer order is deterministic.
    let mut consumers: Vec<(TaskId, Vec<TaskId>)> = Vec::new();

    let record =
        |consumers: &mut Vec<(TaskId, Vec<TaskId>)>, producer: Option<TaskId>, user: TaskId| {
            if let Some(p) = producer {
                if let Some(entry) = consumers.iter_mut().find(|(t, _)| *t == p) {
                    entry.1.push(user);
                } else {
                    consumers.push((p, vec![user]));
                }
            }
        };

    for k in 0..n {
        consumers.clear();

        let getrf = add_kernel(&mut g, format!("getrf_{k}"), costs.getrf);
        record(&mut consumers, owner[k][k], getrf);
        owner[k][k] = Some(getrf);

        let mut trsm_col = vec![None; n];
        let mut trsm_row = vec![None; n];
        for i in (k + 1)..n {
            let t_col = add_kernel(&mut g, format!("trsm_col_{k}_{i}"), costs.trsm_l);
            record(&mut consumers, Some(getrf), t_col);
            record(&mut consumers, owner[i][k], t_col);
            owner[i][k] = Some(t_col);
            trsm_col[i] = Some(t_col);

            let t_row = add_kernel(&mut g, format!("trsm_row_{k}_{i}"), costs.trsm_u);
            record(&mut consumers, Some(getrf), t_row);
            record(&mut consumers, owner[k][i], t_row);
            owner[k][i] = Some(t_row);
            trsm_row[i] = Some(t_row);
        }

        for i in (k + 1)..n {
            for j in (k + 1)..n {
                let gemm = add_kernel(&mut g, format!("gemm_{k}_{i}_{j}"), costs.gemm);
                record(&mut consumers, trsm_col[i], gemm);
                record(&mut consumers, trsm_row[j], gemm);
                record(&mut consumers, owner[i][j], gemm);
                owner[i][j] = Some(gemm);
            }
        }

        for (producer, users) in consumers.drain(..) {
            broadcast(&mut g, producer, &users, transfer);
        }
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Builds the task graph of the tiled Cholesky factorisation of an `n × n`
/// tile symmetric matrix (only the lower half is factored), using the given
/// kernel cost model.
///
/// Kernel tasks are named `potrf_k`, `trsm_k_i`, `syrk_k_i` and
/// `gemm_k_i_j`; broadcast stages carry a `_bc` suffix.
///
/// # Panics
/// Panics if `n == 0`.
pub fn cholesky_dag(n: usize, costs: &KernelCosts) -> TaskGraph {
    assert!(n > 0, "matrix must have at least one tile");
    let mut g = TaskGraph::new();
    let transfer = costs.tile_transfer;

    let mut owner: Vec<Vec<Option<TaskId>>> = vec![vec![None; n]; n];
    let mut consumers: Vec<(TaskId, Vec<TaskId>)> = Vec::new();

    let record =
        |consumers: &mut Vec<(TaskId, Vec<TaskId>)>, producer: Option<TaskId>, user: TaskId| {
            if let Some(p) = producer {
                if let Some(entry) = consumers.iter_mut().find(|(t, _)| *t == p) {
                    entry.1.push(user);
                } else {
                    consumers.push((p, vec![user]));
                }
            }
        };

    for k in 0..n {
        consumers.clear();

        let potrf = add_kernel(&mut g, format!("potrf_{k}"), costs.potrf);
        record(&mut consumers, owner[k][k], potrf);
        owner[k][k] = Some(potrf);

        let mut trsm = vec![None; n];
        for i in (k + 1)..n {
            let t = add_kernel(&mut g, format!("trsm_{k}_{i}"), costs.trsm_l);
            record(&mut consumers, Some(potrf), t);
            record(&mut consumers, owner[i][k], t);
            owner[i][k] = Some(t);
            trsm[i] = Some(t);
        }

        for i in (k + 1)..n {
            let syrk = add_kernel(&mut g, format!("syrk_{k}_{i}"), costs.syrk);
            record(&mut consumers, trsm[i], syrk);
            record(&mut consumers, owner[i][i], syrk);
            owner[i][i] = Some(syrk);

            for j in (k + 1)..i {
                let gemm = add_kernel(&mut g, format!("gemm_{k}_{i}_{j}"), costs.gemm);
                record(&mut consumers, trsm[i], gemm);
                record(&mut consumers, trsm[j], gemm);
                record(&mut consumers, owner[i][j], gemm);
                owner[i][j] = Some(gemm);
            }
        }

        for (producer, users) in consumers.drain(..) {
            broadcast(&mut g, producer, &users, transfer);
        }
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Counts the kernel tasks (excluding broadcast stages) in a generated graph.
pub fn kernel_count(g: &TaskGraph) -> usize {
    g.task_ids()
        .filter(|&t| !g.task(t).name.contains("_bc"))
        .count()
}

/// Counts the fictitious broadcast tasks in a generated graph.
pub fn broadcast_count(g: &TaskGraph) -> usize {
    g.task_ids()
        .filter(|&t| g.task(t).name.contains("_bc"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_dag::algo;

    #[test]
    fn lu_kernel_count_formula() {
        // Kernels at step k: 1 GETRF + 2(n-k-1) TRSM + (n-k-1)^2 GEMM.
        for n in 1..=6 {
            let g = lu_dag(n, &KernelCosts::table1());
            let expected: usize = (0..n)
                .map(|k| {
                    let m = n - k - 1;
                    1 + 2 * m + m * m
                })
                .sum();
            assert_eq!(kernel_count(&g), expected, "n = {n}");
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn cholesky_kernel_count_formula() {
        // Kernels at step k: 1 POTRF + (n-k-1) TRSM + (n-k-1) SYRK + C(n-k-1, 2) GEMM.
        for n in 1..=6 {
            let g = cholesky_dag(n, &KernelCosts::table1());
            let expected: usize = (0..n)
                .map(|k| {
                    let m = n - k - 1;
                    1 + 2 * m + m * (m.saturating_sub(1)) / 2
                })
                .sum();
            assert_eq!(kernel_count(&g), expected, "n = {n}");
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn single_tile_matrices() {
        let lu = lu_dag(1, &KernelCosts::table1());
        assert_eq!(lu.n_tasks(), 1);
        assert_eq!(lu.n_edges(), 0);
        let chol = cholesky_dag(1, &KernelCosts::table1());
        assert_eq!(chol.n_tasks(), 1);
    }

    #[test]
    fn two_by_two_lu_structure() {
        let g = lu_dag(2, &KernelCosts::table1());
        // getrf_0, trsm_col_0_1, trsm_row_0_1, gemm_0_1_1, getrf_1
        assert_eq!(kernel_count(&g), 5);
        // getrf_0 feeds both TRSMs: one broadcast stage is created.
        assert_eq!(broadcast_count(&g), 1);
        // The final GETRF depends (transitively) on everything.
        let order = algo::topological_order(&g).unwrap();
        let last = *order.last().unwrap();
        assert!(g.task(last).name.starts_with("getrf_1") || g.out_degree(last) == 0);
    }

    #[test]
    fn broadcast_tasks_have_zero_cost_and_bounded_fanout() {
        let g = lu_dag(5, &KernelCosts::table1());
        for t in g.task_ids() {
            let data = g.task(t);
            if data.name.contains("_bc") {
                assert_eq!(data.work_blue, 0.0);
                assert_eq!(data.work_red, 0.0);
            }
            // The broadcast pipelines bound every task's out-degree-induced
            // memory requirement: MemReq <= in + out files, all of size 1.
            assert!(
                g.out_degree(t) <= 2 || !data.name.contains("_bc"),
                "broadcast stages forward to at most one consumer and one stage"
            );
        }
    }

    #[test]
    fn all_files_are_one_tile() {
        let g = cholesky_dag(4, &KernelCosts::table1());
        for e in g.edge_ids() {
            assert_eq!(g.edge(e).size, 1.0);
            assert_eq!(g.edge(e).comm_cost, 50.0);
        }
    }

    #[test]
    fn kernel_costs_follow_table1() {
        let g = lu_dag(3, &KernelCosts::table1());
        for t in g.task_ids() {
            let data = g.task(t);
            let name = &data.name;
            if name.contains("_bc") {
                continue;
            }
            if name.starts_with("getrf") {
                assert_eq!(data.work_blue, 450.0);
            } else if name.starts_with("gemm") {
                assert_eq!(data.work_blue, 1450.0);
                assert_eq!(data.work_red, 145.0);
            } else if name.starts_with("trsm_col") {
                assert_eq!(data.work_blue, 990.0);
            } else if name.starts_with("trsm_row") {
                assert_eq!(data.work_blue, 830.0);
            }
        }
        let c = cholesky_dag(3, &KernelCosts::table1());
        for t in c.task_ids() {
            let data = c.task(t);
            if data.name.contains("_bc") {
                continue;
            }
            if data.name.starts_with("potrf") {
                assert_eq!(data.work_blue, 450.0);
            } else if data.name.starts_with("syrk") {
                assert_eq!(data.work_blue, 990.0);
            }
        }
    }

    #[test]
    fn max_mem_req_is_small_thanks_to_broadcasts() {
        // Without broadcast pipelines a GETRF output would need 2(n-1) tiles
        // of memory at once; with them, every task needs only a handful.
        let g = lu_dag(8, &KernelCosts::table1());
        assert!(g.max_mem_req() <= 6.0, "max MemReq = {}", g.max_mem_req());
    }

    #[test]
    fn graphs_are_deterministic() {
        let a = lu_dag(6, &KernelCosts::table1());
        let b = lu_dag(6, &KernelCosts::table1());
        assert_eq!(a, b);
        let c = cholesky_dag(6, &KernelCosts::table1());
        let d = cholesky_dag(6, &KernelCosts::table1());
        assert_eq!(c, d);
    }

    #[test]
    fn cholesky_smaller_than_lu() {
        let lu = lu_dag(7, &KernelCosts::table1());
        let chol = cholesky_dag(7, &KernelCosts::table1());
        assert!(chol.n_tasks() < lu.n_tasks());
    }

    #[test]
    fn homogeneous_costs_have_equal_sides() {
        let costs = KernelCosts::homogeneous();
        let g = cholesky_dag(4, &costs);
        for t in g.task_ids() {
            let data = g.task(t);
            assert_eq!(data.work_blue, data.work_red);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_panics() {
        let _ = lu_dag(0, &KernelCosts::table1());
    }
}
