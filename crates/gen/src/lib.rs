//! Workload generators for the memory-aware scheduling experiments.
//!
//! The paper evaluates its heuristics on four DAG sets (Section 6.1):
//!
//! * **SmallRandSet** — 50 random DAGs of 30 tasks generated with DAGGEN
//!   (`width = 0.3`, `density = 0.5`, `jumps = 5`), weights in `[1, 20]`,
//!   file sizes / communication costs in `[1, 10]`;
//! * **LargeRandSet** — 100 random DAGs of 1000 tasks with the same shape
//!   parameters and weights in `[1, 100]`;
//! * **LUSet** — task graphs of the tiled LU factorisation;
//! * **CholeskySet** — task graphs of the tiled Cholesky factorisation, both
//!   using the kernel timings of Table 1 measured on the *mirage* node.
//!
//! This crate reimplements all four generators from scratch:
//!
//! * [`daggen`] — a layered random-DAG generator with the DAGGEN parameters
//!   (`size`, `width`, `density`, `jumps`);
//! * [`linalg`] — tiled LU and Cholesky task-graph builders with the Table 1
//!   kernel-cost model and the broadcast pipelines of fictitious tasks the
//!   paper adds to fit its single-file-per-edge model;
//! * [`toy`] — the 4-task example `D_ex` of Figure 2;
//! * [`sets`] — the four experiment DAG sets with their documented seeds;
//! * [`arrival`] — seed-driven arrival processes (Poisson, bursty, at-once)
//!   that release a graph's tasks along a virtual timeline as replayable
//!   [`ArrivalTrace`]s for the online scheduling layer.

#![warn(missing_docs)]

pub mod arrival;
pub mod daggen;
pub mod linalg;
pub mod sets;
pub mod shapes;
pub mod toy;

pub use arrival::{exponential_gap, ArrivalEvent, ArrivalProcess, ArrivalTrace, TraceError};
pub use daggen::{DaggenParams, WeightRanges};
pub use linalg::{cholesky_dag, lu_dag, KernelCosts};
pub use sets::{cholesky_set, large_rand_set, lu_set, small_rand_set, SetParams};
pub use shapes::{binary_in_tree, chain, fork_join, ShapeWeights};
pub use toy::dex;
