//! DAGGEN-style layered random DAG generator.
//!
//! The paper generates its random workloads with the DAGGEN tool using four
//! shape parameters (Section 6.1.1):
//!
//! * **size** — number of tasks; tasks are organised in levels;
//! * **width** — maximum parallelism: a small value produces "chain" graphs,
//!   a large value "fork-join" graphs;
//! * **density** — how many edges connect consecutive levels;
//! * **jumps** — random edges may skip up to `jumps` levels.
//!
//! This module reimplements that generator from scratch (the original is a C
//! program). The construction is:
//!
//! 1. draw level widths around `width · √size` until `size` tasks exist;
//! 2. give every non-first-level task between 1 and `density · |previous
//!    levels|` parents, each parent drawn from one of the `jumps` preceding
//!    levels (biased towards the immediately preceding one);
//! 3. draw the two processing times, the file sizes and the communication
//!    costs uniformly from the configured integer ranges.
//!
//! The generator is fully deterministic given the [`mals_util::Pcg64`] seed,
//! which is what makes the figure-reproduction campaigns reproducible.

use mals_dag::{GraphBuilder, TaskGraph, TaskId};
use mals_util::Pcg64;

/// Shape parameters of the random DAG generator (DAGGEN's `size`, `width`,
/// `density`, `jumps`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaggenParams {
    /// Number of tasks in the DAG.
    pub size: usize,
    /// Width parameter in `(0, 1]`: the average level holds about
    /// `width · √size` tasks.
    pub width: f64,
    /// Density parameter in `(0, 1]`: a task of level `ℓ` has between 1 and
    /// `max(1, density · width_{ℓ-1})` parents.
    pub density: f64,
    /// Maximum number of levels an edge may skip (1 = only consecutive
    /// levels).
    pub jumps: usize,
}

impl DaggenParams {
    /// The SmallRandSet shape of the paper: 30 tasks, width 0.3, density 0.5,
    /// jumps 5.
    pub fn small_rand() -> Self {
        DaggenParams {
            size: 30,
            width: 0.3,
            density: 0.5,
            jumps: 5,
        }
    }

    /// The LargeRandSet shape of the paper: 1000 tasks, width 0.3,
    /// density 0.5, jumps 5.
    pub fn large_rand() -> Self {
        DaggenParams {
            size: 1000,
            width: 0.3,
            density: 0.5,
            jumps: 5,
        }
    }

    /// Same shape with a different number of tasks (used by the scaled-down
    /// benchmark configurations and the 10⁴–10⁵-task scaling campaigns).
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// A 10⁵-task instance with the LargeRandSet shape — the scaling target
    /// of the large-campaign harness.
    pub fn huge_rand() -> Self {
        DaggenParams::large_rand().with_size(100_000)
    }
}

/// Integer ranges (inclusive) from which task and edge weights are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightRanges {
    /// Range of the processing times `W⁽¹⁾` and `W⁽²⁾`.
    pub work: (u64, u64),
    /// Range of the file sizes `F`.
    pub file_size: (u64, u64),
    /// Range of the communication costs `C`.
    pub comm_cost: (u64, u64),
}

impl WeightRanges {
    /// SmallRandSet weights: `W ∈ [1, 20]`, `F, C ∈ [1, 10]`.
    pub fn small_rand() -> Self {
        WeightRanges {
            work: (1, 20),
            file_size: (1, 10),
            comm_cost: (1, 10),
        }
    }

    /// LargeRandSet weights: `W, F, C ∈ [1, 100]`.
    pub fn large_rand() -> Self {
        WeightRanges {
            work: (1, 100),
            file_size: (1, 100),
            comm_cost: (1, 100),
        }
    }
}

/// Generates one random DAG with the given shape and weight parameters.
///
/// Construction goes through [`GraphBuilder`] (flat edge records, adjacency
/// lists allocated once at their exact sizes) so 10⁴–10⁵-task instances
/// build in linear time without per-node reallocation churn. The RNG draw
/// sequence is exactly that of the original incremental construction, so the
/// output for any `(params, weights, seed)` triple is unchanged (pinned by
/// the golden-fingerprint test below).
///
/// # Panics
/// Panics if `size == 0`.
pub fn generate(params: &DaggenParams, weights: &WeightRanges, rng: &mut Pcg64) -> TaskGraph {
    assert!(params.size > 0, "cannot generate an empty DAG");
    let levels = build_levels(params, rng);
    let mut builder = GraphBuilder::with_capacity(params.size, params.size * 2);

    // Create the tasks level by level, remembering the level of each task.
    let mut level_tasks: Vec<Vec<TaskId>> = Vec::with_capacity(levels.len());
    let mut counter = 0usize;
    for &count in &levels {
        let mut tasks = Vec::with_capacity(count);
        for _ in 0..count {
            let w1 = rng.uniform_u64(weights.work.0, weights.work.1) as f64;
            let w2 = rng.uniform_u64(weights.work.0, weights.work.1) as f64;
            tasks.push(builder.add_task(format!("t{counter}"), w1, w2));
            counter += 1;
        }
        level_tasks.push(tasks);
    }

    // Connect every task of level >= 1 to parents in preceding levels. A
    // task's in-edges are only ever created in its own inner loop, so the
    // duplicate-parent check is a scan of this small local list instead of
    // the source's (possibly huge) adjacency list.
    let mut parents_of_task: Vec<TaskId> = Vec::new();
    for lvl in 1..level_tasks.len() {
        let prev_width = level_tasks[lvl - 1].len();
        let max_parents = ((params.density * prev_width as f64).round() as usize).max(1);
        for &task in &level_tasks[lvl] {
            parents_of_task.clear();
            let n_parents = rng.uniform_usize(1, max_parents);
            for k in 0..n_parents {
                // The first parent always comes from the previous level so the
                // level structure is respected; the others may jump back up to
                // `jumps` levels.
                let span = params.jumps.max(1).min(lvl);
                let src_level = if k == 0 {
                    lvl - 1
                } else {
                    lvl - rng.uniform_usize(1, span)
                };
                let candidates = &level_tasks[src_level];
                let src = *rng.choose(candidates).expect("levels are never empty");
                if parents_of_task.contains(&src) {
                    continue;
                }
                parents_of_task.push(src);
                let size = rng.uniform_u64(weights.file_size.0, weights.file_size.1) as f64;
                let comm = rng.uniform_u64(weights.comm_cost.0, weights.comm_cost.1) as f64;
                builder.add_edge(src, task, size, comm);
            }
        }
    }
    let graph = builder.build().expect("generator edges are valid");
    debug_assert!(graph.validate().is_ok());
    graph
}

/// Draws the number of tasks of each level until `size` tasks exist.
fn build_levels(params: &DaggenParams, rng: &mut Pcg64) -> Vec<usize> {
    let target_width = (params.width * (params.size as f64).sqrt()).max(1.0);
    let mut levels = Vec::new();
    let mut remaining = params.size;
    while remaining > 0 {
        let jitter = rng.uniform_f64(0.5, 1.5);
        let width = ((target_width * jitter).round() as usize).clamp(1, remaining);
        levels.push(width);
        remaining -= width;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_dag::algo;

    fn gen(seed: u64, params: DaggenParams, weights: WeightRanges) -> TaskGraph {
        let mut rng = Pcg64::new(seed);
        generate(&params, &weights, &mut rng)
    }

    #[test]
    fn produces_requested_size() {
        for seed in 0..5 {
            let g = gen(seed, DaggenParams::small_rand(), WeightRanges::small_rand());
            assert_eq!(g.n_tasks(), 30);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let a = gen(42, DaggenParams::small_rand(), WeightRanges::small_rand());
        let b = gen(42, DaggenParams::small_rand(), WeightRanges::small_rand());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = gen(1, DaggenParams::small_rand(), WeightRanges::small_rand());
        let b = gen(2, DaggenParams::small_rand(), WeightRanges::small_rand());
        assert_ne!(a, b);
    }

    #[test]
    fn weights_are_in_range() {
        let g = gen(7, DaggenParams::small_rand(), WeightRanges::small_rand());
        for t in g.task_ids() {
            let task = g.task(t);
            assert!((1.0..=20.0).contains(&task.work_blue));
            assert!((1.0..=20.0).contains(&task.work_red));
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!((1.0..=10.0).contains(&edge.size));
            assert!((1.0..=10.0).contains(&edge.comm_cost));
        }
    }

    #[test]
    fn every_non_source_task_has_a_parent() {
        let g = gen(11, DaggenParams::small_rand(), WeightRanges::small_rand());
        let levels = algo::levels(&g);
        for t in g.task_ids() {
            if levels[t.index()] > 0 {
                assert!(g.in_degree(t) >= 1);
            }
        }
        // There is at least one source and one sink.
        assert!(!g.sources().is_empty());
        assert!(!g.sinks().is_empty());
    }

    #[test]
    fn acyclic_and_connected_enough() {
        let g = gen(
            13,
            DaggenParams::large_rand().with_size(200),
            WeightRanges::large_rand(),
        );
        assert_eq!(g.n_tasks(), 200);
        assert!(algo::topological_order(&g).is_ok());
        // Edges never point "forward to backward": guaranteed by construction,
        // but double-check via levels.
        let levels = algo::levels(&g);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(levels[edge.src.index()] < levels[edge.dst.index()]);
        }
    }

    #[test]
    fn width_parameter_controls_parallelism() {
        let narrow = gen(
            5,
            DaggenParams {
                size: 120,
                width: 0.1,
                density: 0.5,
                jumps: 2,
            },
            WeightRanges::small_rand(),
        );
        let wide = gen(
            5,
            DaggenParams {
                size: 120,
                width: 0.9,
                density: 0.5,
                jumps: 2,
            },
            WeightRanges::small_rand(),
        );
        let max_level_width = |g: &TaskGraph| {
            let levels = algo::levels(g);
            let mut counts = vec![0usize; levels.iter().max().map(|&m| m + 1).unwrap_or(1)];
            for &l in &levels {
                counts[l] += 1;
            }
            counts.into_iter().max().unwrap_or(0)
        };
        assert!(
            max_level_width(&wide) > max_level_width(&narrow),
            "a larger width parameter should produce wider DAGs"
        );
    }

    #[test]
    fn jumps_allow_level_skipping() {
        let g = gen(
            3,
            DaggenParams {
                size: 100,
                width: 0.3,
                density: 0.9,
                jumps: 5,
            },
            WeightRanges::small_rand(),
        );
        let levels = algo::levels(&g);
        let has_jump = g.edge_ids().any(|e| {
            let edge = g.edge(e);
            levels[edge.dst.index()] - levels[edge.src.index()] >= 2
        });
        assert!(
            has_jump,
            "with jumps=5 and high density some edge should skip a level"
        );
    }

    #[test]
    #[should_panic(expected = "empty DAG")]
    fn zero_size_panics() {
        let mut rng = Pcg64::new(0);
        let params = DaggenParams {
            size: 0,
            width: 0.3,
            density: 0.5,
            jumps: 1,
        };
        let _ = generate(&params, &WeightRanges::small_rand(), &mut rng);
    }

    #[test]
    fn single_task_graph() {
        let g = gen(
            0,
            DaggenParams {
                size: 1,
                width: 0.3,
                density: 0.5,
                jumps: 1,
            },
            WeightRanges::small_rand(),
        );
        assert_eq!(g.n_tasks(), 1);
        assert_eq!(g.n_edges(), 0);
    }

    /// FNV-style structural fingerprint: tasks, edges, endpoints, weights.
    fn fingerprint(g: &TaskGraph) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(g.n_tasks() as u64);
        mix(g.n_edges() as u64);
        for t in g.task_ids() {
            let d = g.task(t);
            mix(d.work_blue.to_bits());
            mix(d.work_red.to_bits());
        }
        for e in g.edge_ids() {
            let d = g.edge(e);
            mix(d.src.index() as u64);
            mix(d.dst.index() as u64);
            mix(d.size.to_bits());
            mix(d.comm_cost.to_bits());
        }
        h
    }

    /// The flat-construction rewrite must not change any seeded output:
    /// these fingerprints were recorded against the original incremental
    /// generator (pre-refactor) and pin the full structure — endpoints,
    /// weights, edge order — of three representative instances.
    #[test]
    fn seeded_output_matches_pre_refactor_golden_fingerprints() {
        let cases: [(u64, DaggenParams, WeightRanges, u64); 3] = [
            (
                42,
                DaggenParams::small_rand(),
                WeightRanges::small_rand(),
                0x11309b8efffee180,
            ),
            (
                7,
                DaggenParams::large_rand().with_size(200),
                WeightRanges::large_rand(),
                0xfffefbf945f6dafc,
            ),
            (
                0x5EED_0002,
                DaggenParams::large_rand(),
                WeightRanges::large_rand(),
                0x7dbcc556331aef95,
            ),
        ];
        for (seed, params, weights, expected) in cases {
            let g = gen(seed, params, weights);
            assert_eq!(
                fingerprint(&g),
                expected,
                "seed {seed} ({} tasks) diverged from the pre-refactor generator",
                params.size
            );
        }
    }

    #[test]
    fn scales_to_huge_instances() {
        // The 10⁵-task scaling target builds and validates in one pass; in
        // debug builds a scaled-down instance keeps the test quick while the
        // release bench exercises the full size.
        let size = if cfg!(debug_assertions) {
            20_000
        } else {
            100_000
        };
        let g = gen(
            1,
            DaggenParams::huge_rand().with_size(size),
            WeightRanges::large_rand(),
        );
        assert_eq!(g.n_tasks(), size);
        assert!(g.n_edges() > size); // densely connected
        assert!(algo::topological_order(&g).is_ok());
    }

    #[test]
    fn preset_params_match_paper() {
        let s = DaggenParams::small_rand();
        assert_eq!((s.size, s.jumps), (30, 5));
        assert_eq!((s.width, s.density), (0.3, 0.5));
        let l = DaggenParams::large_rand();
        assert_eq!(l.size, 1000);
        let w = WeightRanges::small_rand();
        assert_eq!(w.work, (1, 20));
        assert_eq!(w.file_size, (1, 10));
        let wl = WeightRanges::large_rand();
        assert_eq!(wl.work, (1, 100));
    }
}
