//! The toy example DAG `D_ex` of Figure 2 of the paper.

use mals_dag::{TaskGraph, TaskId};

/// Builds `D_ex`: four tasks T1..T4 in a diamond, with the processing times,
/// file sizes and communication costs of Figure 2.
///
/// Returns the graph and the four task ids `[T1, T2, T3, T4]`.
///
/// The paper uses this DAG to illustrate the memory/makespan trade-off: with
/// one blue and one red processor and memory bounds of 5 on each side, the
/// optimal makespan is 6 (schedule `s1` of Figure 3); tightening both bounds
/// to 4 forces a slower schedule of makespan 7 (schedule `s2` of Figure 4).
pub fn dex() -> (TaskGraph, [TaskId; 4]) {
    let mut g = TaskGraph::with_capacity(4, 4);
    let t1 = g.add_task("T1", 3.0, 1.0);
    let t2 = g.add_task("T2", 2.0, 2.0);
    let t3 = g.add_task("T3", 6.0, 3.0);
    let t4 = g.add_task("T4", 1.0, 1.0);
    g.add_edge(t1, t2, 1.0, 1.0).expect("valid edge");
    g.add_edge(t1, t3, 2.0, 1.0).expect("valid edge");
    g.add_edge(t2, t4, 1.0, 1.0).expect("valid edge");
    g.add_edge(t3, t4, 2.0, 1.0).expect("valid edge");
    (g, [t1, t2, t3, t4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_figure_2() {
        let (g, [t1, t2, t3, t4]) = dex();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.task(t1).work_blue, 3.0);
        assert_eq!(g.task(t1).work_red, 1.0);
        assert_eq!(g.task(t3).work_blue, 6.0);
        assert_eq!(g.task(t3).work_red, 3.0);
        assert_eq!(g.edge(g.edge_between(t1, t3).unwrap()).size, 2.0);
        assert_eq!(g.edge(g.edge_between(t2, t4).unwrap()).comm_cost, 1.0);
        assert_eq!(g.mem_req(t3), 4.0);
        assert!(g.validate().is_ok());
    }
}
