//! Discrete-event replay of a schedule and execution statistics.
//!
//! The validator (`crate::validate`) answers "is this schedule legal?"; this
//! module answers "what does executing it look like?": per-processor busy and
//! idle times, utilisation of each side of the platform, transferred data
//! volume, memory-occupancy statistics over time, and the instantaneous
//! degree of parallelism. The experiment write-ups use these numbers to
//! explain *why* one heuristic beats another (e.g. MemMinMin keeping the
//! accelerators busier than MemHEFT under generous memory).

use crate::memory::memory_profiles;
use crate::schedule::Schedule;
use mals_dag::TaskGraph;
use mals_platform::{Memory, Platform};

/// Busy/idle accounting for one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorStats {
    /// Processor index.
    pub proc: usize,
    /// Memory this processor is attached to.
    pub memory: Memory,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Total time spent executing tasks.
    pub busy: f64,
    /// Fraction of the makespan spent executing tasks (0 for an empty
    /// schedule).
    pub utilization: f64,
}

/// Statistics of one memory over the whole execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    /// Which memory.
    pub memory: Memory,
    /// Peak occupancy.
    pub peak: f64,
    /// Time-averaged occupancy over the makespan (0 for an empty schedule).
    pub average: f64,
}

/// Execution statistics of a (complete) schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionStats {
    /// Makespan of the schedule.
    pub makespan: f64,
    /// Per-processor accounting, indexed by processor id.
    pub processors: Vec<ProcessorStats>,
    /// Per-memory occupancy statistics (blue then red).
    pub memories: [MemoryStats; 2],
    /// Number of cross-memory transfers performed.
    pub transfers: usize,
    /// Total data volume moved across memories.
    pub transferred_volume: f64,
    /// Total time spent in cross-memory transfers (sum over transfers; they
    /// may overlap in wall-clock time).
    pub transfer_time: f64,
    /// Maximum number of tasks executing simultaneously.
    pub peak_parallelism: usize,
    /// Time-averaged number of tasks executing simultaneously.
    pub average_parallelism: f64,
}

impl ExecutionStats {
    /// Aggregate utilisation of the processors attached to `memory`.
    pub fn pool_utilization(&self, memory: Memory) -> f64 {
        let pool: Vec<&ProcessorStats> = self
            .processors
            .iter()
            .filter(|p| p.memory == memory)
            .collect();
        if pool.is_empty() {
            0.0
        } else {
            pool.iter().map(|p| p.utilization).sum::<f64>() / pool.len() as f64
        }
    }
}

/// Computes the execution statistics of `schedule`.
///
/// Unplaced tasks are ignored (statistics of a partial schedule describe the
/// placed prefix only).
pub fn execution_stats(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
) -> ExecutionStats {
    let makespan = schedule.makespan();

    // Per-processor accounting.
    let mut processors: Vec<ProcessorStats> = (0..platform.n_procs())
        .map(|proc| ProcessorStats {
            proc,
            memory: platform.memory_of(proc),
            tasks: 0,
            busy: 0.0,
            utilization: 0.0,
        })
        .collect();
    for placement in schedule.task_placements() {
        if placement.proc < platform.n_procs() {
            let entry = &mut processors[placement.proc];
            entry.tasks += 1;
            entry.busy += placement.duration();
        }
    }
    if makespan > 0.0 {
        for entry in &mut processors {
            entry.utilization = entry.busy / makespan;
        }
    }

    // Memory occupancy: peak and time-average of the replayed profiles.
    let profiles = memory_profiles(graph, platform, schedule);
    let memories = [Memory::Blue, Memory::Red].map(|mem| {
        let profile = &profiles[mem.index()];
        let peak = profile.max_value().max(0.0);
        let average = if makespan > 0.0 {
            let mut area = 0.0;
            let points: Vec<(f64, f64)> = profile.breakpoints().collect();
            for (idx, &(start, value)) in points.iter().enumerate() {
                let end = points.get(idx + 1).map(|&(x, _)| x).unwrap_or(makespan);
                let end = end.min(makespan);
                if end > start {
                    area += value * (end - start);
                }
            }
            area / makespan
        } else {
            0.0
        };
        MemoryStats {
            memory: mem,
            peak,
            average,
        }
    });

    // Transfers.
    let mut transfers = 0;
    let mut transferred_volume = 0.0;
    let mut transfer_time = 0.0;
    for comm in schedule.comm_placements() {
        transfers += 1;
        transferred_volume += graph.edge(comm.edge).size;
        transfer_time += comm.duration();
    }

    // Instantaneous parallelism profile via a sweep over start/finish events.
    let mut events: Vec<(f64, i32)> = Vec::new();
    for placement in schedule.task_placements() {
        if placement.duration() > 0.0 {
            events.push((placement.start, 1));
            events.push((placement.finish, -1));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut current = 0i32;
    let mut peak_parallelism = 0usize;
    let mut weighted = 0.0;
    let mut last_t = 0.0;
    for (t, delta) in events {
        weighted += current as f64 * (t - last_t);
        last_t = t;
        current += delta;
        peak_parallelism = peak_parallelism.max(current.max(0) as usize);
    }
    let average_parallelism = if makespan > 0.0 {
        weighted / makespan
    } else {
        0.0
    };

    ExecutionStats {
        makespan,
        processors,
        memories,
        transfers,
        transferred_volume,
        transfer_time,
        peak_parallelism,
        average_parallelism,
    }
}

/// Renders the statistics as a short human-readable report.
pub fn render_stats(stats: &ExecutionStats) -> String {
    let mut out = String::new();
    out.push_str(&format!("makespan: {:.3}\n", stats.makespan));
    out.push_str(&format!(
        "parallelism: peak {} / average {:.2}\n",
        stats.peak_parallelism, stats.average_parallelism
    ));
    out.push_str(&format!(
        "transfers: {} ({} units, {:.3} time)\n",
        stats.transfers, stats.transferred_volume, stats.transfer_time
    ));
    for mem in &stats.memories {
        out.push_str(&format!(
            "{} memory: peak {:.2}, average {:.2}\n",
            mem.memory, mem.peak, mem.average
        ));
    }
    for proc in &stats.processors {
        out.push_str(&format!(
            "proc {:>3} ({}): {} tasks, busy {:.3} ({:.0}%)\n",
            proc.proc,
            proc.memory,
            proc.tasks,
            proc.busy,
            proc.utilization * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};
    use mals_dag::TaskId;
    use mals_util::approx_eq;

    fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    /// The paper's schedule s1 (Figure 3).
    fn s1(g: &TaskGraph, [t1, t2, t3, t4]: [TaskId; 4]) -> Schedule {
        let mut s = Schedule::for_graph(g);
        s.place_task(TaskPlacement {
            task: t1,
            proc: 1,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 1,
            start: 1.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 0,
            start: 2.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 1,
            start: 5.0,
            finish: 6.0,
        });
        let e12 = g.edge_between(t1, t2).unwrap();
        let e24 = g.edge_between(t2, t4).unwrap();
        s.place_comm(CommPlacement {
            edge: e12,
            start: 1.0,
            finish: 2.0,
        });
        s.place_comm(CommPlacement {
            edge: e24,
            start: 4.0,
            finish: 5.0,
        });
        s
    }

    #[test]
    fn stats_of_paper_schedule_s1() {
        let (g, t) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let stats = execution_stats(&g, &platform, &s1(&g, t));
        assert_eq!(stats.makespan, 6.0);
        // Blue processor (proc 0) runs T2 for 2 units; red (proc 1) runs
        // T1 + T3 + T4 for 5 units.
        assert_eq!(stats.processors[0].tasks, 1);
        assert!(approx_eq(stats.processors[0].busy, 2.0));
        assert!(approx_eq(stats.processors[0].utilization, 2.0 / 6.0));
        assert_eq!(stats.processors[1].tasks, 3);
        assert!(approx_eq(stats.processors[1].busy, 5.0));
        // Two transfers of one unit each, one time unit each.
        assert_eq!(stats.transfers, 2);
        assert!(approx_eq(stats.transferred_volume, 2.0));
        assert!(approx_eq(stats.transfer_time, 2.0));
        // Memory peaks match the validator.
        assert!(approx_eq(stats.memories[0].peak, 2.0));
        assert!(approx_eq(stats.memories[1].peak, 5.0));
        assert!(stats.memories[1].average > 0.0);
        assert!(stats.memories[1].average <= stats.memories[1].peak);
        // T2 and T3 overlap on [2, 4): peak parallelism 2.
        assert_eq!(stats.peak_parallelism, 2);
        assert!(approx_eq(stats.average_parallelism, 7.0 / 6.0));
        // Pool utilisation aggregates per colour.
        assert!(approx_eq(stats.pool_utilization(Memory::Blue), 2.0 / 6.0));
        assert!(approx_eq(stats.pool_utilization(Memory::Red), 5.0 / 6.0));
    }

    #[test]
    fn stats_of_empty_schedule() {
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let stats = execution_stats(&g, &platform, &Schedule::for_graph(&g));
        assert_eq!(stats.makespan, 0.0);
        assert_eq!(stats.transfers, 0);
        assert_eq!(stats.peak_parallelism, 0);
        assert_eq!(stats.processors[0].utilization, 0.0);
        assert_eq!(stats.memories[0].peak, 0.0);
    }

    #[test]
    fn render_mentions_every_section() {
        let (g, t) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let stats = execution_stats(&g, &platform, &s1(&g, t));
        let text = render_stats(&stats);
        assert!(text.contains("makespan: 6.000"));
        assert!(text.contains("parallelism: peak 2"));
        assert!(text.contains("transfers: 2"));
        assert!(text.contains("blue memory: peak 2.00"));
        assert!(text.contains("proc   1 (red): 3 tasks"));
    }

    #[test]
    fn zero_duration_tasks_do_not_inflate_parallelism() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0.0, 0.0);
        let b = g.add_task("b", 2.0, 2.0);
        g.add_edge(a, b, 0.0, 0.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 0.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 0,
            start: 0.0,
            finish: 2.0,
        });
        let platform = Platform::single_pair(5.0, 5.0);
        let stats = execution_stats(&g, &platform, &s);
        assert_eq!(stats.peak_parallelism, 1);
        assert_eq!(stats.processors[0].tasks, 2);
    }
}
