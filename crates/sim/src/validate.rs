//! Independent validation of schedules.
//!
//! Every scheduler in the workspace (heuristics and exact solvers) produces a
//! [`Schedule`]; this module re-checks such schedules against the model of
//! Section 3 of the paper without reusing any of the schedulers' internal
//! bookkeeping, so that a bug in a scheduler cannot hide itself:
//!
//! 1. completeness and well-formedness (every task placed, durations match
//!    the processing time on the chosen resource, processor indices valid);
//! 2. flow dependencies, including cross-memory transfer placements;
//! 3. resource exclusivity (a processor runs one task at a time);
//! 4. memory capacity on both memories, via the replay of
//!    [`crate::memory::memory_profiles`].

use crate::memory::{memory_peaks, MemoryPeaks};
use crate::schedule::Schedule;
use mals_dag::{EdgeId, TaskGraph, TaskId};
use mals_platform::{Memory, Platform};
use mals_util::{approx_eq, approx_le, EPSILON};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A task has no placement.
    MissingTask(TaskId),
    /// A placement references a processor that does not exist.
    InvalidProcessor(TaskId),
    /// A task starts before time 0 or has `finish < start`.
    NegativeTime(TaskId),
    /// A task's duration does not equal its processing time on the memory it
    /// was mapped to.
    DurationMismatch {
        /// The offending task.
        task: TaskId,
        /// Duration found in the schedule.
        actual: f64,
        /// Expected processing time on the assigned resource.
        expected: f64,
    },
    /// A same-memory dependency is violated (`finish(i) > start(j)`).
    FlowViolation {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A cross-memory edge has no communication placement.
    MissingComm(EdgeId),
    /// A communication starts before its source task completes, finishes
    /// after its destination task starts, or has the wrong duration.
    CommViolation {
        /// The offending edge.
        edge: EdgeId,
    },
    /// A communication is placed on an edge whose endpoints share a memory.
    SpuriousComm(EdgeId),
    /// Two tasks overlap on the same processor.
    ResourceOverlap {
        /// First task (earlier start).
        first: TaskId,
        /// Second task (overlapping start).
        second: TaskId,
    },
    /// The memory peak exceeds the capacity of a memory.
    MemoryExceeded {
        /// Which memory overflowed.
        memory: Memory,
        /// Peak usage found by the replay.
        peak: f64,
        /// Capacity of that memory.
        bound: f64,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::MissingTask(t) => write!(f, "task {t} is not placed"),
            ValidationError::InvalidProcessor(t) => write!(f, "task {t} uses an invalid processor"),
            ValidationError::NegativeTime(t) => write!(f, "task {t} has an invalid time window"),
            ValidationError::DurationMismatch {
                task,
                actual,
                expected,
            } => {
                write!(f, "task {task} runs for {actual} instead of {expected}")
            }
            ValidationError::FlowViolation { edge } => write!(f, "flow violated on edge {edge}"),
            ValidationError::MissingComm(e) => write!(f, "cross-memory edge {e} has no transfer"),
            ValidationError::CommViolation { edge } => {
                write!(f, "transfer on edge {edge} violates timing constraints")
            }
            ValidationError::SpuriousComm(e) => {
                write!(
                    f,
                    "edge {e} has a transfer although both endpoints share a memory"
                )
            }
            ValidationError::ResourceOverlap { first, second } => {
                write!(
                    f,
                    "tasks {first} and {second} overlap on the same processor"
                )
            }
            ValidationError::MemoryExceeded {
                memory,
                peak,
                bound,
            } => {
                write!(f, "{memory} memory peak {peak} exceeds bound {bound}")
            }
        }
    }
}

/// Outcome of validating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Makespan of the schedule.
    pub makespan: f64,
    /// Memory peaks measured by the replay.
    pub peaks: MemoryPeaks,
    /// All constraint violations found (empty for a valid schedule).
    pub errors: Vec<ValidationError>,
}

impl ValidationReport {
    /// Returns `true` if no violation was found.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validates `schedule` against the task graph, the platform's resources and
/// both memory capacities.
pub fn validate(graph: &TaskGraph, platform: &Platform, schedule: &Schedule) -> ValidationReport {
    let mut errors = Vec::new();

    // 1. Placement well-formedness.
    for task in graph.task_ids() {
        match schedule.task(task) {
            None => errors.push(ValidationError::MissingTask(task)),
            Some(p) => {
                if p.proc >= platform.n_procs() {
                    errors.push(ValidationError::InvalidProcessor(task));
                    continue;
                }
                if p.start < -EPSILON || p.finish < p.start - EPSILON {
                    errors.push(ValidationError::NegativeTime(task));
                }
                let mem = platform.memory_of(p.proc);
                let expected = graph.task(task).work_on(mem.is_blue());
                if !approx_eq(p.duration(), expected) {
                    errors.push(ValidationError::DurationMismatch {
                        task,
                        actual: p.duration(),
                        expected,
                    });
                }
            }
        }
    }

    // 2. Flow dependencies and communications.
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id);
        let (Some(src), Some(dst)) = (schedule.task(edge.src), schedule.task(edge.dst)) else {
            continue; // already reported as MissingTask
        };
        if src.proc >= platform.n_procs() || dst.proc >= platform.n_procs() {
            continue; // already reported as InvalidProcessor
        }
        let cross = platform.memory_of(src.proc) != platform.memory_of(dst.proc);
        match (cross, schedule.comm(edge_id)) {
            (false, None) => {
                if !approx_le(src.finish, dst.start) {
                    errors.push(ValidationError::FlowViolation { edge: edge_id });
                }
            }
            (false, Some(_)) => {
                errors.push(ValidationError::SpuriousComm(edge_id));
                if !approx_le(src.finish, dst.start) {
                    errors.push(ValidationError::FlowViolation { edge: edge_id });
                }
            }
            (true, None) => errors.push(ValidationError::MissingComm(edge_id)),
            (true, Some(c)) => {
                let ok = approx_le(src.finish, c.start)
                    && approx_le(c.finish, dst.start)
                    && approx_eq(c.duration(), edge.comm_cost);
                if !ok {
                    errors.push(ValidationError::CommViolation { edge: edge_id });
                }
            }
        }
    }

    // 3. Resource exclusivity.
    let mut per_proc: Vec<Vec<TaskId>> = vec![Vec::new(); platform.n_procs()];
    for task in graph.task_ids() {
        if let Some(p) = schedule.task(task) {
            if p.proc < platform.n_procs() {
                per_proc[p.proc].push(task);
            }
        }
    }
    for tasks in &mut per_proc {
        tasks.sort_by(|&a, &b| {
            let pa = schedule.task(a).unwrap();
            let pb = schedule.task(b).unwrap();
            pa.start
                .total_cmp(&pb.start)
                .then(pa.finish.total_cmp(&pb.finish))
        });
        for pair in tasks.windows(2) {
            let first = schedule.task(pair[0]).unwrap();
            let second = schedule.task(pair[1]).unwrap();
            if !approx_le(first.finish, second.start) {
                errors.push(ValidationError::ResourceOverlap {
                    first: pair[0],
                    second: pair[1],
                });
            }
        }
    }

    // 4. Memory capacity.
    let peaks = memory_peaks(graph, platform, schedule);
    for mem in Memory::BOTH {
        let bound = platform.memory_bound(mem);
        if !approx_le(peaks.get(mem), bound) {
            errors.push(ValidationError::MemoryExceeded {
                memory: mem,
                peak: peaks.get(mem),
                bound,
            });
        }
    }

    ValidationReport {
        makespan: schedule.makespan(),
        peaks,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, TaskPlacement};

    fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    fn s1(g: &TaskGraph, [t1, t2, t3, t4]: [TaskId; 4]) -> Schedule {
        let mut s = Schedule::for_graph(g);
        s.place_task(TaskPlacement {
            task: t1,
            proc: 1,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 1,
            start: 1.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 0,
            start: 2.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 1,
            start: 5.0,
            finish: 6.0,
        });
        let e12 = g.edge_between(t1, t2).unwrap();
        let e24 = g.edge_between(t2, t4).unwrap();
        s.place_comm(CommPlacement {
            edge: e12,
            start: 1.0,
            finish: 2.0,
        });
        s.place_comm(CommPlacement {
            edge: e24,
            start: 4.0,
            finish: 5.0,
        });
        s
    }

    #[test]
    fn paper_schedule_s1_is_valid_with_bound_5() {
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(5.0, 5.0);
        let report = validate(&g, &platform, &s);
        assert!(report.is_valid(), "unexpected errors: {:?}", report.errors);
        assert_eq!(report.makespan, 6.0);
        assert_eq!(report.peaks.blue, 2.0);
        assert_eq!(report.peaks.red, 5.0);
    }

    #[test]
    fn paper_schedule_s1_is_invalid_with_bound_4() {
        // The paper notes that with M_blue = M_red = 4, s1 is no longer
        // acceptable (its red peak is 5).
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(4.0, 4.0);
        let report = validate(&g, &platform, &s);
        assert!(!report.is_valid());
        assert!(report.errors.iter().any(|e| matches!(
            e,
            ValidationError::MemoryExceeded {
                memory: Memory::Red,
                ..
            }
        )));
    }

    #[test]
    fn missing_task_detected() {
        let (g, t) = dex();
        let mut s = s1(&g, t);
        s = {
            // Rebuild without T4.
            let mut partial = Schedule::for_graph(&g);
            for &task in &t[..3] {
                partial.place_task(*s.task(task).unwrap());
            }
            partial
        };
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingTask(x) if *x == t[3])));
    }

    #[test]
    fn duration_mismatch_detected() {
        let (g, t) = dex();
        let mut s = s1(&g, t);
        // T1 on the red processor should take 1 unit; claim 2.
        s.place_task(TaskPlacement {
            task: t[0],
            proc: 1,
            start: 0.0,
            finish: 2.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::DurationMismatch { task, .. } if *task == t[0])));
    }

    #[test]
    fn flow_violation_detected() {
        let (g, [t1, t2, t3, t4]) = dex();
        let mut s = Schedule::for_graph(&g);
        // T3 starts before its parent T1 finishes, both on blue.
        s.place_task(TaskPlacement {
            task: t1,
            proc: 0,
            start: 0.0,
            finish: 3.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 0,
            start: 2.0,
            finish: 8.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 1,
            start: 3.0,
            finish: 5.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 1,
            start: 9.0,
            finish: 10.0,
        });
        let platform = Platform::single_pair(100.0, 100.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::FlowViolation { .. })));
        // T1 -> T2 crosses memories without a transfer.
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::MissingComm(_))));
        // T3 and T1 also overlap on processor 0.
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::ResourceOverlap { .. })));
    }

    #[test]
    fn comm_violation_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        let e = g.add_edge(a, b, 1.0, 3.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 1,
            start: 2.0,
            finish: 3.0,
        });
        // Transfer of duration 1 instead of 3, overlapping b's start.
        s.place_comm(CommPlacement {
            edge: e,
            start: 1.0,
            finish: 2.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::CommViolation { .. })));
    }

    #[test]
    fn spurious_comm_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        let e = g.add_edge(a, b, 1.0, 1.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 0,
            start: 2.0,
            finish: 3.0,
        });
        s.place_comm(CommPlacement {
            edge: e,
            start: 1.0,
            finish: 2.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|er| matches!(er, ValidationError::SpuriousComm(_))));
    }

    #[test]
    fn invalid_processor_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 7,
            start: 0.0,
            finish: 1.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::InvalidProcessor(_))));
    }

    #[test]
    fn negative_time_detected() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: -2.0,
            finish: -1.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, ValidationError::NegativeTime(_))));
    }

    #[test]
    fn zero_duration_tasks_may_share_an_instant() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 0.0, 0.0);
        let b = g.add_task("b", 0.0, 0.0);
        g.add_edge(a, b, 0.0, 0.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 1.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 0,
            start: 1.0,
            finish: 1.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let report = validate(&g, &platform, &s);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidationError::MemoryExceeded {
            memory: Memory::Red,
            peak: 7.0,
            bound: 5.0,
        };
        assert!(e.to_string().contains("red"));
        assert!(e.to_string().contains('7'));
        let e2 = ValidationError::MissingTask(TaskId::from_index(3));
        assert!(e2.to_string().contains("T3"));
    }
}
