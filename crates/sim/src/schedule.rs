//! The schedule data structure: `(σ, τ, proc)` of the paper.

use mals_dag::{EdgeId, TaskGraph, TaskId};
use mals_platform::{Memory, Platform, ProcId};

/// Placement of one task: which processor runs it and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskPlacement {
    /// The task.
    pub task: TaskId,
    /// Processor executing the task (`proc(i)` in the paper).
    pub proc: ProcId,
    /// Starting time `σ(i)`.
    pub start: f64,
    /// Completion time `σ(i) + W_i`.
    pub finish: f64,
}

impl TaskPlacement {
    /// Duration of the placement.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// Placement of one cross-memory communication: when the file of an edge is
/// copied from one memory to the other.
///
/// Only edges whose endpoints run on different memories have a communication
/// placement; same-memory edges communicate instantaneously in the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommPlacement {
    /// The edge whose file is transferred.
    pub edge: EdgeId,
    /// Starting time `τ(i, j)`.
    pub start: f64,
    /// Completion time `τ(i, j) + C_{i,j}`.
    pub finish: f64,
}

impl CommPlacement {
    /// Duration of the transfer.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// A (possibly partial) schedule of a task graph on a dual-memory platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    tasks: Vec<Option<TaskPlacement>>,
    comms: Vec<Option<CommPlacement>>,
}

impl Schedule {
    /// Creates an empty schedule for a graph with `n_tasks` tasks and
    /// `n_edges` edges.
    pub fn empty(n_tasks: usize, n_edges: usize) -> Self {
        Schedule {
            tasks: vec![None; n_tasks],
            comms: vec![None; n_edges],
        }
    }

    /// Creates an empty schedule sized for `graph`.
    pub fn for_graph(graph: &TaskGraph) -> Self {
        Schedule::empty(graph.n_tasks(), graph.n_edges())
    }

    /// Records the placement of a task (overwrites any previous placement).
    pub fn place_task(&mut self, placement: TaskPlacement) {
        self.tasks[placement.task.index()] = Some(placement);
    }

    /// Records the placement of a cross-memory communication.
    pub fn place_comm(&mut self, placement: CommPlacement) {
        self.comms[placement.edge.index()] = Some(placement);
    }

    /// Placement of `task`, if it has been scheduled.
    #[inline]
    pub fn task(&self, task: TaskId) -> Option<&TaskPlacement> {
        self.tasks[task.index()].as_ref()
    }

    /// Placement of the communication on `edge`, if any.
    #[inline]
    pub fn comm(&self, edge: EdgeId) -> Option<&CommPlacement> {
        self.comms[edge.index()].as_ref()
    }

    /// Number of tasks already placed.
    pub fn n_placed(&self) -> usize {
        self.tasks.iter().filter(|p| p.is_some()).count()
    }

    /// Number of task slots (the size of the graph the schedule was created
    /// for, placed or not).
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of edge slots.
    pub fn n_edges(&self) -> usize {
        self.comms.len()
    }

    /// Returns `true` if every task of `graph` has a placement.
    pub fn is_complete(&self, graph: &TaskGraph) -> bool {
        graph.n_tasks() == self.n_placed() && self.tasks.len() == graph.n_tasks()
    }

    /// Iterates over the task placements recorded so far.
    pub fn task_placements(&self) -> impl Iterator<Item = &TaskPlacement> {
        self.tasks.iter().filter_map(|p| p.as_ref())
    }

    /// Iterates over the communication placements recorded so far.
    pub fn comm_placements(&self) -> impl Iterator<Item = &CommPlacement> {
        self.comms.iter().filter_map(|p| p.as_ref())
    }

    /// The memory on which `task` executes under `platform`, if placed.
    pub fn memory_of(&self, platform: &Platform, task: TaskId) -> Option<Memory> {
        self.task(task).map(|p| platform.memory_of(p.proc))
    }

    /// Returns `true` if the endpoints of `edge` are placed on different
    /// memories (so the edge requires a transfer).
    pub fn is_cross_memory(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        edge: EdgeId,
    ) -> Option<bool> {
        let e = graph.edge(edge);
        let src = self.memory_of(platform, e.src)?;
        let dst = self.memory_of(platform, e.dst)?;
        Some(src != dst)
    }

    /// The makespan: completion time of the last placed task (0 for an empty
    /// schedule).
    pub fn makespan(&self) -> f64 {
        self.task_placements().map(|p| p.finish).fold(0.0, f64::max)
    }

    /// Number of tasks placed on each memory `(blue, red)`.
    pub fn memory_assignment_counts(&self, platform: &Platform) -> (usize, usize) {
        let mut blue = 0;
        let mut red = 0;
        for p in self.task_placements() {
            match platform.memory_of(p.proc) {
                Memory::Blue => blue += 1,
                Memory::Red => red += 1,
            }
        }
        (blue, red)
    }

    /// Total time spent in cross-memory transfers.
    pub fn total_comm_time(&self) -> f64 {
        self.comm_placements().map(|c| c.duration()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    /// The schedule s1 of Figure 3 of the paper (P1 = P2 = 1; proc 0 is the
    /// blue processor, proc 1 the red one).
    pub(crate) fn s1(g: &TaskGraph, t: [TaskId; 4]) -> Schedule {
        let [t1, t2, t3, t4] = t;
        let mut s = Schedule::for_graph(g);
        s.place_task(TaskPlacement {
            task: t1,
            proc: 1,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 1,
            start: 1.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 0,
            start: 2.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 1,
            start: 5.0,
            finish: 6.0,
        });
        // Communications: (T1,T2) crosses red -> blue, (T2,T4) blue -> red.
        let e12 = g.edge_between(t1, t2).unwrap();
        let e24 = g.edge_between(t2, t4).unwrap();
        s.place_comm(CommPlacement {
            edge: e12,
            start: 1.0,
            finish: 2.0,
        });
        s.place_comm(CommPlacement {
            edge: e24,
            start: 4.0,
            finish: 5.0,
        });
        s
    }

    #[test]
    fn makespan_of_s1_is_six() {
        let (g, t) = dex();
        let s = s1(&g, t);
        assert_eq!(s.makespan(), 6.0);
        assert!(s.is_complete(&g));
        assert_eq!(s.n_placed(), 4);
    }

    #[test]
    fn memory_assignment_of_s1() {
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(5.0, 5.0);
        assert_eq!(s.memory_of(&platform, t[0]), Some(Memory::Red));
        assert_eq!(s.memory_of(&platform, t[1]), Some(Memory::Blue));
        assert_eq!(s.memory_assignment_counts(&platform), (1, 3));
    }

    #[test]
    fn cross_memory_detection() {
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(5.0, 5.0);
        let e12 = g.edge_between(t[0], t[1]).unwrap();
        let e13 = g.edge_between(t[0], t[2]).unwrap();
        assert_eq!(s.is_cross_memory(&g, &platform, e12), Some(true));
        assert_eq!(s.is_cross_memory(&g, &platform, e13), Some(false));
    }

    #[test]
    fn empty_schedule_properties() {
        let (g, _) = dex();
        let s = Schedule::for_graph(&g);
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(s.n_placed(), 0);
        assert!(!s.is_complete(&g));
        assert_eq!(s.total_comm_time(), 0.0);
        assert!(s.task(TaskId::from_index(0)).is_none());
    }

    #[test]
    fn total_comm_time_of_s1() {
        let (g, t) = dex();
        let s = s1(&g, t);
        assert_eq!(s.total_comm_time(), 2.0);
    }

    #[test]
    fn placement_durations() {
        let p = TaskPlacement {
            task: TaskId::from_index(0),
            proc: 0,
            start: 2.0,
            finish: 5.0,
        };
        assert_eq!(p.duration(), 3.0);
        let c = CommPlacement {
            edge: EdgeId::from_index(0),
            start: 1.0,
            finish: 2.5,
        };
        assert_eq!(c.duration(), 1.5);
    }
}
