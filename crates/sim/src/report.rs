//! JSON serialisation of schedules and validation reports.
//!
//! The solver-service surface (`SolveRequest` → `SolveReport`) ships
//! schedules and their validation verdicts as JSON; this module owns those
//! encodings so every consumer agrees on one shape:
//!
//! ```json
//! {"n_tasks": 4, "n_edges": 4,
//!  "tasks": [{"task": 0, "proc": 1, "start": 0.0, "finish": 1.0}, …],
//!  "comms": [{"edge": 0, "start": 1.0, "finish": 2.0}, …]}
//! ```
//!
//! The sizes are embedded so a schedule can be reconstructed without the
//! graph at hand; placements are emitted in id order, making the encoding
//! deterministic. Floats round-trip bit-for-bit (see `mals_util::json`).

use crate::memory::MemoryPeaks;
use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
use crate::validate::ValidationReport;
use mals_dag::{EdgeId, TaskId};
use mals_util::Json;

/// Errors raised while decoding a schedule from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportError(pub String);

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad schedule JSON: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

fn field_f64(obj: &Json, key: &str, what: &str) -> Result<f64, ReportError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ReportError(format!("{what}: missing or non-numeric `{key}`")))
}

fn field_usize(obj: &Json, key: &str, what: &str) -> Result<usize, ReportError> {
    obj.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ReportError(format!("{what}: missing or non-integer `{key}`")))
}

/// Serialises a schedule (placements in id order).
pub fn schedule_to_json(schedule: &Schedule) -> Json {
    let tasks = schedule
        .task_placements()
        .map(|p| {
            Json::obj([
                ("task", Json::Num(p.task.index() as f64)),
                ("proc", Json::Num(p.proc as f64)),
                ("start", Json::Num(p.start)),
                ("finish", Json::Num(p.finish)),
            ])
        })
        .collect();
    let comms = schedule
        .comm_placements()
        .map(|c| {
            Json::obj([
                ("edge", Json::Num(c.edge.index() as f64)),
                ("start", Json::Num(c.start)),
                ("finish", Json::Num(c.finish)),
            ])
        })
        .collect();
    Json::obj([
        ("n_tasks", Json::Num(schedule.n_tasks() as f64)),
        ("n_edges", Json::Num(schedule.n_edges() as f64)),
        ("tasks", Json::Arr(tasks)),
        ("comms", Json::Arr(comms)),
    ])
}

/// Parses the shape produced by [`schedule_to_json`].
pub fn schedule_from_json(json: &Json) -> Result<Schedule, ReportError> {
    let n_tasks = field_usize(json, "n_tasks", "schedule")?;
    let n_edges = field_usize(json, "n_edges", "schedule")?;
    let mut schedule = Schedule::empty(n_tasks, n_edges);
    let tasks = json
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError("missing `tasks` array".into()))?;
    for (i, p) in tasks.iter().enumerate() {
        let what = format!("task placement {i}");
        let task = field_usize(p, "task", &what)?;
        if task >= n_tasks {
            return Err(ReportError(format!("{what}: task {task} out of range")));
        }
        schedule.place_task(TaskPlacement {
            task: TaskId::from_index(task),
            proc: field_usize(p, "proc", &what)?,
            start: field_f64(p, "start", &what)?,
            finish: field_f64(p, "finish", &what)?,
        });
    }
    let comms = json
        .get("comms")
        .and_then(Json::as_arr)
        .ok_or_else(|| ReportError("missing `comms` array".into()))?;
    for (i, c) in comms.iter().enumerate() {
        let what = format!("comm placement {i}");
        let edge = field_usize(c, "edge", &what)?;
        if edge >= n_edges {
            return Err(ReportError(format!("{what}: edge {edge} out of range")));
        }
        schedule.place_comm(CommPlacement {
            edge: EdgeId::from_index(edge),
            start: field_f64(c, "start", &what)?,
            finish: field_f64(c, "finish", &what)?,
        });
    }
    Ok(schedule)
}

/// Serialises memory peaks as `{"blue": …, "red": …}`.
pub fn peaks_to_json(peaks: &MemoryPeaks) -> Json {
    Json::obj([
        ("blue", Json::Num(peaks.blue)),
        ("red", Json::Num(peaks.red)),
    ])
}

/// Parses the shape produced by [`peaks_to_json`].
pub fn peaks_from_json(json: &Json) -> Result<MemoryPeaks, ReportError> {
    Ok(MemoryPeaks {
        blue: field_f64(json, "blue", "peaks")?,
        red: field_f64(json, "red", "peaks")?,
    })
}

/// Serialises a validation verdict: makespan, peaks, validity flag and the
/// rendered constraint violations (empty for a valid schedule).
pub fn validation_to_json(report: &ValidationReport) -> Json {
    Json::obj([
        ("makespan", Json::Num(report.makespan)),
        ("peaks", peaks_to_json(&report.peaks)),
        ("valid", Json::Bool(report.is_valid())),
        (
            "errors",
            Json::Arr(
                report
                    .errors
                    .iter()
                    .map(|e| Json::str(e.to_string()))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use mals_dag::TaskGraph;
    use mals_platform::Platform;

    fn dex_schedule() -> (TaskGraph, Schedule) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        for (task, proc, start, finish) in [
            (t1, 1, 0.0, 1.0),
            (t3, 1, 1.0, 4.0),
            (t2, 0, 2.0, 4.0),
            (t4, 1, 5.0, 6.0),
        ] {
            s.place_task(TaskPlacement {
                task,
                proc,
                start,
                finish,
            });
        }
        let e12 = g.edge_between(t1, t2).unwrap();
        let e24 = g.edge_between(t2, t4).unwrap();
        s.place_comm(CommPlacement {
            edge: e12,
            start: 1.0,
            finish: 2.0,
        });
        s.place_comm(CommPlacement {
            edge: e24,
            start: 4.0,
            finish: 5.0,
        });
        (g, s)
    }

    #[test]
    fn schedule_json_roundtrip() {
        let (_, s) = dex_schedule();
        let json = schedule_to_json(&s);
        assert_eq!(schedule_from_json(&json).unwrap(), s);
        // Through text, too.
        let reparsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(schedule_from_json(&reparsed).unwrap(), s);
    }

    #[test]
    fn partial_schedule_roundtrip() {
        let (g, _) = dex_schedule();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: TaskId::from_index(0),
            proc: 0,
            start: 0.0,
            finish: 3.0,
        });
        let back = schedule_from_json(&schedule_to_json(&s)).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.n_placed(), 1);
    }

    #[test]
    fn roundtripped_schedule_revalidates() {
        let (g, s) = dex_schedule();
        let platform = Platform::single_pair(5.0, 5.0);
        let back = schedule_from_json(&schedule_to_json(&s)).unwrap();
        let report = validate(&g, &platform, &back);
        assert!(report.is_valid(), "{:?}", report.errors);
        assert_eq!(report.makespan, 6.0);
    }

    #[test]
    fn validation_json_shape() {
        let (g, s) = dex_schedule();
        let report = validate(&g, &Platform::single_pair(4.0, 4.0), &s);
        let json = validation_to_json(&report);
        assert_eq!(json.get("valid").unwrap().as_bool(), Some(false));
        assert_eq!(json.get("makespan").unwrap().as_f64(), Some(6.0));
        let errors = json.get("errors").unwrap().as_arr().unwrap();
        assert!(!errors.is_empty());
        assert!(errors[0].as_str().unwrap().contains("memory"));
        let peaks = peaks_from_json(json.get("peaks").unwrap()).unwrap();
        assert_eq!(peaks.red, 5.0);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(schedule_from_json(&Json::Null).is_err());
        let missing_arrays = Json::parse(r#"{"n_tasks": 1, "n_edges": 0}"#).unwrap();
        assert!(schedule_from_json(&missing_arrays).is_err());
        let out_of_range = Json::parse(
            r#"{"n_tasks": 1, "n_edges": 0,
                "tasks": [{"task": 5, "proc": 0, "start": 0, "finish": 1}], "comms": []}"#,
        )
        .unwrap();
        let err = schedule_from_json(&out_of_range).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
