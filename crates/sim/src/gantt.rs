//! Human-readable rendering of schedules.
//!
//! Two renderings are provided: a textual trace (one line per task and per
//! transfer, sorted by starting time) and a coarse ASCII Gantt chart, one row
//! per processor. Both are used by the examples and handy when debugging
//! heuristics.

use crate::schedule::Schedule;
use mals_dag::TaskGraph;
use mals_platform::{Memory, Platform};

/// Renders a trace of the schedule: one line per task and per communication,
/// sorted by starting time.
pub fn render_trace(graph: &TaskGraph, platform: &Platform, schedule: &Schedule) -> String {
    #[derive(Debug)]
    enum Row {
        Task {
            start: f64,
            finish: f64,
            name: String,
            proc: usize,
            mem: Memory,
        },
        Comm {
            start: f64,
            finish: f64,
            name: String,
        },
    }
    let mut rows: Vec<Row> = Vec::new();
    for p in schedule.task_placements() {
        rows.push(Row::Task {
            start: p.start,
            finish: p.finish,
            name: graph.task(p.task).name.clone(),
            proc: p.proc,
            mem: platform.memory_of(p.proc),
        });
    }
    for c in schedule.comm_placements() {
        let edge = graph.edge(c.edge);
        rows.push(Row::Comm {
            start: c.start,
            finish: c.finish,
            name: format!(
                "{} -> {}",
                graph.task(edge.src).name,
                graph.task(edge.dst).name
            ),
        });
    }
    rows.sort_by(|a, b| {
        let (sa, sb) = match (a, b) {
            (
                Row::Task { start: x, .. } | Row::Comm { start: x, .. },
                Row::Task { start: y, .. } | Row::Comm { start: y, .. },
            ) => (*x, *y),
        };
        sa.total_cmp(&sb)
    });
    let mut out = String::new();
    out.push_str(&format!("makespan: {:.3}\n", schedule.makespan()));
    for row in rows {
        match row {
            Row::Task {
                start,
                finish,
                name,
                proc,
                mem,
            } => {
                out.push_str(&format!(
                    "[{start:8.2} .. {finish:8.2}]  task {name:<16} on proc {proc} ({mem})\n"
                ));
            }
            Row::Comm {
                start,
                finish,
                name,
            } => {
                out.push_str(&format!("[{start:8.2} .. {finish:8.2}]  transfer {name}\n"));
            }
        }
    }
    out
}

/// Renders a coarse ASCII Gantt chart, one row per processor, `width`
/// characters wide.
pub fn render_gantt(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
    width: usize,
) -> String {
    let width = width.max(10);
    let makespan = schedule.makespan();
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty schedule)\n");
        return out;
    }
    let scale = width as f64 / makespan;
    for proc in 0..platform.n_procs() {
        let mem = platform.memory_of(proc);
        let mut row = vec!['.'; width];
        for p in schedule.task_placements().filter(|p| p.proc == proc) {
            let from = ((p.start * scale).floor() as usize).min(width - 1);
            let to = ((p.finish * scale).ceil() as usize).clamp(from + 1, width);
            let label: Vec<char> = graph.task(p.task).name.chars().collect();
            for (k, slot) in row[from..to].iter_mut().enumerate() {
                *slot = if k < label.len() { label[k] } else { '#' };
            }
        }
        let colour = match mem {
            Memory::Blue => 'B',
            Memory::Red => 'R',
        };
        out.push_str(&format!(
            "p{proc:<3}{colour} |{}|\n",
            row.iter().collect::<String>()
        ));
    }
    out.push_str(&format!(
        "        0{}{:.2}\n",
        " ".repeat(width.saturating_sub(8)),
        makespan
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
    use mals_dag::TaskGraph;

    fn tiny() -> (TaskGraph, Schedule, Platform) {
        let mut g = TaskGraph::new();
        let a = g.add_task("A", 2.0, 1.0);
        let b = g.add_task("B", 2.0, 1.0);
        let e = g.add_edge(a, b, 1.0, 1.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 2.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 1,
            start: 3.0,
            finish: 4.0,
        });
        s.place_comm(CommPlacement {
            edge: e,
            start: 2.0,
            finish: 3.0,
        });
        (g, s, Platform::single_pair(10.0, 10.0))
    }

    #[test]
    fn trace_mentions_every_task_and_transfer() {
        let (g, s, p) = tiny();
        let trace = render_trace(&g, &p, &s);
        assert!(trace.contains("task A"));
        assert!(trace.contains("task B"));
        assert!(trace.contains("transfer A -> B"));
        assert!(trace.contains("makespan: 4.000"));
        assert!(trace.contains("(blue)"));
        assert!(trace.contains("(red)"));
    }

    #[test]
    fn trace_is_sorted_by_start_time() {
        let (g, s, p) = tiny();
        let trace = render_trace(&g, &p, &s);
        let pos_a = trace.find("task A").unwrap();
        let pos_c = trace.find("transfer").unwrap();
        let pos_b = trace.find("task B").unwrap();
        assert!(pos_a < pos_c && pos_c < pos_b);
    }

    #[test]
    fn gantt_has_one_row_per_processor() {
        let (g, s, p) = tiny();
        let gantt = render_gantt(&g, &p, &s, 40);
        let rows: Vec<&str> = gantt.lines().collect();
        assert_eq!(rows.len(), 3); // 2 processors + time axis
        assert!(rows[0].starts_with("p0  B"));
        assert!(rows[1].starts_with("p1  R"));
        assert!(rows[0].contains('A'));
        assert!(rows[1].contains('B'));
    }

    #[test]
    fn gantt_of_empty_schedule() {
        let g = TaskGraph::new();
        let s = Schedule::for_graph(&g);
        let p = Platform::single_pair(1.0, 1.0);
        assert!(render_gantt(&g, &p, &s, 40).contains("empty"));
    }
}
