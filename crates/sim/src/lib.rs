//! Schedule representation, validation and memory-usage replay.
//!
//! A *schedule* in the paper is a triple `(σ, τ, proc)`: task starting times,
//! communication starting times and the task → processor mapping. This crate
//! provides:
//!
//! * [`Schedule`] — the concrete representation produced by every scheduler
//!   in the workspace (placements for tasks and for cross-memory
//!   communications);
//! * [`validate()`] — an independent checker for the three families of
//!   constraints of Section 3 of the paper (flow dependencies, resource
//!   exclusivity, memory capacity), which replays the file-residency rules to
//!   compute the actual memory peaks;
//! * [`memory::memory_profiles`] — the replay itself, reusable to measure the
//!   memory footprint of memory-oblivious schedules (needed to normalise the
//!   experiment figures by HEFT's memory usage);
//! * [`gantt`] — human-readable Gantt / trace rendering of schedules;
//! * [`report`] — JSON serialisation of schedules and validation verdicts
//!   for the solver-service surface (`SolveRequest` / `SolveReport`).

#![warn(missing_docs)]

pub mod gantt;
pub mod memory;
pub mod replay;
pub mod report;
pub mod schedule;
pub mod validate;

pub use memory::{memory_peaks, memory_profiles, MemoryPeaks};
pub use replay::{execution_stats, ExecutionStats, MemoryStats, ProcessorStats};
pub use report::{
    peaks_from_json, peaks_to_json, schedule_from_json, schedule_to_json, validation_to_json,
    ReportError,
};
pub use schedule::{CommPlacement, Schedule, TaskPlacement};
pub use validate::{validate, ValidationError, ValidationReport};
