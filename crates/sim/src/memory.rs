//! Memory-usage replay: reconstructing `BlueMemUsed` / `RedMemUsed` profiles
//! from a schedule.
//!
//! The residency rules of Section 3.2 of the paper are:
//!
//! * the file of an edge `(i, j)` whose endpoints run **in the same memory**
//!   occupies that memory from the start of `i` (it is part of `MemReq(i)`)
//!   until the completion of `j` (it is an input file of `j`, discarded when
//!   `j` finishes);
//! * the file of a **cross-memory** edge occupies the source memory from the
//!   start of `i` until the end of the transfer, and the destination memory
//!   from the start of the transfer until the completion of `j` (during the
//!   transfer it is resident in both memories).
//!
//! The profiles computed here are the ground truth the validator checks
//! against, and they are also used to measure the memory footprint of the
//! memory-oblivious HEFT / MinMin schedules (the paper's normalisation
//! baseline for Figures 10 and 12).

use crate::schedule::Schedule;
use mals_dag::TaskGraph;
use mals_platform::{Memory, Platform};
use mals_util::{approx_eq, Staircase, EPSILON};

/// Peak memory usage of a schedule on each memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPeaks {
    /// Peak usage of the blue memory (`M^s_blue(D)` in the paper).
    pub blue: f64,
    /// Peak usage of the red memory (`M^s_red(D)` in the paper).
    pub red: f64,
}

impl MemoryPeaks {
    /// Peak of the given memory.
    pub fn get(&self, mem: Memory) -> f64 {
        match mem {
            Memory::Blue => self.blue,
            Memory::Red => self.red,
        }
    }

    /// The larger of the two peaks — the quantity used to normalise the
    /// memory axis of the experiment figures.
    pub fn max(&self) -> f64 {
        self.blue.max(self.red)
    }
}

/// Computes the memory-usage profile of each memory under `schedule`.
///
/// Files whose producer or consumer is not placed are ignored (the validator
/// reports those as missing-placement errors separately). A cross-memory edge
/// without a communication placement is treated as if the transfer happened
/// instantaneously when the consumer starts; again the validator flags the
/// missing placement itself.
pub fn memory_profiles(
    graph: &TaskGraph,
    platform: &Platform,
    schedule: &Schedule,
) -> [Staircase; 2] {
    // Sweep-line replay: collect ±size events per memory, sort once, and
    // bulk-load the staircases left to right — `O(E log E)` for `E` files
    // instead of the `O(E · k)` of one `add_range` per file, which was the
    // dominant cost of replaying 10⁵-task schedules. The empty-interval
    // guard matches `Staircase::add_range`, and event times within the
    // shared tolerance of each other collapse onto one breakpoint just as
    // `ensure_breakpoint` would snap them.
    let mut events: [Vec<(f64, f64)>; 2] = [Vec::new(), Vec::new()];
    let mut resident = |mem: Memory, from: f64, until: f64, size: f64| {
        let from = from.max(0.0);
        if until <= from + EPSILON {
            return;
        }
        events[mem.index()].push((from, size));
        events[mem.index()].push((until, -size));
    };
    for edge_id in graph.edge_ids() {
        let edge = graph.edge(edge_id);
        if edge.size == 0.0 {
            continue;
        }
        let (Some(src), Some(dst)) = (schedule.task(edge.src), schedule.task(edge.dst)) else {
            continue;
        };
        let mem_src = platform.memory_of(src.proc);
        let mem_dst = platform.memory_of(dst.proc);
        if mem_src == mem_dst {
            resident(mem_src, src.start, dst.finish, edge.size);
        } else {
            let (transfer_start, transfer_finish) = match schedule.comm(edge_id) {
                Some(c) => (c.start, c.finish),
                None => (dst.start, dst.start),
            };
            resident(mem_src, src.start, transfer_finish, edge.size);
            resident(mem_dst, transfer_start, dst.finish, edge.size);
        }
    }
    events.map(|mut ev| {
        if ev.is_empty() {
            return Staircase::constant(0.0);
        }
        // Stable by time: simultaneous events keep file order, so the
        // accumulated value at each breakpoint is deterministic.
        ev.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut bps: Vec<(f64, f64)> = Vec::with_capacity(ev.len() + 1);
        bps.push((0.0, 0.0));
        let mut acc = 0.0;
        for (t, delta) in ev {
            acc += delta;
            let last = bps.last_mut().expect("never empty");
            if approx_eq(last.0, t) {
                last.1 = acc;
            } else {
                bps.push((t, acc));
            }
        }
        Staircase::from_breakpoints(bps)
    })
}

/// Computes the peak memory usage of `schedule` on each memory.
pub fn memory_peaks(graph: &TaskGraph, platform: &Platform, schedule: &Schedule) -> MemoryPeaks {
    let profiles = memory_profiles(graph, platform, schedule);
    MemoryPeaks {
        blue: profiles[Memory::Blue.index()].max_value().max(0.0),
        red: profiles[Memory::Red.index()].max_value().max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{CommPlacement, Schedule, TaskPlacement};
    use mals_dag::TaskId;

    fn dex() -> (TaskGraph, [TaskId; 4]) {
        let mut g = TaskGraph::new();
        let t1 = g.add_task("T1", 3.0, 1.0);
        let t2 = g.add_task("T2", 2.0, 2.0);
        let t3 = g.add_task("T3", 6.0, 3.0);
        let t4 = g.add_task("T4", 1.0, 1.0);
        g.add_edge(t1, t2, 1.0, 1.0).unwrap();
        g.add_edge(t1, t3, 2.0, 1.0).unwrap();
        g.add_edge(t2, t4, 1.0, 1.0).unwrap();
        g.add_edge(t3, t4, 2.0, 1.0).unwrap();
        (g, [t1, t2, t3, t4])
    }

    /// Schedule s1 from Figure 3 of the paper.
    fn s1(g: &TaskGraph, [t1, t2, t3, t4]: [TaskId; 4]) -> Schedule {
        let mut s = Schedule::for_graph(g);
        s.place_task(TaskPlacement {
            task: t1,
            proc: 1,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 1,
            start: 1.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 0,
            start: 2.0,
            finish: 4.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 1,
            start: 5.0,
            finish: 6.0,
        });
        let e12 = g.edge_between(t1, t2).unwrap();
        let e24 = g.edge_between(t2, t4).unwrap();
        s.place_comm(CommPlacement {
            edge: e12,
            start: 1.0,
            finish: 2.0,
        });
        s.place_comm(CommPlacement {
            edge: e24,
            start: 4.0,
            finish: 5.0,
        });
        s
    }

    #[test]
    fn paper_example_memory_peaks() {
        // The paper states: s1 uses a peak of 2 units of blue memory and 5
        // units of red memory.
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(5.0, 5.0);
        let peaks = memory_peaks(&g, &platform, &s);
        assert_eq!(peaks.blue, 2.0);
        assert_eq!(peaks.red, 5.0);
        assert_eq!(peaks.max(), 5.0);
        assert_eq!(peaks.get(Memory::Blue), 2.0);
        assert_eq!(peaks.get(Memory::Red), 5.0);
    }

    #[test]
    fn paper_example_per_task_usage() {
        // Usage of the red memory while each task runs, per Section 3.2:
        // T1 -> 3, T3 -> 5, T4 -> 3; blue while T2 runs -> 2.
        let (g, t) = dex();
        let s = s1(&g, t);
        let platform = Platform::single_pair(5.0, 5.0);
        let profiles = memory_profiles(&g, &platform, &s);
        let red = &profiles[Memory::Red.index()];
        let blue = &profiles[Memory::Blue.index()];
        assert_eq!(red.max_over(0.0, 1.0), 3.0); // during T1
        assert_eq!(red.max_over(1.0, 4.0), 5.0); // during T3
        assert_eq!(red.max_over(5.0, 6.0), 3.0); // during T4
        assert_eq!(blue.max_over(2.0, 4.0), 2.0); // during T2
    }

    #[test]
    fn same_memory_schedule_uses_single_memory() {
        let (g, [t1, t2, t3, t4]) = dex();
        let mut s = Schedule::for_graph(&g);
        // Everything on the blue processor, sequentially.
        s.place_task(TaskPlacement {
            task: t1,
            proc: 0,
            start: 0.0,
            finish: 3.0,
        });
        s.place_task(TaskPlacement {
            task: t2,
            proc: 0,
            start: 3.0,
            finish: 5.0,
        });
        s.place_task(TaskPlacement {
            task: t3,
            proc: 0,
            start: 5.0,
            finish: 11.0,
        });
        s.place_task(TaskPlacement {
            task: t4,
            proc: 0,
            start: 11.0,
            finish: 12.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let peaks = memory_peaks(&g, &platform, &s);
        assert_eq!(peaks.red, 0.0);
        // All four files coexist between the start of T2's output production
        // and the completion of T2... the peak is F12+F13+F24+F34 at the
        // moment T2 runs? F12 lives [0,5), F13 [0,11), F24 [3,12), F34 [5,12):
        // on [3,5) usage = 1+2+1 = 4; on [5,11) = 2+1+2 = 5. Peak = 5.
        assert_eq!(peaks.blue, 5.0);
    }

    #[test]
    fn zero_size_files_do_not_count() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        g.add_edge(a, b, 0.0, 0.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 0,
            start: 1.0,
            finish: 2.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let peaks = memory_peaks(&g, &platform, &s);
        assert_eq!(peaks.blue, 0.0);
        assert_eq!(peaks.red, 0.0);
    }

    #[test]
    fn incomplete_schedule_ignores_unplaced_endpoints() {
        let (g, [t1, ..]) = dex();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: t1,
            proc: 0,
            start: 0.0,
            finish: 3.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let peaks = memory_peaks(&g, &platform, &s);
        assert_eq!(peaks.blue, 0.0);
    }

    #[test]
    fn cross_memory_transfer_occupies_both_memories() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", 1.0, 1.0);
        let b = g.add_task("b", 1.0, 1.0);
        let e = g.add_edge(a, b, 4.0, 2.0).unwrap();
        let mut s = Schedule::for_graph(&g);
        s.place_task(TaskPlacement {
            task: a,
            proc: 0,
            start: 0.0,
            finish: 1.0,
        });
        s.place_task(TaskPlacement {
            task: b,
            proc: 1,
            start: 5.0,
            finish: 6.0,
        });
        s.place_comm(CommPlacement {
            edge: e,
            start: 2.0,
            finish: 4.0,
        });
        let platform = Platform::single_pair(10.0, 10.0);
        let profiles = memory_profiles(&g, &platform, &s);
        let blue = &profiles[Memory::Blue.index()];
        let red = &profiles[Memory::Red.index()];
        // Blue holds the file from the start of `a` until the transfer ends.
        assert_eq!(blue.value_at(0.5), 4.0);
        assert_eq!(blue.value_at(3.0), 4.0);
        assert_eq!(blue.value_at(4.5), 0.0);
        // Red holds it from the start of the transfer until `b` completes.
        assert_eq!(red.value_at(1.0), 0.0);
        assert_eq!(red.value_at(3.0), 4.0);
        assert_eq!(red.value_at(5.5), 4.0);
        assert_eq!(red.value_at(6.5), 0.0);
    }
}
