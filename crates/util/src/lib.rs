//! Shared utilities for the MALS (Memory-Aware List Scheduling) workspace.
//!
//! This crate deliberately has **no external dependencies** so that every
//! simulation in the workspace is reproducible bit-for-bit from a seed on any
//! platform. It provides:
//!
//! * [`rng`] — a small, fast, deterministic PCG-family random number
//!   generator used by the workload generators and the experiment campaigns.
//! * [`stats`] — summary statistics (mean, standard deviation, percentiles,
//!   confidence intervals) used when aggregating campaign results.
//! * [`staircase`] — piecewise-constant functions of time, the data structure
//!   behind the `free_mem` availability profiles of the memory-aware
//!   heuristics in the paper (Section 5.1).
//! * [`pool`] — a reusable worker pool and a one-shot parallel map, used to
//!   run scheduling campaigns over many DAGs concurrently and to evaluate
//!   the ready list of a single schedule across threads.
//! * [`float`] — tolerant floating-point comparison helpers and a total-order
//!   wrapper.
//! * [`json`] — a dependency-free JSON value type (parser + emitter) backing
//!   the solver-service request/report surface.
//! * [`streaming`] — constant-memory aggregation (Welford accumulators and a
//!   fixed-grid quantile sketch) for campaigns too large to hold their
//!   per-instance results, with bit-exact JSON checkpointing.
//! * [`cancel`] — cooperative cancellation primitives ([`CancelToken`],
//!   [`Deadline`], [`CancelSignal`]) polled by the anytime solvers and the
//!   portfolio racer.
//! * [`clock`] — the [`Clock`] seam between wall time ([`SystemClock`]) and
//!   the manually advanced [`VirtualClock`] driving the online replay
//!   simulator.
//! * [`frame`] — newline-delimited frame I/O (size-capped, timeout-tolerant)
//!   for the persistent scheduling daemon's wire protocol.

#![warn(missing_docs)]

pub mod cancel;
pub mod chunked;
pub mod clock;
pub mod float;
pub mod frame;
pub mod json;
pub mod pool;
pub mod rng;
pub mod staircase;
pub mod stats;
pub mod streaming;

pub use cancel::{CancelSignal, CancelToken, Deadline};
pub use chunked::ChunkedIndexSet;
pub use clock::{Clock, SystemClock, VirtualClock};
pub use float::{approx_eq, approx_ge, approx_le, F64Ord, EPSILON};
pub use frame::{write_frame, FrameError, FrameReader, DEFAULT_MAX_FRAME_BYTES};
pub use json::{Json, JsonError};
pub use pool::{parallel_map, parallel_map_indexed, ParallelConfig, WorkerPool};
pub use rng::Pcg64;
pub use staircase::Staircase;
pub use stats::{OnlineStats, Summary};
pub use streaming::QuantileSketch;
