//! A small deterministic pseudo-random number generator.
//!
//! The workload generators (DAGGEN-style random DAGs, random task weights)
//! and the experiment campaigns all need reproducible randomness. Instead of
//! depending on an external crate whose output may change between versions,
//! the workspace ships a fixed PCG-XSH-RR 64/32 generator (O'Neill, 2014)
//! seeded through SplitMix64. The stream produced for a given seed is part of
//! the repository's reproducibility contract: the DAG sets used by the
//! figure-reproduction binaries are derived from documented seeds.

/// PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// 64 bits of state, 32 bits of output per step, period 2^64 per stream.
/// Not cryptographically secure — strictly for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u64,
    inc: u64,
}

const PCG_MULTIPLIER: u64 = 6364136223846793005;

/// SplitMix64 step, used to expand a user seed into the PCG state/stream.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Two generators created with the same seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let init_state = splitmix64(&mut s);
        let init_inc = splitmix64(&mut s) | 1; // stream selector must be odd
        let mut rng = Pcg64 {
            state: 0,
            inc: init_inc,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(init_state);
        rng.state = rng.state.wrapping_mul(PCG_MULTIPLIER).wrapping_add(rng.inc);
        rng
    }

    /// Derives an independent child generator; useful to give each DAG of a
    /// campaign its own stream while keeping the campaign seeded by a single
    /// value.
    pub fn fork(&mut self, salt: u64) -> Self {
        let a = self.next_u64();
        Pcg64::new(a ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let span = span + 1;
        // Lemire-style rejection sampling to avoid modulo bias.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return lo + (r % span);
            }
        }
    }

    /// Returns a uniformly distributed integer in `[lo, hi]` (inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.uniform_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_f64: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.uniform_usize(0, i);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.uniform_usize(0, slice.len() - 1)])
        }
    }

    /// Samples `k` distinct indices from `0..n` (order unspecified).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need to be final.
        for i in 0..k {
            let j = self.uniform_usize(i, n - 1);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5, "streams from different seeds should diverge");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_bounds_and_coverage() {
        let mut rng = Pcg64::new(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.uniform_u64(5, 14);
            assert!((5..=14).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn uniform_u64_single_point() {
        let mut rng = Pcg64::new(3);
        for _ in 0..10 {
            assert_eq!(rng.uniform_u64(9, 9), 9);
        }
    }

    #[test]
    fn uniform_f64_bounds() {
        let mut rng = Pcg64::new(11);
        for _ in 0..10_000 {
            let v = rng.uniform_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = Pcg64::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform_f64(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Pcg64::new(9);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::new(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = Pcg64::new(17);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Pcg64::new(19);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Pcg64::new(23);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..100).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 5);
    }
}
