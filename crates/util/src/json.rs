//! A minimal JSON value type with a parser and an emitter.
//!
//! The workspace builds without a crates registry, so the service surface
//! (`SolveRequest` / `SolveReport`) cannot lean on `serde`. This module is
//! the stand-in: a plain [`Json`] tree, a recursive-descent parser and a
//! deterministic emitter. It covers the JSON the workspace produces and
//! consumes — objects, arrays, strings with standard escapes (including
//! `\uXXXX` with surrogate pairs), finite numbers, booleans and `null` —
//! and nothing more exotic (no comments, no trailing commas).
//!
//! Numbers are emitted with Rust's `{:?}` float formatting, which is the
//! shortest representation that round-trips bit-for-bit through
//! `str::parse::<f64>`; re-encoding a parsed document is therefore stable.
//! Non-finite numbers have no JSON spelling, so [`Json::Num`] emits them as
//! `null` — encoders with a meaningful infinity (e.g. unbounded memory
//! capacities) must map it explicitly before building the tree.

/// A parsed (or to-be-emitted) JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has a single number type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the emitter.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset into the input and a description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value of `key` if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number value as a non-negative integer (rejects fractions and
    /// anything above 2⁵³, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        ((0.0..=9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0).then_some(x as u64)
    }

    /// The number value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Emits the document without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Emits the document with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0
                    && x.abs() < 9_007_199_254_740_992.0
                    && !(*x == 0.0 && x.is_sign_negative())
                {
                    // Exactly-integral values print without the `.0` (counts,
                    // ids, thread numbers); parsing restores the same f64.
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    // `{:?}` prints the shortest round-tripping decimal and
                    // always includes a `.0` or exponent, which is valid JSON.
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_sequence(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, depth + 1);
                })
            }
            Json::Obj(pairs) => {
                write_sequence(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth + 1);
                })
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the common case).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second `\uXXXX` must follow.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            other => return Err(self.err(format!("unknown escape `\\{}`", other as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x"));
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn compact_roundtrip() {
        let doc = Json::obj([
            ("name", Json::str("T4 \"final\"\n")),
            ("items", Json::Arr(vec![Json::Num(1.25), Json::Null])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = doc.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn pretty_roundtrip_and_shape() {
        let doc = Json::obj([("a", Json::Arr(vec![Json::Num(1.0), Json::Num(1.5)]))]);
        let text = doc.to_pretty();
        assert!(
            text.contains("\n  \"a\": [\n    1,\n    1.5\n  ]\n"),
            "{text}"
        );
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, -0.0, 123456789.123456] {
            let text = Json::Num(x).to_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} re-read as {back}");
        }
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é€""#).unwrap().as_str(), Some("é€"));
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(Json::parse(r#""🦀""#).unwrap().as_str(), Some("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err());
        // Control characters are escaped on output and re-read.
        let doc = Json::str("a\u{1}b");
        assert_eq!(Json::parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn errors_carry_positions() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(err.to_string().contains("byte 6"));
    }

    #[test]
    fn object_lookup_misses() {
        let doc = Json::parse(r#"{"a": 1}"#).unwrap();
        assert!(doc.get("b").is_none());
        assert!(Json::Null.get("a").is_none());
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.0));
    }
}
