//! A sorted set of `u32` indices with chunked storage.
//!
//! [`ChunkedIndexSet`] is the integer sibling of the chunked
//! [`crate::Staircase`]: the sorted values live in fixed-capacity chunks
//! (`CAP = 128`) with a per-chunk first-element index, so membership tests
//! stay `O(log k)` (two-level `partition_point`) while insertion and removal
//! move at most one chunk — `O(CAP)` — instead of memmoving the whole tail
//! of a flat vector. Chunks split when full and merge with a neighbour when
//! they drain below `MIN`, keeping occupancy within a constant factor of
//! optimal.
//!
//! The scheduling engine uses it for ready frontiers (task ids in
//! `PartialSchedule`, priority positions in MemHEFT's selection loop): a
//! 10⁵-task layered DAG keeps thousands of tasks ready at once, which is
//! past the break-even point where a flat `Vec::insert` memmove starts to
//! dominate the commit path.
//!
//! Iteration yields the values in ascending order, exactly like iterating a
//! sorted `Vec` — callers that replace one with the other see the same
//! sequence, which is what keeps schedules bit-identical.

/// Chunk capacity. Two cache lines of `u32`s per chunk keeps the memmove on
/// insert cheap while the per-chunk index stays tiny (k/128 entries).
const CAP: usize = 128;
/// A chunk that drains below `MIN` merges with a neighbour if the combined
/// size fits in `MERGE_MAX`, so occupancy never falls below `MIN/CAP` except
/// in the last chunk.
const MIN: usize = 32;
/// Merges only happen when the result leaves split headroom.
const MERGE_MAX: usize = CAP - MIN;

/// A sorted set of `u32` values in chunked storage (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ChunkedIndexSet {
    /// Non-empty sorted runs; globally sorted (every value in `chunks[c]` is
    /// less than every value in `chunks[c + 1]`).
    chunks: Vec<Vec<u32>>,
    /// `first[c]` = `chunks[c][0]`, the search index.
    first: Vec<u32>,
    /// Total number of values.
    len: usize,
}

impl ChunkedIndexSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from values that are already sorted ascending and unique.
    ///
    /// # Panics
    /// Panics (debug) if the input is not strictly increasing.
    pub fn from_sorted(values: impl IntoIterator<Item = u32>) -> Self {
        // Fill to CAP - MIN so early inserts do not immediately split.
        const FILL: usize = CAP - MIN;
        let mut set = ChunkedIndexSet::new();
        for value in values {
            match set.chunks.last_mut() {
                Some(last) if last.len() < FILL => {
                    debug_assert!(*last.last().expect("chunks are non-empty") < value);
                    last.push(value);
                }
                _ => {
                    debug_assert!(set.first.last().is_none_or(|&f| f < value));
                    set.chunks.push(Vec::with_capacity(CAP));
                    set.chunks.last_mut().expect("just pushed").push(value);
                    set.first.push(value);
                }
            }
            set.len += 1;
        }
        set
    }

    /// Number of values in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest value, if any.
    pub fn first(&self) -> Option<u32> {
        self.first.first().copied()
    }

    /// The chunk that could contain `value`: the last chunk whose first
    /// element is `<= value`, or 0 when `value` sorts before everything.
    fn chunk_for(&self, value: u32) -> usize {
        self.first
            .partition_point(|&f| f <= value)
            .saturating_sub(1)
    }

    /// `true` when `value` is in the set. `O(log k)`.
    pub fn contains(&self, value: u32) -> bool {
        if self.chunks.is_empty() {
            return false;
        }
        self.chunks[self.chunk_for(value)]
            .binary_search(&value)
            .is_ok()
    }

    /// Inserts `value`; returns `false` if it was already present.
    /// `O(log k + CAP)`.
    pub fn insert(&mut self, value: u32) -> bool {
        if self.chunks.is_empty() {
            self.chunks.push(Vec::with_capacity(CAP));
            self.chunks[0].push(value);
            self.first.push(value);
            self.len = 1;
            return true;
        }
        let c = self.chunk_for(value);
        match self.chunks[c].binary_search(&value) {
            Ok(_) => false,
            Err(pos) => {
                if self.chunks[c].len() == CAP {
                    self.split(c);
                    // Re-locate: the split moved the upper half into a new
                    // chunk, so the insertion point may be there now.
                    return self.insert(value);
                }
                self.chunks[c].insert(pos, value);
                if pos == 0 {
                    self.first[c] = value;
                }
                self.len += 1;
                true
            }
        }
    }

    /// Removes `value`; returns `false` if it was absent. `O(log k + CAP)`.
    pub fn remove(&mut self, value: u32) -> bool {
        if self.chunks.is_empty() {
            return false;
        }
        let c = self.chunk_for(value);
        match self.chunks[c].binary_search(&value) {
            Err(_) => false,
            Ok(pos) => {
                self.chunks[c].remove(pos);
                self.len -= 1;
                if self.chunks[c].is_empty() {
                    self.chunks.remove(c);
                    self.first.remove(c);
                } else {
                    if pos == 0 {
                        self.first[c] = self.chunks[c][0];
                    }
                    if self.chunks[c].len() < MIN {
                        self.merge_around(c);
                    }
                }
                true
            }
        }
    }

    /// Splits the full chunk `c` into two halves.
    fn split(&mut self, c: usize) {
        let upper = self.chunks[c].split_off(CAP / 2);
        self.first.insert(c + 1, upper[0]);
        self.chunks.insert(c + 1, upper);
    }

    /// Merges the under-full chunk `c` with a neighbour when the combined
    /// size leaves headroom; prefers the smaller neighbour.
    fn merge_around(&mut self, c: usize) {
        let left = (c > 0).then(|| self.chunks[c - 1].len());
        let right = (c + 1 < self.chunks.len()).then(|| self.chunks[c + 1].len());
        let take_left = match (left, right) {
            (Some(l), Some(r)) => l <= r,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_left {
            if left.expect("checked") + self.chunks[c].len() <= MERGE_MAX {
                let tail = self.chunks.remove(c);
                self.first.remove(c);
                self.chunks[c - 1].extend_from_slice(&tail);
            }
        } else if let Some(r) = right {
            if r + self.chunks[c].len() <= MERGE_MAX {
                let tail = self.chunks.remove(c + 1);
                self.first.remove(c + 1);
                self.chunks[c].extend_from_slice(&tail);
            }
        }
    }

    /// Iterates the values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|chunk| chunk.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// xorshift64* — deterministic, no external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn assert_matches(set: &ChunkedIndexSet, oracle: &BTreeSet<u32>) {
        assert_eq!(set.len(), oracle.len());
        assert_eq!(set.is_empty(), oracle.is_empty());
        assert_eq!(set.first(), oracle.first().copied());
        let got: Vec<u32> = set.iter().collect();
        let want: Vec<u32> = oracle.iter().copied().collect();
        assert_eq!(got, want);
        // Structural invariants.
        for (c, chunk) in set.chunks.iter().enumerate() {
            assert!(!chunk.is_empty(), "empty chunk survived");
            assert!(chunk.len() <= CAP, "chunk over capacity");
            assert_eq!(set.first[c], chunk[0], "first index out of sync");
        }
    }

    #[test]
    fn empty_set() {
        let set = ChunkedIndexSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.first(), None);
        assert!(!set.contains(0));
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn insert_remove_storm_matches_btreeset() {
        for seed in 1..=6u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut set = ChunkedIndexSet::new();
            let mut oracle = BTreeSet::new();
            for step in 0..4000 {
                let value = (rng.next() % 2000) as u32;
                if rng.next().is_multiple_of(3) {
                    assert_eq!(set.remove(value), oracle.remove(&value));
                } else {
                    assert_eq!(set.insert(value), oracle.insert(value));
                }
                assert_eq!(set.contains(value), oracle.contains(&value));
                if step % 64 == 0 {
                    assert_matches(&set, &oracle);
                }
            }
            assert_matches(&set, &oracle);
            // Drain completely: exercises merge-on-sparse down to empty.
            let values: Vec<u32> = set.iter().collect();
            for value in values {
                assert!(set.remove(value));
                assert!(oracle.remove(&value));
            }
            assert_matches(&set, &oracle);
        }
    }

    #[test]
    fn split_at_capacity_boundary() {
        let mut set = ChunkedIndexSet::new();
        // Fill exactly one chunk, then insert below, inside and above it.
        for i in 0..CAP as u32 {
            set.insert(2 * i + 10);
        }
        assert_eq!(set.chunks.len(), 1);
        for probe in [0u32, 11, 2 * CAP as u32 + 100] {
            assert!(set.insert(probe));
        }
        let got: Vec<u32> = set.iter().collect();
        let mut want: Vec<u32> = (0..CAP as u32).map(|i| 2 * i + 10).collect();
        want.extend([0, 11, 2 * CAP as u32 + 100]);
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(set.chunks.len() >= 2, "a split must have happened");
    }

    #[test]
    fn from_sorted_round_trips() {
        let values: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let set = ChunkedIndexSet::from_sorted(values.iter().copied());
        assert_eq!(set.len(), values.len());
        let got: Vec<u32> = set.iter().collect();
        assert_eq!(got, values);
        assert!(set.contains(999 * 3));
        assert!(!set.contains(1));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut set = ChunkedIndexSet::new();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert_eq!(set.len(), 1);
        assert!(set.remove(7));
        assert!(!set.remove(7));
        assert!(set.is_empty());
    }
}
