//! Piecewise-constant functions of time ("staircase" functions).
//!
//! The memory-aware heuristics of the paper (Section 5.1) maintain, for each
//! memory `µ`, the profile `free_mem^{(µ)}(t)` of memory still available at
//! every instant of the partial schedule. The paper stores it as "a list of
//! couples `[(x_1, val_1), ..., (x_ℓ, val_ℓ)]`" — the representation
//! implemented here, together with the two queries the heuristics need:
//!
//! * update the profile on a half-open interval or a suffix (reserving or
//!   releasing a file), and
//! * find the earliest time `t ≥ t_min` such that the profile stays above a
//!   threshold **forever after** `t` (the `task_mem_EST` / `comm_mem_EST`
//!   computations).
//!
//! # Storage and complexity
//!
//! Breakpoints are stored in sorted order across a sequence of fixed-capacity
//! *chunks* (at most `CHUNK_CAP` = 64 breakpoints each). Each chunk carries a
//! suffix-extrema index over its own values, and a chunk-level index
//! (`first_x`, `chunk_suffix`) summarises the chunks, so with `k` breakpoints
//! [`value_at`], [`min_from`], [`earliest_sustained_ge`] and
//! [`earliest_sustained_le`] are `O(log k)` via two-level `partition_point`.
//! Breakpoint insertion is `O(CHUNK_CAP)` — a full chunk splits in two,
//! sparse chunks re-merge — instead of the `O(k)` tail memmove of a flat
//! vector, which profiling showed was the last super-logarithmic term per
//! scheduler commit at 10⁵ tasks. Likewise, repairing the extrema indices
//! after a mutation touches only the chunks whose values changed plus an
//! early-stopping leftward walk over the chunk summaries.
//!
//! # Why deltas are applied eagerly (no per-chunk lazy offsets)
//!
//! An obvious further step would be to make [`add_from`] / [`add_range`]
//! `O(log k)` by storing a pending per-chunk offset and pushing it down on
//! access. That design is rejected here because it cannot preserve the
//! crate's bit-identity guarantee (schedules must be bit-identical across
//! refactors and thread counts):
//!
//! * accumulating offsets reorders float additions — `v + (d₁ + d₂)` is not
//!   `(v + d₁) + d₂` in IEEE 754 — so stored values would drift from the
//!   eager sequence, and
//! * segment merging uses [`approx_eq`], whose tolerance has a *relative*
//!   component: a uniform shift to large magnitudes genuinely changes which
//!   adjacent segments merge, so the merge pass must observe post-shift
//!   values across the whole changed region anyway. Since correctness forces
//!   that scan, laziness saves nothing and risks divergence.
//!
//! Deltas are therefore added eagerly, point by point, in the same order as
//! the historical flat implementation; the chunked layout only changes
//! *where* the points live, never the float operations performed on them.
//!
//! [`value_at`]: Staircase::value_at
//! [`min_from`]: Staircase::min_from
//! [`earliest_sustained_ge`]: Staircase::earliest_sustained_ge
//! [`earliest_sustained_le`]: Staircase::earliest_sustained_le
//! [`add_from`]: Staircase::add_from
//! [`add_range`]: Staircase::add_range

use crate::float::{approx_eq, approx_ge, EPSILON};

/// Maximum number of breakpoints per chunk; a full chunk splits in two.
const CHUNK_CAP: usize = 64;
/// Split point of a full chunk: the left half keeps this many points.
const CHUNK_MID: usize = CHUNK_CAP / 2;
/// Chunks that fall below this many points try to merge with a neighbour.
const CHUNK_MIN: usize = 16;
/// A sparse merge only happens if the combined chunk stays at or below this.
const MERGE_MAX: usize = CHUNK_CAP - CHUNK_MIN;

/// Neutral element for (min, max) extrema folds.
const NEUTRAL: (f64, f64) = (f64::INFINITY, f64::NEG_INFINITY);

/// A position in the two-level storage: breakpoint `idx` of chunk `chunk`.
///
/// Positions are kept *normalised*: `idx` is strictly inside its chunk,
/// except for the global end position `(last_chunk, last_len)`. Under that
/// invariant the derived lexicographic order matches global breakpoint order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Pos {
    chunk: usize,
    idx: usize,
}

/// Sentinel "infinitely far right" position (used as an open-ended bound).
const POS_INF: Pos = Pos {
    chunk: usize::MAX,
    idx: 0,
};

/// One storage chunk: a sorted run of breakpoints plus its suffix extrema.
#[derive(Debug, Clone)]
struct Chunk {
    /// Breakpoints `(x, v)`, sorted by strictly increasing `x`.
    points: Vec<(f64, f64)>,
    /// `suffix[i] = (min, max)` of the values `points[i..]` of this chunk.
    suffix: Vec<(f64, f64)>,
}

impl Chunk {
    fn with_point(pt: (f64, f64)) -> Self {
        let mut points = Vec::with_capacity(CHUNK_CAP);
        points.push(pt);
        let mut suffix = Vec::with_capacity(CHUNK_CAP);
        suffix.push((pt.1, pt.1));
        Chunk { points, suffix }
    }

    /// Rebuilds the per-chunk suffix extrema by a right-to-left fold.
    fn rebuild_suffix(&mut self) {
        let n = self.points.len();
        self.suffix.clear();
        self.suffix.resize(n, NEUTRAL);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in (0..n).rev() {
            let v = self.points[i].1;
            lo = lo.min(v);
            hi = hi.max(v);
            self.suffix[i] = (lo, hi);
        }
    }
}

/// A piecewise-constant function `f : [0, +∞) → ℝ`.
///
/// Semantically a sorted list of breakpoints `(x_i, v_i)`, meaning
/// `f(t) = v_i` for `t ∈ [x_i, x_{i+1})` and `f(t) = v_ℓ` for `t ≥ x_ℓ`.
/// The first breakpoint is always at `x = 0`. Internally the list is split
/// across fixed-capacity chunks (see the module docs for the layout and the
/// complexity trade-offs).
#[derive(Debug, Clone)]
pub struct Staircase {
    /// The chunks, globally sorted: every `x` in `chunks[c]` is strictly
    /// less than every `x` in `chunks[c + 1]`. Never empty; no chunk is
    /// empty.
    chunks: Vec<Chunk>,
    /// `first_x[c]` = x-coordinate of the first breakpoint of chunk `c`.
    first_x: Vec<f64>,
    /// `chunk_suffix[c]` = (min, max) of **all** values from the start of
    /// chunk `c` to the end of the function.
    chunk_suffix: Vec<(f64, f64)>,
    /// Total number of breakpoints.
    n: usize,
}

/// Equality is a property of the function, i.e. of the breakpoints; the
/// extrema indices are derived data.
impl PartialEq for Staircase {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.breakpoints().eq(other.breakpoints())
    }
}

impl Staircase {
    /// Creates a function that is constant and equal to `value` everywhere.
    pub fn constant(value: f64) -> Self {
        Staircase {
            chunks: vec![Chunk::with_point((0.0, value))],
            first_x: vec![0.0],
            chunk_suffix: vec![(value, value)],
            n: 1,
        }
    }

    /// Builds a staircase from breakpoints sorted by strictly increasing
    /// `x`, the first at `x = 0`. Adjacent approx-equal values are merged
    /// exactly as the incremental mutations would merge them, so bulk
    /// construction and an equivalent mutation sequence produce the same
    /// representation. Runs in `O(k)` — the bulk path for replay/validation
    /// code that would otherwise pay `O(k)` *per insertion*.
    ///
    /// # Panics
    ///
    /// Panics if the input is empty or the first breakpoint is not at
    /// `x = 0`; debug builds also check the ordering.
    pub fn from_breakpoints(points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        // Fill chunks to less than capacity so later point insertions do
        // not split immediately.
        const FILL: usize = CHUNK_CAP - CHUNK_MIN;
        let mut out = Staircase {
            chunks: Vec::new(),
            first_x: Vec::new(),
            chunk_suffix: Vec::new(),
            n: 0,
        };
        let mut last: Option<(f64, f64)> = None;
        for (x, v) in points {
            if let Some((px, pv)) = last {
                debug_assert!(px < x, "breakpoints must be strictly increasing");
                if approx_eq(pv, v) {
                    continue;
                }
            } else {
                assert_eq!(x, 0.0, "first breakpoint must be at x = 0");
            }
            last = Some((x, v));
            match out.chunks.last_mut() {
                Some(ch) if ch.points.len() < FILL => ch.points.push((x, v)),
                _ => {
                    out.chunks.push(Chunk::with_point((x, v)));
                    out.first_x.push(x);
                }
            }
            out.n += 1;
        }
        assert!(out.n > 0, "a staircase needs at least one breakpoint");
        out.chunk_suffix.resize(out.chunks.len(), NEUTRAL);
        let mut tail = NEUTRAL;
        for c in (0..out.chunks.len()).rev() {
            out.chunks[c].rebuild_suffix();
            let local = out.chunks[c].suffix[0];
            tail = (local.0.min(tail.0), local.1.max(tail.1));
            out.chunk_suffix[c] = tail;
        }
        out
    }

    /// Number of breakpoints in the internal representation.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the function is represented by a single segment.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Iterates over the breakpoints `(x_i, v_i)` of the representation.
    pub fn breakpoints(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.chunks.iter().flat_map(|c| c.points.iter().copied())
    }

    // ---- position arithmetic ------------------------------------------

    #[inline]
    fn point(&self, p: Pos) -> (f64, f64) {
        self.chunks[p.chunk].points[p.idx]
    }

    /// Normalises an end-of-chunk position to the start of the next chunk
    /// (the global end stays at `(last, len)`).
    #[inline]
    fn normalize(&self, p: Pos) -> Pos {
        if p.idx == self.chunks[p.chunk].points.len() && p.chunk + 1 < self.chunks.len() {
            Pos {
                chunk: p.chunk + 1,
                idx: 0,
            }
        } else {
            p
        }
    }

    /// Global predecessor of a (normalised) position, saturating at the
    /// first breakpoint — the two-level equivalent of `saturating_sub(1)`.
    #[inline]
    fn pos_prev(&self, p: Pos) -> Pos {
        if p.idx > 0 {
            Pos {
                chunk: p.chunk,
                idx: p.idx - 1,
            }
        } else if p.chunk > 0 {
            let c = p.chunk - 1;
            Pos {
                chunk: c,
                idx: self.chunks[c].points.len() - 1,
            }
        } else {
            Pos { chunk: 0, idx: 0 }
        }
    }

    /// Two-level `partition_point` over the breakpoints: `pred` must be
    /// monotone in `x` (a prefix of the sorted breakpoints satisfies it).
    /// Returns the normalised position of the first breakpoint that does
    /// **not** satisfy `pred` (the global end position if all do).
    ///
    /// Because `pred` is genuinely monotone over the sorted `x`, the
    /// chunk-level then in-chunk searches find the same unique boundary a
    /// flat `partition_point` would — bit-identical, not just equivalent.
    #[inline]
    fn pp(&self, pred: impl Fn(f64) -> bool) -> Pos {
        let c = self.first_x.partition_point(|&x| pred(x));
        if c == 0 {
            return Pos { chunk: 0, idx: 0 };
        }
        let ch = &self.chunks[c - 1];
        let i = ch.points.partition_point(|&(x, _)| pred(x));
        self.normalize(Pos {
            chunk: c - 1,
            idx: i,
        })
    }

    /// Position of the segment containing `t`: the last breakpoint with
    /// `x ≤ t + EPSILON`, or the first breakpoint when `t` lies before it.
    #[inline]
    fn locate(&self, t: f64) -> Pos {
        self.pos_prev(self.pp(|x| x <= t + EPSILON))
    }

    /// Suffix extrema (min, max) of all values from position `p` to the end.
    #[inline]
    fn suffix_at(&self, p: Pos) -> (f64, f64) {
        let local = self.chunks[p.chunk].suffix[p.idx];
        let tail = self
            .chunk_suffix
            .get(p.chunk + 1)
            .copied()
            .unwrap_or(NEUTRAL);
        (local.0.min(tail.0), local.1.max(tail.1))
    }

    // ---- queries ------------------------------------------------------

    /// Returns the value of the function at time `t`.
    ///
    /// Times before the first breakpoint evaluate to the first segment value.
    pub fn value_at(&self, t: f64) -> f64 {
        self.point(self.locate(t)).1
    }

    /// Returns the value of the last (rightmost) segment, i.e. `f(+∞)`.
    pub fn final_value(&self) -> f64 {
        let ch = self.chunks.last().expect("staircase always has a segment");
        ch.points.last().expect("chunks are never empty").1
    }

    /// Returns the minimum of the function over `[0, +∞)`.
    pub fn min_value(&self) -> f64 {
        self.chunk_suffix[0].0
    }

    /// Returns the maximum of the function over `[0, +∞)`.
    pub fn max_value(&self) -> f64 {
        self.chunk_suffix[0].1
    }

    /// Position range `[lo, hi)` of the segments intersecting the window
    /// `[t1, t2)` (with the shared tolerance on both ends).
    fn window_range(&self, t1: f64, t2: f64) -> (Pos, Pos) {
        // First segment whose end reaches past t1: segment ends are the
        // breakpoints shifted by one, so this is the predecessor of the
        // boundary among breakpoint starts …
        let lo = self.pos_prev(self.pp(|x| x <= t1 + EPSILON));
        // … up to the last segment starting before t2.
        let hi = self.pp(|x| x < t2 - EPSILON);
        (lo, hi)
    }

    /// Left-to-right fold of the values at positions `[a, b)`.
    fn fold_values(&self, a: Pos, b: Pos, init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
        let mut acc = init;
        if a >= b {
            return acc;
        }
        for c in a.chunk..=b.chunk.min(self.chunks.len() - 1) {
            let pts = &self.chunks[c].points;
            let s = if c == a.chunk { a.idx } else { 0 };
            let e = if c == b.chunk { b.idx } else { pts.len() };
            for &(_, v) in &pts[s..e] {
                acc = f(acc, v);
            }
        }
        acc
    }

    /// Returns the maximum of the function over `[t1, t2)`.
    ///
    /// Returns `-∞` if the interval is empty.
    pub fn max_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::NEG_INFINITY;
        }
        let (lo, hi) = self.window_range(t1, t2);
        self.fold_values(lo.min(hi), hi, f64::NEG_INFINITY, f64::max)
    }

    /// Returns the minimum of the function over `[t1, t2)`.
    ///
    /// Returns `+∞` if the interval is empty.
    pub fn min_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::INFINITY;
        }
        let (lo, hi) = self.window_range(t1, t2);
        self.fold_values(lo.min(hi), hi, f64::INFINITY, f64::min)
    }

    /// Returns the minimum of the function over `[t, +∞)`.
    pub fn min_from(&self, t: f64) -> f64 {
        // The segments intersecting [t, +∞) form a suffix: everything from
        // the segment containing (or reaching past) t onwards.
        let first = self.pos_prev(self.pp(|x| x <= t + EPSILON));
        let first = first.min(self.pp(|x| x < t - EPSILON));
        self.suffix_at(first).0
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≥ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is below the threshold).
    ///
    /// This is the query used to compute `task_mem_EST` and `comm_mem_EST`
    /// in the MemHEFT / MemMinMin heuristics. Runs in `O(log k)`: the
    /// suffix-minimum is non-decreasing and `approx_ge(·, threshold)` is
    /// monotone, so the all-satisfying suffixes form a suffix of the
    /// position range, located by a chunk-level then in-chunk
    /// `partition_point`.
    pub fn earliest_sustained_ge(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if !approx_ge(self.final_value(), threshold) {
            return None;
        }
        // First chunk whose start already begins an all-satisfying suffix.
        let c = self
            .chunk_suffix
            .partition_point(|&(lo, _)| !approx_ge(lo, threshold));
        if c == 0 {
            return Some(t_min);
        }
        // The boundary lies in chunk c-1 (its own chunk_suffix still fails,
        // so its first in-chunk candidate is at index ≥ 1); combine the
        // in-chunk suffix with the tail of later chunks when testing.
        let tail_min = self.chunk_suffix.get(c).map_or(f64::INFINITY, |s| s.0);
        let ch = &self.chunks[c - 1];
        let i = ch
            .suffix
            .partition_point(|&(lo, _)| !approx_ge(lo.min(tail_min), threshold));
        let first_ok = self.normalize(Pos {
            chunk: c - 1,
            idx: i,
        });
        // Rightmost violation lives just before `first_ok`; the earliest
        // sustained time is that segment's end — the breakpoint at
        // `first_ok` itself — unless the violation ends before `t_min`.
        let end = self.point(first_ok).0;
        if end <= t_min + EPSILON {
            Some(t_min)
        } else {
            Some(t_min.max(end))
        }
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≤ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is above the threshold).
    ///
    /// This is the mirror of [`Staircase::earliest_sustained_ge`], used when
    /// the staircase tracks memory *usage* rather than *availability*; it
    /// searches the suffix-maximum indices the same way.
    pub fn earliest_sustained_le(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if self.final_value() > threshold + EPSILON {
            return None;
        }
        let c = self
            .chunk_suffix
            .partition_point(|&(_, hi)| hi > threshold + EPSILON);
        if c == 0 {
            return Some(t_min);
        }
        let tail_max = self.chunk_suffix.get(c).map_or(f64::NEG_INFINITY, |s| s.1);
        let ch = &self.chunks[c - 1];
        let i = ch
            .suffix
            .partition_point(|&(_, hi)| hi.max(tail_max) > threshold + EPSILON);
        let first_ok = self.normalize(Pos {
            chunk: c - 1,
            idx: i,
        });
        let end = self.point(first_ok).0;
        if end <= t_min + EPSILON {
            Some(t_min)
        } else {
            Some(t_min.max(end))
        }
    }

    /// Returns `true` if `f(t) ≥ threshold` for all `t ≥ t_min`.
    pub fn sustained_ge(&self, t_min: f64, threshold: f64) -> bool {
        match self.earliest_sustained_ge(t_min, threshold) {
            Some(t) => approx_eq(t, t_min.max(0.0)) || t <= t_min,
            None => false,
        }
    }

    // ---- mutations ----------------------------------------------------

    /// Adds `delta` to the function on `[t, +∞)`.
    pub fn add_from(&mut self, t: f64, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let t = t.max(0.0);
        let pos = self.ensure_breakpoint(t);
        for p in &mut self.chunks[pos.chunk].points[pos.idx..] {
            p.1 += delta;
        }
        for c in pos.chunk + 1..self.chunks.len() {
            for p in &mut self.chunks[c].points {
                p.1 += delta;
            }
        }
        self.repair(pos, POS_INF);
    }

    /// Adds `delta` to the function on the half-open interval `[t1, t2)`.
    ///
    /// Does nothing if the interval is empty.
    pub fn add_range(&mut self, t1: f64, t2: f64, delta: f64) {
        if delta == 0.0 || t2 <= t1 + EPSILON {
            return;
        }
        let t1 = t1.max(0.0);
        self.ensure_breakpoint(t1);
        let i2 = self.ensure_breakpoint(t2);
        // Inserting the t2 breakpoint may have split t1's chunk, so the
        // first position is re-derived; `t2 > t1 + EPSILON` guarantees the
        // second insert cannot become the "last breakpoint ≤ t1 + ε".
        let i1 = self.locate(t1);
        debug_assert!(i1 < i2);
        if i1.chunk == i2.chunk {
            for p in &mut self.chunks[i1.chunk].points[i1.idx..i2.idx] {
                p.1 += delta;
            }
        } else {
            for p in &mut self.chunks[i1.chunk].points[i1.idx..] {
                p.1 += delta;
            }
            for c in i1.chunk + 1..i2.chunk {
                for p in &mut self.chunks[c].points {
                    p.1 += delta;
                }
            }
            for p in &mut self.chunks[i2.chunk].points[..i2.idx] {
                p.1 += delta;
            }
        }
        self.repair(i1, i2);
    }

    /// Ensures a breakpoint exists exactly at `t` and returns its position.
    fn ensure_breakpoint(&mut self, t: f64) -> Pos {
        let pos = self.locate(t);
        let (x, v) = self.point(pos);
        if approx_eq(x, t) {
            return pos;
        }
        if x > t {
            // t is before the very first breakpoint (only possible for t < 0,
            // already clamped by callers); insert at front.
            return self.insert_point(0, 0, (t, v));
        }
        self.insert_point(pos.chunk, pos.idx + 1, (t, v))
    }

    /// Inserts a breakpoint at in-chunk index `i` of chunk `c` (`i` may be
    /// `len`, appending), splitting the chunk first when it is full. Only
    /// the affected chunks' extrema are made consistent here; the caller's
    /// `repair` pass re-establishes the rest.
    fn insert_point(&mut self, c: usize, i: usize, pt: (f64, f64)) -> Pos {
        let (c, i) = if self.chunks[c].points.len() == CHUNK_CAP {
            self.split_chunk(c);
            if i <= CHUNK_MID {
                (c, i)
            } else {
                (c + 1, i - CHUNK_MID)
            }
        } else {
            (c, i)
        };
        self.chunks[c].points.insert(i, pt);
        if i == 0 {
            self.first_x[c] = pt.0;
        }
        self.n += 1;
        Pos { chunk: c, idx: i }
    }

    /// Splits a full chunk in two at [`CHUNK_MID`], keeping every index —
    /// local suffixes, `first_x`, `chunk_suffix` — immediately consistent
    /// (the split does not change the function, so `chunk_suffix[c]` keeps
    /// its value and only the new right chunk needs an entry).
    fn split_chunk(&mut self, c: usize) {
        let right_points = self.chunks[c].points.split_off(CHUNK_MID);
        let mut points = Vec::with_capacity(CHUNK_CAP);
        points.extend(right_points);
        let mut right = Chunk {
            points,
            suffix: Vec::with_capacity(CHUNK_CAP),
        };
        right.rebuild_suffix();
        self.chunks[c].rebuild_suffix();
        let tail = self.chunk_suffix.get(c + 1).copied().unwrap_or(NEUTRAL);
        let right_summary = (right.suffix[0].0.min(tail.0), right.suffix[0].1.max(tail.1));
        self.first_x.insert(c + 1, right.points[0].0);
        self.chunk_suffix.insert(c + 1, right_summary);
        self.chunks.insert(c + 1, right);
    }

    /// Re-establishes the invariants after the values at positions
    /// `[dirty, changed_end)` changed (and breakpoints may have been
    /// inserted there): merges adjacent approx-equal segments — new merges
    /// can only appear at or after `dirty` — then repairs the extrema
    /// indices of the touched chunks and walks the chunk summaries leftward
    /// only while they actually change. The scheduler's reserve/release
    /// pattern mutates near the end of the horizon, so the repaired region
    /// is typically a handful of chunks.
    fn repair(&mut self, dirty: Pos, changed_end: Pos) {
        // --- merge pass over the modified region -----------------------
        // The anchor breakpoint at x = 0 is never removed, so scanning
        // starts at global index max(dirty, 1). Each point is compared to
        // the last *kept* value; once the scan is past `changed_end` and
        // the previous point survived with its original value, every
        // comparison that follows reproduces a pre-mutation adjacent pair,
        // so the scan can stop — identical decisions to a full-tail pass.
        let origin = Pos { chunk: 0, idx: 0 };
        let scan = if dirty == origin {
            self.normalize(Pos { chunk: 0, idx: 1 })
        } else {
            dirty
        };
        // Chunk holding the last value-modified point: its extrema need a
        // rebuild even if the merge scan stops early inside it.
        let value_hi_chunk = if changed_end == POS_INF {
            self.chunks.len() - 1
        } else {
            self.pos_prev(changed_end).chunk
        };
        let mut prev_val = self.point(self.pos_prev(scan)).1;
        let mut last_was_kept = true;
        let mut past_boundary = false;
        let mut last_touched_chunk = dirty.chunk;
        let mut any_structural = false;
        let nchunks = self.chunks.len();
        'scan: for c in scan.chunk..nchunks {
            let from = if c == scan.chunk { scan.idx } else { 0 };
            let len_c = self.chunks[c].points.len();
            if from >= len_c {
                // Only possible for the scan chunk when it is the global
                // end position (nothing to the right of the mutation).
                continue;
            }
            if past_boundary && last_was_kept && from == 0 {
                break 'scan;
            }
            let mut kept = from;
            for i in from..len_c {
                if past_boundary && last_was_kept {
                    // Everything from here on is kept verbatim.
                    if kept < i {
                        let pts = &mut self.chunks[c].points;
                        pts.copy_within(i..len_c, kept);
                        pts.truncate(kept + (len_c - i));
                        self.n -= i - kept;
                        last_touched_chunk = c;
                    }
                    break 'scan;
                }
                let here = Pos { chunk: c, idx: i };
                if here >= changed_end {
                    past_boundary = true;
                }
                let (x, v) = self.chunks[c].points[i];
                if approx_eq(prev_val, v) {
                    last_was_kept = false;
                } else {
                    if kept != i {
                        self.chunks[c].points[kept] = (x, v);
                    }
                    kept += 1;
                    prev_val = v;
                    last_was_kept = true;
                }
            }
            if kept < len_c {
                self.chunks[c].points.truncate(kept);
                self.n -= len_c - kept;
            }
            last_touched_chunk = c;
            if kept == 0 {
                any_structural = true;
            }
        }

        // --- per-chunk extrema over the touched range ------------------
        let last_touched_chunk = last_touched_chunk.max(value_hi_chunk);
        for c in dirty.chunk..=last_touched_chunk {
            if self.chunks[c].points.is_empty() {
                continue;
            }
            self.chunks[c].rebuild_suffix();
            self.first_x[c] = self.chunks[c].points[0].0;
        }

        // --- structural maintenance (rare): drop empties, merge sparse --
        if self.compact_chunks(dirty.chunk, last_touched_chunk) {
            any_structural = true;
        }
        if any_structural {
            self.chunks.retain(|ch| !ch.points.is_empty());
            debug_assert!(!self.chunks.is_empty());
            self.first_x.clear();
            self.first_x
                .extend(self.chunks.iter().map(|ch| ch.points[0].0));
            self.chunk_suffix.clear();
            self.chunk_suffix.resize(self.chunks.len(), NEUTRAL);
            let mut tail = NEUTRAL;
            for c in (0..self.chunks.len()).rev() {
                let local = self.chunks[c].suffix[0];
                tail = (local.0.min(tail.0), local.1.max(tail.1));
                self.chunk_suffix[c] = tail;
            }
            return;
        }

        // --- chunk-summary patch with leftward early stop --------------
        let n = self.chunks.len();
        let mut c = last_touched_chunk.min(n - 1);
        loop {
            let tail = self.chunk_suffix.get(c + 1).copied().unwrap_or(NEUTRAL);
            let local = self.chunks[c].suffix[0];
            let new = (local.0.min(tail.0), local.1.max(tail.1));
            if c < dirty.chunk && new == self.chunk_suffix[c] {
                break;
            }
            self.chunk_suffix[c] = new;
            if c == 0 {
                break;
            }
            c -= 1;
        }
    }

    /// Merges under-filled touched chunks into a neighbour. Returns `true`
    /// if the chunk layout changed (the caller then realigns the top-level
    /// indices wholesale — structural events are rare).
    fn compact_chunks(&mut self, lo: usize, hi: usize) -> bool {
        let mut changed = false;
        let mut c = lo;
        while c <= hi && c < self.chunks.len() {
            let len_c = self.chunks[c].points.len();
            if len_c > 0 && len_c < CHUNK_MIN && c + 1 < self.chunks.len() {
                let len_r = self.chunks[c + 1].points.len();
                if len_c + len_r <= MERGE_MAX {
                    let right = self.chunks.remove(c + 1);
                    self.chunks[c].points.extend(right.points);
                    self.chunks[c].rebuild_suffix();
                    self.first_x.remove(c + 1);
                    self.chunk_suffix.remove(c + 1);
                    changed = true;
                    // The merged chunk may still be sparse; retry it.
                    continue;
                }
            }
            c += 1;
        }
        changed
    }

    /// Debug-only consistency check of every derived index against a
    /// from-scratch rebuild; used by the test suite.
    #[cfg(test)]
    fn check_invariants(&self) {
        assert!(!self.chunks.is_empty());
        assert_eq!(self.first_x.len(), self.chunks.len());
        assert_eq!(self.chunk_suffix.len(), self.chunks.len());
        let mut count = 0;
        let mut prev_x = f64::NEG_INFINITY;
        for (c, ch) in self.chunks.iter().enumerate() {
            assert!(!ch.points.is_empty(), "empty chunk {c}");
            assert!(ch.points.len() <= CHUNK_CAP, "oversized chunk {c}");
            assert_eq!(ch.suffix.len(), ch.points.len(), "suffix len, chunk {c}");
            assert_eq!(self.first_x[c], ch.points[0].0, "first_x, chunk {c}");
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in (0..ch.points.len()).rev() {
                let v = ch.points[i].1;
                lo = lo.min(v);
                hi = hi.max(v);
                assert_eq!(ch.suffix[i], (lo, hi), "suffix, chunk {c} idx {i}");
            }
            for &(x, _) in &ch.points {
                assert!(x > prev_x, "breakpoints not strictly increasing");
                prev_x = x;
                count += 1;
            }
        }
        assert_eq!(self.n, count, "cached breakpoint count");
        let mut tail = NEUTRAL;
        for c in (0..self.chunks.len()).rev() {
            let local = self.chunks[c].suffix[0];
            tail = (local.0.min(tail.0), local.1.max(tail.1));
            assert_eq!(self.chunk_suffix[c], tail, "chunk_suffix, chunk {c}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn constant_everywhere() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(123.0), 10.0);
        assert_eq!(s.min_value(), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_from_splits_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(5.0, -3.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(4.999), 10.0);
        assert_eq!(s.value_at(5.0), 7.0);
        assert_eq!(s.value_at(100.0), 7.0);
        assert_eq!(s.min_value(), 7.0);
    }

    #[test]
    fn add_range_only_affects_interval() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 6.0, -4.0);
        assert_eq!(s.value_at(1.0), 10.0);
        assert_eq!(s.value_at(2.0), 6.0);
        assert_eq!(s.value_at(5.9), 6.0);
        assert_eq!(s.value_at(6.0), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_from(3.0, 0.0);
        s.add_range(1.0, 2.0, 0.0);
        assert_eq!(s, before);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_range(4.0, 4.0, -2.0);
        s.add_range(5.0, 3.0, -2.0);
        assert_eq!(s, before);
    }

    #[test]
    fn overlapping_updates_accumulate() {
        let mut s = Staircase::constant(10.0);
        s.add_range(0.0, 10.0, -3.0);
        s.add_range(5.0, 15.0, -3.0);
        assert_eq!(s.value_at(2.0), 7.0);
        assert_eq!(s.value_at(7.0), 4.0);
        assert_eq!(s.value_at(12.0), 7.0);
        assert_eq!(s.value_at(20.0), 10.0);
        assert_eq!(s.min_value(), 4.0);
    }

    #[test]
    fn release_cancels_reservation() {
        let mut s = Staircase::constant(8.0);
        s.add_from(3.0, -5.0);
        s.add_from(3.0, 5.0);
        assert_eq!(s.len(), 1, "normalization should merge equal segments");
        assert_eq!(s.value_at(4.0), 8.0);
    }

    #[test]
    fn min_from_and_over() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -6.0); // dip to 4 on [2,4)
        s.add_from(8.0, -1.0); // 9 from 8 on
        assert_eq!(s.min_from(0.0), 4.0);
        assert_eq!(s.min_from(4.0), 9.0);
        assert_eq!(s.min_from(3.0), 4.0);
        assert_eq!(s.min_over(0.0, 2.0), 10.0);
        assert_eq!(s.min_over(1.0, 3.0), 4.0);
        assert_eq!(s.min_over(4.0, 8.0), 10.0);
        assert_eq!(s.min_over(5.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn earliest_sustained_simple() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(0.0));
        assert_eq!(s.earliest_sustained_ge(7.0, 5.0), Some(7.0));
        assert_eq!(s.earliest_sustained_ge(0.0, 20.0), None);
    }

    #[test]
    fn earliest_sustained_waits_for_release() {
        let mut s = Staircase::constant(10.0);
        // 4 units busy until t=6.
        s.add_range(0.0, 6.0, -4.0);
        // Need 8 units forever: must wait until t=6.
        assert_eq!(s.earliest_sustained_ge(0.0, 8.0), Some(6.0));
        // Need 6 units: available right away.
        assert_eq!(s.earliest_sustained_ge(0.0, 6.0), Some(0.0));
        // t_min after the dip.
        assert_eq!(s.earliest_sustained_ge(7.0, 8.0), Some(7.0));
    }

    #[test]
    fn earliest_sustained_ignores_future_dips_only_if_threshold_met() {
        let mut s = Staircase::constant(10.0);
        s.add_range(5.0, 8.0, -7.0); // dip to 3 on [5,8)
                                     // Threshold 5 cannot be sustained from t=0; must wait until t=8.
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(8.0));
        // Threshold 2 is fine from the start.
        assert_eq!(s.earliest_sustained_ge(0.0, 2.0), Some(0.0));
    }

    #[test]
    fn earliest_sustained_infeasible_final_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(4.0, -9.0); // 1 unit forever after t=4
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), None);
        assert!(!s.sustained_ge(0.0, 5.0));
    }

    #[test]
    fn sustained_ge_checks_t_min() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -8.0);
        assert!(!s.sustained_ge(1.0, 5.0));
        assert!(s.sustained_ge(4.0, 5.0));
    }

    #[test]
    fn max_value_and_max_over() {
        let mut s = Staircase::constant(0.0);
        s.add_range(2.0, 5.0, 7.0);
        s.add_from(10.0, 3.0);
        assert_eq!(s.max_value(), 7.0);
        assert_eq!(s.max_over(0.0, 2.0), 0.0);
        assert_eq!(s.max_over(1.0, 3.0), 7.0);
        assert_eq!(s.max_over(6.0, 20.0), 3.0);
        assert_eq!(s.max_over(4.0, 4.0), f64::NEG_INFINITY);
    }

    #[test]
    fn earliest_sustained_le_usage_profile() {
        // Usage profile: 8 units in use until t=6, then 2 units forever.
        let mut used = Staircase::constant(2.0);
        used.add_range(0.0, 6.0, 6.0);
        // Capacity 10, need 4 more => usage must stay <= 6: wait until t=6.
        assert_eq!(used.earliest_sustained_le(0.0, 6.0), Some(6.0));
        // Need only 2 more (threshold 8): fine immediately.
        assert_eq!(used.earliest_sustained_le(0.0, 8.0), Some(0.0));
        // Impossible threshold below the final value.
        assert_eq!(used.earliest_sustained_le(0.0, 1.0), None);
        // t_min beyond the violation.
        assert_eq!(used.earliest_sustained_le(7.0, 6.0), Some(7.0));
    }

    #[test]
    fn value_before_zero_clamps() {
        let s = Staircase::constant(3.0);
        assert_eq!(s.value_at(-1.0), 3.0);
    }

    #[test]
    fn normalization_keeps_function_identical() {
        let mut s = Staircase::constant(20.0);
        s.add_range(1.0, 3.0, -5.0);
        s.add_range(3.0, 6.0, -5.0);
        // Adjacent identical-value segments should have been merged.
        assert!(s.len() <= 3);
        assert!(approx_eq(s.value_at(2.0), 15.0));
        assert!(approx_eq(s.value_at(4.0), 15.0));
        assert!(approx_eq(s.value_at(6.0), 20.0));
    }

    // ---- edge cases around step boundaries and degenerate windows ----

    /// A staircase with steps at 2, 5 and 9: 1 on [0,2), 6 on [2,5),
    /// 3 on [5,9), 4 on [9,∞).
    fn stepped() -> Staircase {
        let mut s = Staircase::constant(1.0);
        s.add_range(2.0, 5.0, 5.0);
        s.add_range(5.0, 9.0, 2.0);
        s.add_from(9.0, 3.0);
        s
    }

    #[test]
    fn queries_exactly_on_step_boundaries() {
        let s = stepped();
        // value_at on every breakpoint takes the segment starting there.
        assert_eq!(s.value_at(2.0), 6.0);
        assert_eq!(s.value_at(5.0), 3.0);
        assert_eq!(s.value_at(9.0), 4.0);
        // A window [2, 5) sees only the 6-segment.
        assert_eq!(s.max_over(2.0, 5.0), 6.0);
        assert_eq!(s.min_over(2.0, 5.0), 6.0);
        // A window ending exactly at a step start excludes that step.
        assert_eq!(s.max_over(0.0, 2.0), 1.0);
        // A window starting exactly at a step end excludes the step before.
        assert_eq!(s.min_over(5.0, 9.0), 3.0);
        // Windows spanning a boundary see both sides.
        assert_eq!(s.max_over(4.0, 6.0), 6.0);
        assert_eq!(s.min_over(4.0, 6.0), 3.0);
    }

    #[test]
    fn degenerate_windows_are_empty() {
        let s = stepped();
        for t in [0.0, 2.0, 5.0, 9.0, 100.0] {
            assert_eq!(s.max_over(t, t), f64::NEG_INFINITY);
            assert_eq!(s.min_over(t, t), f64::INFINITY);
        }
        // Reversed windows are empty too.
        assert_eq!(s.max_over(5.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(s.min_over(5.0, 2.0), f64::INFINITY);
    }

    #[test]
    fn queries_before_the_first_step() {
        let s = stepped();
        assert_eq!(s.value_at(-3.0), 1.0);
        assert_eq!(s.min_from(-3.0), 1.0);
        assert_eq!(s.max_over(-5.0, 1.0), 1.0);
        assert_eq!(s.min_over(-5.0, 3.0), 1.0);
        assert_eq!(s.earliest_sustained_ge(-2.0, 0.5), Some(0.0));
        assert_eq!(s.earliest_sustained_le(-2.0, 10.0), Some(0.0));
    }

    #[test]
    fn min_from_exactly_on_boundaries() {
        let s = stepped();
        // From a breakpoint: the segment starting there counts, the one
        // ending there does not.
        assert_eq!(s.min_from(2.0), 3.0); // min(6, 3, 4)
        assert_eq!(s.min_from(5.0), 3.0);
        assert_eq!(s.min_from(9.0), 4.0);
        // Strictly inside a segment, that segment still counts.
        assert_eq!(s.min_from(4.5), 3.0);
        assert_eq!(s.min_from(8.9), 3.0);
    }

    #[test]
    fn earliest_sustained_on_boundaries() {
        let s = stepped();
        // Threshold 4: violated by the 1- and 3-segments; the last violation
        // is [5, 9), so the earliest sustained time is exactly 9.
        assert_eq!(s.earliest_sustained_ge(0.0, 4.0), Some(9.0));
        // t_min exactly at the sustained point.
        assert_eq!(s.earliest_sustained_ge(9.0, 4.0), Some(9.0));
        // t_min past it.
        assert_eq!(s.earliest_sustained_ge(11.0, 4.0), Some(11.0));
        // Usage view: stay ≤ 3 fails on [2,5) and forever after 9 → None.
        assert_eq!(s.earliest_sustained_le(0.0, 3.0), None);
        // Stay ≤ 5: last violation is [2,5) → sustained from 5.
        assert_eq!(s.earliest_sustained_le(0.0, 5.0), Some(5.0));
        assert_eq!(s.earliest_sustained_le(5.0, 5.0), Some(5.0));
    }

    #[test]
    fn repair_keeps_index_in_sync() {
        // Deterministic mutation storm mixing early/late, positive/negative
        // updates (including ones that merge whole tails away); after every
        // mutation the incremental index must match a from-scratch rebuild.
        let mut s = Staircase::constant(10.0);
        let mut t = 1.0f64;
        for i in 0..400 {
            match i % 5 {
                0 => s.add_from(t, 2.0),
                1 => s.add_range(t * 0.5, t + 2.0, -1.5),
                2 => s.add_from(t * 0.25, -0.5),
                3 => s.add_from(t, -2.0), // cancels case 0 → tail merges
                _ => s.add_range(0.0, t, 1.0),
            }
            t += 0.7 + (i % 4) as f64 * 0.3;
            s.check_invariants();
            let points: Vec<(f64, f64)> = s.breakpoints().collect();
            let full_min = points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let full_max = points
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(s.min_value(), full_min, "min index diverged at step {i}");
            assert_eq!(s.max_value(), full_max, "max index diverged at step {i}");
            // Spot-check a suffix query against the definition.
            let mid = points[points.len() / 2].0;
            let linear: f64 = points
                .iter()
                .enumerate()
                .filter(|&(j, &(x, _))| {
                    let end = points.get(j + 1).map(|&(nx, _)| nx);
                    x >= mid - EPSILON || end.map(|e| e > mid + EPSILON).unwrap_or(true)
                })
                .map(|(_, &(_, v))| v)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(s.min_from(mid), linear, "min_from diverged at step {i}");
        }
    }

    #[test]
    fn suffix_index_matches_linear_scan() {
        // Randomized-ish cross-check of the indexed queries against the
        // obvious linear-scan definitions, across many breakpoints.
        let mut s = Staircase::constant(50.0);
        let mut x = 0.5f64;
        for i in 0..60 {
            let delta = if i % 2 == 0 { -3.0 } else { 2.0 };
            s.add_range(x, x + 1.5, delta);
            x += 1.0 + (i % 3) as f64 * 0.5;
        }
        let points: Vec<(f64, f64)> = s.breakpoints().collect();
        let linear_min_from = |t: f64| {
            let mut min = f64::INFINITY;
            for (i, &(px, v)) in points.iter().enumerate() {
                let end = points.get(i + 1).map(|&(nx, _)| nx);
                let reaches = match end {
                    Some(e) => e > t + EPSILON,
                    None => true,
                };
                if px >= t - EPSILON || reaches {
                    min = min.min(v);
                }
            }
            min
        };
        for t in [-1.0, 0.0, 0.5, 3.25, 17.0, 40.0, 1000.0] {
            assert_eq!(s.min_from(t), linear_min_from(t), "min_from({t})");
        }
        for thr in [20.0, 35.0, 49.0, 50.0, 60.0] {
            for t_min in [0.0, 5.0, 33.0] {
                // The sustained point, if any, must satisfy the definition.
                if let Some(t) = s.earliest_sustained_ge(t_min, thr) {
                    assert!(t >= t_min);
                    assert!(linear_min_from(t) >= thr - 1e-9, "ge({t_min}, {thr})");
                    // And nothing strictly earlier (by more than one segment
                    // boundary) works: just before t there is a violation,
                    // unless t == t_min.
                    if t > t_min + EPSILON {
                        assert!(s.value_at(t - 1e-6) < thr, "not tight at {t}");
                    }
                } else {
                    assert!(s.final_value() < thr);
                }
            }
        }
    }

    // ---- chunked storage vs the historical flat implementation ----

    /// Verbatim re-implementation of the pre-chunking flat `Vec` storage,
    /// kept as the behavioural oracle: the chunked staircase must produce
    /// bit-identical breakpoints and query answers for any operation
    /// sequence.
    struct FlatOracle {
        points: Vec<(f64, f64)>,
        suffix: Vec<(f64, f64)>,
    }

    impl FlatOracle {
        fn constant(value: f64) -> Self {
            FlatOracle {
                points: vec![(0.0, value)],
                suffix: vec![(value, value)],
            }
        }

        fn seg_index(&self, t: f64) -> usize {
            self.points
                .partition_point(|&(x, _)| x <= t + EPSILON)
                .saturating_sub(1)
        }

        fn seg_end(&self, i: usize) -> f64 {
            self.points
                .get(i + 1)
                .map(|&(x, _)| x)
                .unwrap_or(f64::INFINITY)
        }

        fn value_at(&self, t: f64) -> f64 {
            self.points[self.seg_index(t)].1
        }

        fn final_value(&self) -> f64 {
            self.points.last().unwrap().1
        }

        fn window_range(&self, t1: f64, t2: f64) -> (usize, usize) {
            let lo = self.points[1..].partition_point(|&(x, _)| x <= t1 + EPSILON);
            let hi = self.points.partition_point(|&(x, _)| x < t2 - EPSILON);
            (lo, hi)
        }

        fn max_over(&self, t1: f64, t2: f64) -> f64 {
            if t2 <= t1 + EPSILON {
                return f64::NEG_INFINITY;
            }
            let (lo, hi) = self.window_range(t1, t2);
            self.points[lo.min(hi)..hi]
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max)
        }

        fn min_from(&self, t: f64) -> f64 {
            let shifted = &self.points[1..];
            let first = shifted.partition_point(|&(x, _)| x <= t + EPSILON);
            let first = first.min(self.points.partition_point(|&(x, _)| x < t - EPSILON));
            self.suffix[first].0
        }

        fn min_over(&self, t1: f64, t2: f64) -> f64 {
            if t2 <= t1 + EPSILON {
                return f64::INFINITY;
            }
            let (lo, hi) = self.window_range(t1, t2);
            self.points[lo.min(hi)..hi]
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::INFINITY, f64::min)
        }

        fn earliest_sustained_ge(&self, t_min: f64, threshold: f64) -> Option<f64> {
            let t_min = t_min.max(0.0);
            if !approx_ge(self.final_value(), threshold) {
                return None;
            }
            let first_ok = self
                .suffix
                .partition_point(|&(lo, _)| !approx_ge(lo, threshold));
            if first_ok == 0 {
                return Some(t_min);
            }
            let end = self.seg_end(first_ok - 1);
            if end <= t_min + EPSILON {
                Some(t_min)
            } else {
                Some(t_min.max(end))
            }
        }

        fn earliest_sustained_le(&self, t_min: f64, threshold: f64) -> Option<f64> {
            let t_min = t_min.max(0.0);
            if self.final_value() > threshold + EPSILON {
                return None;
            }
            let first_ok = self
                .suffix
                .partition_point(|&(_, hi)| hi > threshold + EPSILON);
            if first_ok == 0 {
                return Some(t_min);
            }
            let end = self.seg_end(first_ok - 1);
            if end <= t_min + EPSILON {
                Some(t_min)
            } else {
                Some(t_min.max(end))
            }
        }

        fn add_from(&mut self, t: f64, delta: f64) {
            if delta == 0.0 {
                return;
            }
            let t = t.max(0.0);
            let idx = self.ensure_breakpoint(t);
            for p in &mut self.points[idx..] {
                p.1 += delta;
            }
            self.repair(idx);
        }

        fn add_range(&mut self, t1: f64, t2: f64, delta: f64) {
            if delta == 0.0 || t2 <= t1 + EPSILON {
                return;
            }
            let t1 = t1.max(0.0);
            let i1 = self.ensure_breakpoint(t1);
            let i2 = self.ensure_breakpoint(t2);
            debug_assert!(i1 < i2);
            for p in &mut self.points[i1..i2] {
                p.1 += delta;
            }
            self.repair(i1);
        }

        fn ensure_breakpoint(&mut self, t: f64) -> usize {
            let pos = self.seg_index(t);
            if approx_eq(self.points[pos].0, t) {
                return pos;
            }
            if self.points[pos].0 > t {
                self.points.insert(0, (t, self.points[0].1));
                return 0;
            }
            let v = self.points[pos].1;
            self.points.insert(pos + 1, (t, v));
            pos + 1
        }

        fn repair(&mut self, dirty: usize) {
            let start = dirty.max(1);
            let mut kept = start;
            for i in start..self.points.len() {
                let (x, v) = self.points[i];
                if !approx_eq(self.points[kept - 1].1, v) {
                    self.points[kept] = (x, v);
                    kept += 1;
                }
            }
            self.points.truncate(kept);
            let n = self.points.len();
            self.suffix.resize(n, (0.0, 0.0));
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for i in (dirty.min(n)..n).rev() {
                let v = self.points[i].1;
                lo = lo.min(v);
                hi = hi.max(v);
                self.suffix[i] = (lo, hi);
            }
            for i in (0..dirty.min(n)).rev() {
                let v = self.points[i].1;
                let (next_lo, next_hi) = if i + 1 < n {
                    self.suffix[i + 1]
                } else {
                    (f64::INFINITY, f64::NEG_INFINITY)
                };
                let new = (v.min(next_lo), v.max(next_hi));
                if new == self.suffix[i] {
                    break;
                }
                self.suffix[i] = new;
            }
        }
    }

    /// Tiny deterministic PRNG (xorshift64*) for the oracle storms.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        }
    }

    /// Compares the chunked staircase against the flat oracle bit-for-bit:
    /// identical breakpoints and identical answers for every query family.
    fn assert_matches_oracle(s: &Staircase, o: &FlatOracle, step: usize) {
        s.check_invariants();
        let got: Vec<(f64, f64)> = s.breakpoints().collect();
        assert_eq!(
            got.len(),
            o.points.len(),
            "breakpoint count diverged at step {step}"
        );
        for (i, (g, w)) in got.iter().zip(o.points.iter()).enumerate() {
            assert!(
                g.0.to_bits() == w.0.to_bits() && g.1.to_bits() == w.1.to_bits(),
                "breakpoint {i} diverged at step {step}: {g:?} vs {w:?}"
            );
        }
        let horizon = got.last().unwrap().0 + 10.0;
        let mut probes = vec![-1.0, 0.0, horizon];
        for i in [0, got.len() / 3, got.len() / 2, got.len().saturating_sub(1)] {
            let x = got[i].0;
            probes.extend([x, x - 1e-6, x + 1e-6, x + 0.5]);
        }
        for &t in &probes {
            assert_eq!(
                s.value_at(t).to_bits(),
                o.value_at(t).to_bits(),
                "value_at({t}) diverged at step {step}"
            );
            assert_eq!(
                s.min_from(t).to_bits(),
                o.min_from(t).to_bits(),
                "min_from({t}) diverged at step {step}"
            );
        }
        for &t1 in &probes {
            let t2 = t1 + horizon / 3.0;
            assert_eq!(
                s.max_over(t1, t2).to_bits(),
                o.max_over(t1, t2).to_bits(),
                "max_over({t1},{t2}) diverged at step {step}"
            );
            assert_eq!(
                s.min_over(t1, t2).to_bits(),
                o.min_over(t1, t2).to_bits(),
                "min_over({t1},{t2}) diverged at step {step}"
            );
        }
        let lo = s.min_value();
        let hi = s.max_value();
        for thr in [lo - 1.0, lo, 0.5 * (lo + hi), hi, hi + 1.0] {
            for t_min in [0.0, horizon / 4.0, horizon] {
                assert_eq!(
                    s.earliest_sustained_ge(t_min, thr).map(f64::to_bits),
                    o.earliest_sustained_ge(t_min, thr).map(f64::to_bits),
                    "earliest_sustained_ge({t_min},{thr}) diverged at step {step}"
                );
                assert_eq!(
                    s.earliest_sustained_le(t_min, thr).map(f64::to_bits),
                    o.earliest_sustained_le(t_min, thr).map(f64::to_bits),
                    "earliest_sustained_le({t_min},{thr}) diverged at step {step}"
                );
            }
        }
    }

    /// Property-style storm: many randomized reserve/release mixes, each
    /// replayed against the flat oracle with bitwise comparison after every
    /// mutation. Grows staircases past several chunk splits and shrinks
    /// them back through merges.
    #[test]
    fn chunked_matches_flat_oracle_storm() {
        for seed in 1..=8u64 {
            let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (seed << 17));
            let mut s = Staircase::constant(100.0);
            let mut o = FlatOracle::constant(100.0);
            // Phase 1: grow far past CHUNK_CAP so several splits happen.
            for step in 0..600 {
                let t1 = rng.f64_in(0.0, 500.0);
                let len = rng.f64_in(0.1, 40.0);
                let delta = rng.f64_in(-4.0, 4.0);
                match rng.next() % 4 {
                    0 => {
                        s.add_from(t1, delta);
                        o.add_from(t1, delta);
                    }
                    1 => {
                        s.add_range(t1, t1 + len, delta);
                        o.add_range(t1, t1 + len, delta);
                    }
                    2 => {
                        // Reserve/release pair at matching coordinates —
                        // the scheduler's dominant pattern.
                        s.add_range(t1, t1 + len, -delta.abs());
                        o.add_range(t1, t1 + len, -delta.abs());
                    }
                    _ => {
                        // Mutations at far-apart coordinates touch
                        // different chunks in one call.
                        s.add_range(t1 * 0.1, t1 + 400.0, delta);
                        o.add_range(t1 * 0.1, t1 + 400.0, delta);
                    }
                }
                if step % 7 == 0 {
                    assert_matches_oracle(&s, &o, step);
                }
            }
            assert!(
                s.len() > 3 * CHUNK_CAP,
                "storm must exercise multiple chunks (got {} points)",
                s.len()
            );
            assert_matches_oracle(&s, &o, 600);
            // Phase 2: level whole regions so tails merge away and sparse
            // chunks re-combine.
            for step in 0..60 {
                let t = rng.f64_in(0.0, 500.0);
                let v = s.value_at(t);
                s.add_from(t, 100.0 - v);
                o.add_from(t, 100.0 - v);
                assert_matches_oracle(&s, &o, 600 + step);
            }
        }
    }

    /// Exercises the exact split boundaries: inserting at the front, middle
    /// and back of a chunk that is exactly full, and the in-chunk index
    /// adjustment when the insertion lands in the right half.
    #[test]
    fn chunk_split_boundaries() {
        // Build exactly CHUNK_CAP breakpoints with a strictly alternating
        // value so no merges fire, then insert on both sides of the split.
        for &probe in &[0.5, CHUNK_MID as f64 + 0.5, CHUNK_CAP as f64 - 0.5] {
            let mut s = Staircase::constant(0.0);
            let mut o = FlatOracle::constant(0.0);
            for i in 1..CHUNK_CAP {
                let delta = if i % 2 == 0 { 1.0 } else { -1.0 };
                s.add_from(i as f64, delta);
                o.add_from(i as f64, delta);
            }
            assert_eq!(s.len(), CHUNK_CAP);
            s.add_from(probe, 10.0);
            o.add_from(probe, 10.0);
            assert_matches_oracle(&s, &o, 0);
        }
    }

    /// Levelling a long staircase back to a constant must collapse every
    /// chunk back into one segment (merge-on-sparse plus empty-chunk
    /// removal), leaving a consistent single-chunk representation.
    #[test]
    fn chunk_merge_collapses_to_constant() {
        let mut s = Staircase::constant(5.0);
        let mut o = FlatOracle::constant(5.0);
        for i in 0..(4 * CHUNK_CAP) {
            let delta = if i % 2 == 0 { 2.0 } else { -2.0 };
            s.add_from(1.0 + i as f64, delta);
            o.add_from(1.0 + i as f64, delta);
        }
        assert!(s.len() > 3 * CHUNK_CAP);
        // Undo every step in reverse order: each cancellation merges the
        // final two segments back together, draining whole chunks through
        // the sparse-merge and empty-chunk paths.
        for i in (0..(4 * CHUNK_CAP)).rev() {
            let delta = if i % 2 == 0 { -2.0 } else { 2.0 };
            s.add_from(1.0 + i as f64, delta);
            o.add_from(1.0 + i as f64, delta);
            if i % 16 == 0 {
                assert_matches_oracle(&s, &o, i);
            }
        }
        assert_matches_oracle(&s, &o, 0);
        assert_eq!(s.len(), 1, "uniform staircase must merge to one segment");
    }

    /// The relative component of `approx_eq` means a uniform shift to large
    /// magnitudes genuinely merges segments whose gap is below the *scaled*
    /// tolerance — the reason `add_from`/`add_range` apply deltas eagerly
    /// instead of keeping per-chunk lazy offsets (see the module docs).
    #[test]
    fn relative_epsilon_merges_after_uniform_shift() {
        let mut s = Staircase::constant(0.0);
        let mut o = FlatOracle::constant(0.0);
        // Two segments 2.0 apart: distinct at small magnitude.
        s.add_from(10.0, 2.0);
        o.add_from(10.0, 2.0);
        assert_eq!(s.len(), 2);
        // Shift everything to ~1e13: the gap of 2.0 is now inside the
        // relative tolerance (1e13 · 1e-9 = 1e4), so the segments merge.
        s.add_from(0.0, 1.0e13);
        o.add_from(0.0, 1.0e13);
        assert_matches_oracle(&s, &o, 0);
        assert_eq!(s.len(), 1, "relative tolerance must merge shifted segments");
    }
}
