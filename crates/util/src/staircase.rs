//! Piecewise-constant functions of time ("staircase" functions).
//!
//! The memory-aware heuristics of the paper (Section 5.1) maintain, for each
//! memory `µ`, the profile `free_mem^{(µ)}(t)` of memory still available at
//! every instant of the partial schedule. The paper stores it as "a list of
//! couples `[(x_1, val_1), ..., (x_ℓ, val_ℓ)]`" — exactly the representation
//! implemented here, together with the two queries the heuristics need:
//!
//! * update the profile on a half-open interval or a suffix (reserving or
//!   releasing a file), and
//! * find the earliest time `t ≥ t_min` such that the profile stays above a
//!   threshold **forever after** `t` (the `task_mem_EST` / `comm_mem_EST`
//!   computations).

use crate::float::{approx_eq, approx_ge, EPSILON};

/// A piecewise-constant function `f : [0, +∞) → ℝ`.
///
/// Internally stored as a sorted list of breakpoints `(x_i, v_i)`, meaning
/// `f(t) = v_i` for `t ∈ [x_i, x_{i+1})` and `f(t) = v_ℓ` for `t ≥ x_ℓ`.
/// The first breakpoint is always at `x = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct Staircase {
    /// Breakpoints, sorted by strictly increasing `x`, starting at `x = 0`.
    points: Vec<(f64, f64)>,
}

impl Staircase {
    /// Creates a function that is constant and equal to `value` everywhere.
    pub fn constant(value: f64) -> Self {
        Staircase {
            points: vec![(0.0, value)],
        }
    }

    /// Number of breakpoints in the internal representation.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the function is represented by a single segment.
    pub fn is_empty(&self) -> bool {
        self.points.len() <= 1
    }

    /// Returns the value of the function at time `t`.
    ///
    /// Times before the first breakpoint evaluate to the first segment value.
    pub fn value_at(&self, t: f64) -> f64 {
        match self.points.iter().rposition(|&(x, _)| x <= t + EPSILON) {
            Some(i) => self.points[i].1,
            None => self.points[0].1,
        }
    }

    /// Returns the value of the last (rightmost) segment, i.e. `f(+∞)`.
    pub fn final_value(&self) -> f64 {
        self.points
            .last()
            .expect("staircase always has a segment")
            .1
    }

    /// Returns the minimum of the function over `[0, +∞)`.
    pub fn min_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Returns the maximum of the function over `[0, +∞)`.
    pub fn max_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the maximum of the function over `[t1, t2)`.
    ///
    /// Returns `-∞` if the interval is empty.
    pub fn max_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::NEG_INFINITY;
        }
        let mut max = f64::NEG_INFINITY;
        for (i, &(x, v)) in self.points.iter().enumerate() {
            let seg_end = self
                .points
                .get(i + 1)
                .map(|&(x2, _)| x2)
                .unwrap_or(f64::INFINITY);
            if seg_end > t1 + EPSILON && x < t2 - EPSILON {
                max = max.max(v);
            }
        }
        max
    }

    /// Returns the minimum of the function over `[t, +∞)`.
    pub fn min_from(&self, t: f64) -> f64 {
        let mut min = f64::INFINITY;
        for (i, &(x, v)) in self.points.iter().enumerate() {
            let seg_end = self.points.get(i + 1).map(|&(x2, _)| x2);
            let segment_reaches_t = match seg_end {
                Some(end) => end > t + EPSILON,
                None => true,
            };
            if x >= t - EPSILON || segment_reaches_t {
                min = min.min(v);
            }
        }
        min
    }

    /// Returns the minimum of the function over `[t1, t2)`.
    ///
    /// Returns `+∞` if the interval is empty.
    pub fn min_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::INFINITY;
        }
        let mut min = f64::INFINITY;
        for (i, &(x, v)) in self.points.iter().enumerate() {
            let seg_start = x;
            let seg_end = self
                .points
                .get(i + 1)
                .map(|&(x2, _)| x2)
                .unwrap_or(f64::INFINITY);
            // Segment [seg_start, seg_end) intersects [t1, t2)?
            if seg_end > t1 + EPSILON && seg_start < t2 - EPSILON {
                min = min.min(v);
            }
        }
        min
    }

    /// Adds `delta` to the function on `[t, +∞)`.
    pub fn add_from(&mut self, t: f64, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let t = t.max(0.0);
        let idx = self.ensure_breakpoint(t);
        for p in &mut self.points[idx..] {
            p.1 += delta;
        }
        self.normalize();
    }

    /// Adds `delta` to the function on the half-open interval `[t1, t2)`.
    ///
    /// Does nothing if the interval is empty.
    pub fn add_range(&mut self, t1: f64, t2: f64, delta: f64) {
        if delta == 0.0 || t2 <= t1 + EPSILON {
            return;
        }
        let t1 = t1.max(0.0);
        let i1 = self.ensure_breakpoint(t1);
        let i2 = self.ensure_breakpoint(t2);
        debug_assert!(i1 < i2);
        for p in &mut self.points[i1..i2] {
            p.1 += delta;
        }
        self.normalize();
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≥ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is below the threshold).
    ///
    /// This is the query used to compute `task_mem_EST` and `comm_mem_EST`
    /// in the MemHEFT / MemMinMin heuristics.
    pub fn earliest_sustained_ge(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if !approx_ge(self.final_value(), threshold) {
            return None;
        }
        // Walk segments from the right; stop at the last segment whose value
        // violates the threshold. The answer is the start of the following
        // segment (or t_min if nothing violates it after t_min).
        let mut answer = t_min;
        for i in (0..self.points.len()).rev() {
            let (x, v) = self.points[i];
            let seg_end = self
                .points
                .get(i + 1)
                .map(|&(x2, _)| x2)
                .unwrap_or(f64::INFINITY);
            // Segments entirely before t_min cannot constrain the answer.
            if seg_end <= t_min + EPSILON {
                break;
            }
            if !approx_ge(v, threshold) {
                // Violation in [x, seg_end); the earliest sustained time is
                // seg_end (the start of the next, satisfying, segment).
                answer = answer.max(seg_end);
                break;
            }
            let _ = x;
        }
        Some(answer)
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≤ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is above the threshold).
    ///
    /// This is the mirror of [`Staircase::earliest_sustained_ge`], used when
    /// the staircase tracks memory *usage* rather than *availability*.
    pub fn earliest_sustained_le(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if self.final_value() > threshold + EPSILON {
            return None;
        }
        let mut answer = t_min;
        for i in (0..self.points.len()).rev() {
            let (_x, v) = self.points[i];
            let seg_end = self
                .points
                .get(i + 1)
                .map(|&(x2, _)| x2)
                .unwrap_or(f64::INFINITY);
            if seg_end <= t_min + EPSILON {
                break;
            }
            if v > threshold + EPSILON {
                answer = answer.max(seg_end);
                break;
            }
        }
        Some(answer)
    }

    /// Returns `true` if `f(t) ≥ threshold` for all `t ≥ t_min`.
    pub fn sustained_ge(&self, t_min: f64, threshold: f64) -> bool {
        match self.earliest_sustained_ge(t_min, threshold) {
            Some(t) => approx_eq(t, t_min.max(0.0)) || t <= t_min,
            None => false,
        }
    }

    /// Iterates over the breakpoints `(x_i, v_i)` of the representation.
    pub fn breakpoints(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Ensures a breakpoint exists exactly at `t` and returns its index.
    fn ensure_breakpoint(&mut self, t: f64) -> usize {
        // Find the segment containing t.
        let pos = self
            .points
            .iter()
            .rposition(|&(x, _)| x <= t + EPSILON)
            .unwrap_or(0);
        if approx_eq(self.points[pos].0, t) {
            return pos;
        }
        if self.points[pos].0 > t {
            // t is before the very first breakpoint (only possible for t < 0,
            // already clamped by callers); insert at front.
            self.points.insert(0, (t, self.points[0].1));
            return 0;
        }
        let v = self.points[pos].1;
        self.points.insert(pos + 1, (t, v));
        pos + 1
    }

    /// Merges adjacent segments with (approximately) equal values.
    fn normalize(&mut self) {
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.points.len());
        for &(x, v) in &self.points {
            match out.last() {
                Some(&(_, lv)) if approx_eq(lv, v) => {
                    // Same value as previous segment: breakpoint is redundant.
                }
                _ => out.push((x, v)),
            }
        }
        if out.is_empty() {
            out.push((0.0, 0.0));
        }
        self.points = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn constant_everywhere() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(123.0), 10.0);
        assert_eq!(s.min_value(), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_from_splits_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(5.0, -3.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(4.999), 10.0);
        assert_eq!(s.value_at(5.0), 7.0);
        assert_eq!(s.value_at(100.0), 7.0);
        assert_eq!(s.min_value(), 7.0);
    }

    #[test]
    fn add_range_only_affects_interval() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 6.0, -4.0);
        assert_eq!(s.value_at(1.0), 10.0);
        assert_eq!(s.value_at(2.0), 6.0);
        assert_eq!(s.value_at(5.9), 6.0);
        assert_eq!(s.value_at(6.0), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_from(3.0, 0.0);
        s.add_range(1.0, 2.0, 0.0);
        assert_eq!(s, before);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_range(4.0, 4.0, -2.0);
        s.add_range(5.0, 3.0, -2.0);
        assert_eq!(s, before);
    }

    #[test]
    fn overlapping_updates_accumulate() {
        let mut s = Staircase::constant(10.0);
        s.add_range(0.0, 10.0, -3.0);
        s.add_range(5.0, 15.0, -3.0);
        assert_eq!(s.value_at(2.0), 7.0);
        assert_eq!(s.value_at(7.0), 4.0);
        assert_eq!(s.value_at(12.0), 7.0);
        assert_eq!(s.value_at(20.0), 10.0);
        assert_eq!(s.min_value(), 4.0);
    }

    #[test]
    fn release_cancels_reservation() {
        let mut s = Staircase::constant(8.0);
        s.add_from(3.0, -5.0);
        s.add_from(3.0, 5.0);
        assert_eq!(s.len(), 1, "normalization should merge equal segments");
        assert_eq!(s.value_at(4.0), 8.0);
    }

    #[test]
    fn min_from_and_over() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -6.0); // dip to 4 on [2,4)
        s.add_from(8.0, -1.0); // 9 from 8 on
        assert_eq!(s.min_from(0.0), 4.0);
        assert_eq!(s.min_from(4.0), 9.0);
        assert_eq!(s.min_from(3.0), 4.0);
        assert_eq!(s.min_over(0.0, 2.0), 10.0);
        assert_eq!(s.min_over(1.0, 3.0), 4.0);
        assert_eq!(s.min_over(4.0, 8.0), 10.0);
        assert_eq!(s.min_over(5.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn earliest_sustained_simple() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(0.0));
        assert_eq!(s.earliest_sustained_ge(7.0, 5.0), Some(7.0));
        assert_eq!(s.earliest_sustained_ge(0.0, 20.0), None);
    }

    #[test]
    fn earliest_sustained_waits_for_release() {
        let mut s = Staircase::constant(10.0);
        // 4 units busy until t=6.
        s.add_range(0.0, 6.0, -4.0);
        // Need 8 units forever: must wait until t=6.
        assert_eq!(s.earliest_sustained_ge(0.0, 8.0), Some(6.0));
        // Need 6 units: available right away.
        assert_eq!(s.earliest_sustained_ge(0.0, 6.0), Some(0.0));
        // t_min after the dip.
        assert_eq!(s.earliest_sustained_ge(7.0, 8.0), Some(7.0));
    }

    #[test]
    fn earliest_sustained_ignores_future_dips_only_if_threshold_met() {
        let mut s = Staircase::constant(10.0);
        s.add_range(5.0, 8.0, -7.0); // dip to 3 on [5,8)
                                     // Threshold 5 cannot be sustained from t=0; must wait until t=8.
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(8.0));
        // Threshold 2 is fine from the start.
        assert_eq!(s.earliest_sustained_ge(0.0, 2.0), Some(0.0));
    }

    #[test]
    fn earliest_sustained_infeasible_final_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(4.0, -9.0); // 1 unit forever after t=4
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), None);
        assert!(!s.sustained_ge(0.0, 5.0));
    }

    #[test]
    fn sustained_ge_checks_t_min() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -8.0);
        assert!(!s.sustained_ge(1.0, 5.0));
        assert!(s.sustained_ge(4.0, 5.0));
    }

    #[test]
    fn max_value_and_max_over() {
        let mut s = Staircase::constant(0.0);
        s.add_range(2.0, 5.0, 7.0);
        s.add_from(10.0, 3.0);
        assert_eq!(s.max_value(), 7.0);
        assert_eq!(s.max_over(0.0, 2.0), 0.0);
        assert_eq!(s.max_over(1.0, 3.0), 7.0);
        assert_eq!(s.max_over(6.0, 20.0), 3.0);
        assert_eq!(s.max_over(4.0, 4.0), f64::NEG_INFINITY);
    }

    #[test]
    fn earliest_sustained_le_usage_profile() {
        // Usage profile: 8 units in use until t=6, then 2 units forever.
        let mut used = Staircase::constant(2.0);
        used.add_range(0.0, 6.0, 6.0);
        // Capacity 10, need 4 more => usage must stay <= 6: wait until t=6.
        assert_eq!(used.earliest_sustained_le(0.0, 6.0), Some(6.0));
        // Need only 2 more (threshold 8): fine immediately.
        assert_eq!(used.earliest_sustained_le(0.0, 8.0), Some(0.0));
        // Impossible threshold below the final value.
        assert_eq!(used.earliest_sustained_le(0.0, 1.0), None);
        // t_min beyond the violation.
        assert_eq!(used.earliest_sustained_le(7.0, 6.0), Some(7.0));
    }

    #[test]
    fn value_before_zero_clamps() {
        let s = Staircase::constant(3.0);
        assert_eq!(s.value_at(-1.0), 3.0);
    }

    #[test]
    fn normalization_keeps_function_identical() {
        let mut s = Staircase::constant(20.0);
        s.add_range(1.0, 3.0, -5.0);
        s.add_range(3.0, 6.0, -5.0);
        // Adjacent identical-value segments should have been merged.
        assert!(s.len() <= 3);
        assert!(approx_eq(s.value_at(2.0), 15.0));
        assert!(approx_eq(s.value_at(4.0), 15.0));
        assert!(approx_eq(s.value_at(6.0), 20.0));
    }
}
