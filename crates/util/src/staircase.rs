//! Piecewise-constant functions of time ("staircase" functions).
//!
//! The memory-aware heuristics of the paper (Section 5.1) maintain, for each
//! memory `µ`, the profile `free_mem^{(µ)}(t)` of memory still available at
//! every instant of the partial schedule. The paper stores it as "a list of
//! couples `[(x_1, val_1), ..., (x_ℓ, val_ℓ)]`" — exactly the representation
//! implemented here, together with the two queries the heuristics need:
//!
//! * update the profile on a half-open interval or a suffix (reserving or
//!   releasing a file), and
//! * find the earliest time `t ≥ t_min` such that the profile stays above a
//!   threshold **forever after** `t` (the `task_mem_EST` / `comm_mem_EST`
//!   computations).
//!
//! # Complexity
//!
//! The breakpoint list is kept sorted, so point queries locate their segment
//! by binary search, and the sustained-threshold queries binary-search a
//! suffix-extrema index (`suffix_min` / `suffix_max`, rebuilt on mutation)
//! instead of walking every segment: with `k` breakpoints, [`value_at`],
//! [`min_from`], [`earliest_sustained_ge`] and [`earliest_sustained_le`] are
//! all `O(log k)`. Mutations stay `O(k)` (they already shift the breakpoint
//! vector), but run in place — no allocation per update — so the
//! reserve/release pattern of the schedulers, whose breakpoints cluster near
//! the end of the horizon, stays cheap. The scheduler hot path performs many
//! queries per mutation (one per ready candidate per memory), which is what
//! the index trades for.
//!
//! [`value_at`]: Staircase::value_at
//! [`min_from`]: Staircase::min_from
//! [`earliest_sustained_ge`]: Staircase::earliest_sustained_ge
//! [`earliest_sustained_le`]: Staircase::earliest_sustained_le

use crate::float::{approx_eq, approx_ge, EPSILON};

/// A piecewise-constant function `f : [0, +∞) → ℝ`.
///
/// Internally stored as a sorted list of breakpoints `(x_i, v_i)`, meaning
/// `f(t) = v_i` for `t ∈ [x_i, x_{i+1})` and `f(t) = v_ℓ` for `t ≥ x_ℓ`.
/// The first breakpoint is always at `x = 0`.
#[derive(Debug, Clone)]
pub struct Staircase {
    /// Breakpoints, sorted by strictly increasing `x`, starting at `x = 0`.
    points: Vec<(f64, f64)>,
    /// `suffix[i] = (min, max)` of the values `v_i, …, v_ℓ`; the min
    /// component is non-decreasing in `i`, the max non-increasing.
    suffix: Vec<(f64, f64)>,
}

/// Equality is a property of the function, i.e. of the breakpoints; the
/// suffix indices are derived data.
impl PartialEq for Staircase {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl Staircase {
    /// Creates a function that is constant and equal to `value` everywhere.
    pub fn constant(value: f64) -> Self {
        Staircase {
            points: vec![(0.0, value)],
            suffix: vec![(value, value)],
        }
    }

    /// Number of breakpoints in the internal representation.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the function is represented by a single segment.
    pub fn is_empty(&self) -> bool {
        self.points.len() <= 1
    }

    /// Index of the segment containing `t`: the last `i` with
    /// `x_i ≤ t + EPSILON`, or 0 when `t` lies before the first breakpoint.
    #[inline]
    fn seg_index(&self, t: f64) -> usize {
        self.points
            .partition_point(|&(x, _)| x <= t + EPSILON)
            .saturating_sub(1)
    }

    /// End of segment `i` (the next breakpoint, or `+∞` for the last one).
    #[inline]
    fn seg_end(&self, i: usize) -> f64 {
        self.points
            .get(i + 1)
            .map(|&(x, _)| x)
            .unwrap_or(f64::INFINITY)
    }

    /// Returns the value of the function at time `t`.
    ///
    /// Times before the first breakpoint evaluate to the first segment value.
    pub fn value_at(&self, t: f64) -> f64 {
        self.points[self.seg_index(t)].1
    }

    /// Returns the value of the last (rightmost) segment, i.e. `f(+∞)`.
    pub fn final_value(&self) -> f64 {
        self.points
            .last()
            .expect("staircase always has a segment")
            .1
    }

    /// Returns the minimum of the function over `[0, +∞)`.
    pub fn min_value(&self) -> f64 {
        self.suffix[0].0
    }

    /// Returns the maximum of the function over `[0, +∞)`.
    pub fn max_value(&self) -> f64 {
        self.suffix[0].1
    }

    /// Index range `[lo, hi)` of the segments intersecting the window
    /// `[t1, t2)` (with the shared tolerance on both ends), found by binary
    /// search on segment ends / starts.
    fn window_range(&self, t1: f64, t2: f64) -> (usize, usize) {
        // First segment whose end reaches past t1: segment ends are the
        // breakpoints shifted by one (`seg_end(i) = x_{i+1}`, `+∞` for the
        // last), so this is a partition point of the shifted view …
        let lo = self.points[1..].partition_point(|&(x, _)| x <= t1 + EPSILON);
        // … up to the last segment starting before t2.
        let hi = self.points.partition_point(|&(x, _)| x < t2 - EPSILON);
        (lo, hi)
    }

    /// Returns the maximum of the function over `[t1, t2)`.
    ///
    /// Returns `-∞` if the interval is empty.
    pub fn max_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::NEG_INFINITY;
        }
        let (lo, hi) = self.window_range(t1, t2);
        self.points[lo.min(hi)..hi]
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the minimum of the function over `[t, +∞)`.
    pub fn min_from(&self, t: f64) -> f64 {
        // The segments intersecting [t, +∞) form a suffix: everything from
        // the segment containing (or reaching past) t onwards.
        let shifted = &self.points[1..];
        let first = shifted.partition_point(|&(x, _)| x <= t + EPSILON);
        let first = first.min(self.points.partition_point(|&(x, _)| x < t - EPSILON));
        self.suffix[first].0
    }

    /// Returns the minimum of the function over `[t1, t2)`.
    ///
    /// Returns `+∞` if the interval is empty.
    pub fn min_over(&self, t1: f64, t2: f64) -> f64 {
        if t2 <= t1 + EPSILON {
            return f64::INFINITY;
        }
        let (lo, hi) = self.window_range(t1, t2);
        self.points[lo.min(hi)..hi]
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≥ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is below the threshold).
    ///
    /// This is the query used to compute `task_mem_EST` and `comm_mem_EST`
    /// in the MemHEFT / MemMinMin heuristics. Runs in `O(log k)` via the
    /// suffix-minimum index: the rightmost violating segment is the one just
    /// before the longest all-satisfying suffix.
    pub fn earliest_sustained_ge(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if !approx_ge(self.final_value(), threshold) {
            return None;
        }
        // `approx_ge(·, threshold)` is monotone in its first argument, so a
        // suffix satisfies it everywhere iff its minimum does; the set of
        // all-satisfying suffixes is itself a suffix of the index range.
        let first_ok = self
            .suffix
            .partition_point(|&(lo, _)| !approx_ge(lo, threshold));
        if first_ok == 0 {
            return Some(t_min);
        }
        // Rightmost violation lives in segment `first_ok - 1`; the earliest
        // sustained time is that segment's end, unless the violation lies
        // entirely before `t_min`.
        let end = self.seg_end(first_ok - 1);
        if end <= t_min + EPSILON {
            Some(t_min)
        } else {
            Some(t_min.max(end))
        }
    }

    /// Finds the earliest time `t ≥ t_min` such that `f(t') ≤ threshold` for
    /// **every** `t' ≥ t`. Returns `None` if no such time exists (the last
    /// segment is above the threshold).
    ///
    /// This is the mirror of [`Staircase::earliest_sustained_ge`], used when
    /// the staircase tracks memory *usage* rather than *availability*; it
    /// binary-searches the suffix-maximum index the same way.
    pub fn earliest_sustained_le(&self, t_min: f64, threshold: f64) -> Option<f64> {
        let t_min = t_min.max(0.0);
        if self.final_value() > threshold + EPSILON {
            return None;
        }
        let first_ok = self
            .suffix
            .partition_point(|&(_, hi)| hi > threshold + EPSILON);
        if first_ok == 0 {
            return Some(t_min);
        }
        let end = self.seg_end(first_ok - 1);
        if end <= t_min + EPSILON {
            Some(t_min)
        } else {
            Some(t_min.max(end))
        }
    }

    /// Returns `true` if `f(t) ≥ threshold` for all `t ≥ t_min`.
    pub fn sustained_ge(&self, t_min: f64, threshold: f64) -> bool {
        match self.earliest_sustained_ge(t_min, threshold) {
            Some(t) => approx_eq(t, t_min.max(0.0)) || t <= t_min,
            None => false,
        }
    }

    /// Adds `delta` to the function on `[t, +∞)`.
    pub fn add_from(&mut self, t: f64, delta: f64) {
        if delta == 0.0 {
            return;
        }
        let t = t.max(0.0);
        let idx = self.ensure_breakpoint(t);
        for p in &mut self.points[idx..] {
            p.1 += delta;
        }
        self.repair(idx);
    }

    /// Adds `delta` to the function on the half-open interval `[t1, t2)`.
    ///
    /// Does nothing if the interval is empty.
    pub fn add_range(&mut self, t1: f64, t2: f64, delta: f64) {
        if delta == 0.0 || t2 <= t1 + EPSILON {
            return;
        }
        let t1 = t1.max(0.0);
        let i1 = self.ensure_breakpoint(t1);
        let i2 = self.ensure_breakpoint(t2);
        debug_assert!(i1 < i2);
        for p in &mut self.points[i1..i2] {
            p.1 += delta;
        }
        self.repair(i1);
    }

    /// Iterates over the breakpoints `(x_i, v_i)` of the representation.
    pub fn breakpoints(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Ensures a breakpoint exists exactly at `t` and returns its index.
    fn ensure_breakpoint(&mut self, t: f64) -> usize {
        let pos = self.seg_index(t);
        if approx_eq(self.points[pos].0, t) {
            return pos;
        }
        if self.points[pos].0 > t {
            // t is before the very first breakpoint (only possible for t < 0,
            // already clamped by callers); insert at front.
            self.points.insert(0, (t, self.points[0].1));
            return 0;
        }
        let v = self.points[pos].1;
        self.points.insert(pos + 1, (t, v));
        pos + 1
    }

    /// Re-establishes the invariants after the values of `points[dirty..]`
    /// changed (and up to two breakpoints were inserted at `≥ dirty`):
    /// merges adjacent approx-equal segments — merges can only appear at or
    /// after `dirty` — and patches the suffix-extrema index, rebuilding the
    /// modified tail and then walking left only while the extrema actually
    /// change. The scheduler's reserve/release pattern mutates near the end
    /// of the horizon, so the repaired region is typically tiny ("append
    /// fast"); the worst case stays the `O(k)` of the old full rebuild.
    fn repair(&mut self, dirty: usize) {
        // Merge pass over the modified tail. Values before `dirty` did not
        // change, so any new merge involves at least one index `≥ dirty`
        // (the anchor at index 0 is never removed).
        let start = dirty.max(1);
        let mut kept = start;
        for i in start..self.points.len() {
            let (x, v) = self.points[i];
            if !approx_eq(self.points[kept - 1].1, v) {
                self.points[kept] = (x, v);
                kept += 1;
            }
        }
        self.points.truncate(kept);

        // Rebuild the extrema over the modified tail. Indices `< dirty` were
        // neither shifted by the inserts nor re-valued, so their stored
        // suffix entries are still positionally aligned.
        let n = self.points.len();
        self.suffix.resize(n, (0.0, 0.0));
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in (dirty.min(n)..n).rev() {
            let v = self.points[i].1;
            lo = lo.min(v);
            hi = hi.max(v);
            self.suffix[i] = (lo, hi);
        }
        // Propagate leftward; once an index's extrema are unchanged, every
        // index to its left is unchanged too (they depend on the tail only
        // through this entry). When the merge swallowed the whole tail, the
        // last surviving index has no right neighbour: seed it neutrally.
        for i in (0..dirty.min(n)).rev() {
            let v = self.points[i].1;
            let (next_lo, next_hi) = if i + 1 < n {
                self.suffix[i + 1]
            } else {
                (f64::INFINITY, f64::NEG_INFINITY)
            };
            let new = (v.min(next_lo), v.max(next_hi));
            if new == self.suffix[i] {
                break;
            }
            self.suffix[i] = new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn constant_everywhere() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(123.0), 10.0);
        assert_eq!(s.min_value(), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_from_splits_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(5.0, -3.0);
        assert_eq!(s.value_at(0.0), 10.0);
        assert_eq!(s.value_at(4.999), 10.0);
        assert_eq!(s.value_at(5.0), 7.0);
        assert_eq!(s.value_at(100.0), 7.0);
        assert_eq!(s.min_value(), 7.0);
    }

    #[test]
    fn add_range_only_affects_interval() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 6.0, -4.0);
        assert_eq!(s.value_at(1.0), 10.0);
        assert_eq!(s.value_at(2.0), 6.0);
        assert_eq!(s.value_at(5.9), 6.0);
        assert_eq!(s.value_at(6.0), 10.0);
        assert_eq!(s.final_value(), 10.0);
    }

    #[test]
    fn add_zero_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_from(3.0, 0.0);
        s.add_range(1.0, 2.0, 0.0);
        assert_eq!(s, before);
    }

    #[test]
    fn empty_range_is_noop() {
        let mut s = Staircase::constant(5.0);
        let before = s.clone();
        s.add_range(4.0, 4.0, -2.0);
        s.add_range(5.0, 3.0, -2.0);
        assert_eq!(s, before);
    }

    #[test]
    fn overlapping_updates_accumulate() {
        let mut s = Staircase::constant(10.0);
        s.add_range(0.0, 10.0, -3.0);
        s.add_range(5.0, 15.0, -3.0);
        assert_eq!(s.value_at(2.0), 7.0);
        assert_eq!(s.value_at(7.0), 4.0);
        assert_eq!(s.value_at(12.0), 7.0);
        assert_eq!(s.value_at(20.0), 10.0);
        assert_eq!(s.min_value(), 4.0);
    }

    #[test]
    fn release_cancels_reservation() {
        let mut s = Staircase::constant(8.0);
        s.add_from(3.0, -5.0);
        s.add_from(3.0, 5.0);
        assert_eq!(s.len(), 1, "normalization should merge equal segments");
        assert_eq!(s.value_at(4.0), 8.0);
    }

    #[test]
    fn min_from_and_over() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -6.0); // dip to 4 on [2,4)
        s.add_from(8.0, -1.0); // 9 from 8 on
        assert_eq!(s.min_from(0.0), 4.0);
        assert_eq!(s.min_from(4.0), 9.0);
        assert_eq!(s.min_from(3.0), 4.0);
        assert_eq!(s.min_over(0.0, 2.0), 10.0);
        assert_eq!(s.min_over(1.0, 3.0), 4.0);
        assert_eq!(s.min_over(4.0, 8.0), 10.0);
        assert_eq!(s.min_over(5.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn earliest_sustained_simple() {
        let s = Staircase::constant(10.0);
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(0.0));
        assert_eq!(s.earliest_sustained_ge(7.0, 5.0), Some(7.0));
        assert_eq!(s.earliest_sustained_ge(0.0, 20.0), None);
    }

    #[test]
    fn earliest_sustained_waits_for_release() {
        let mut s = Staircase::constant(10.0);
        // 4 units busy until t=6.
        s.add_range(0.0, 6.0, -4.0);
        // Need 8 units forever: must wait until t=6.
        assert_eq!(s.earliest_sustained_ge(0.0, 8.0), Some(6.0));
        // Need 6 units: available right away.
        assert_eq!(s.earliest_sustained_ge(0.0, 6.0), Some(0.0));
        // t_min after the dip.
        assert_eq!(s.earliest_sustained_ge(7.0, 8.0), Some(7.0));
    }

    #[test]
    fn earliest_sustained_ignores_future_dips_only_if_threshold_met() {
        let mut s = Staircase::constant(10.0);
        s.add_range(5.0, 8.0, -7.0); // dip to 3 on [5,8)
                                     // Threshold 5 cannot be sustained from t=0; must wait until t=8.
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), Some(8.0));
        // Threshold 2 is fine from the start.
        assert_eq!(s.earliest_sustained_ge(0.0, 2.0), Some(0.0));
    }

    #[test]
    fn earliest_sustained_infeasible_final_segment() {
        let mut s = Staircase::constant(10.0);
        s.add_from(4.0, -9.0); // 1 unit forever after t=4
        assert_eq!(s.earliest_sustained_ge(0.0, 5.0), None);
        assert!(!s.sustained_ge(0.0, 5.0));
    }

    #[test]
    fn sustained_ge_checks_t_min() {
        let mut s = Staircase::constant(10.0);
        s.add_range(2.0, 4.0, -8.0);
        assert!(!s.sustained_ge(1.0, 5.0));
        assert!(s.sustained_ge(4.0, 5.0));
    }

    #[test]
    fn max_value_and_max_over() {
        let mut s = Staircase::constant(0.0);
        s.add_range(2.0, 5.0, 7.0);
        s.add_from(10.0, 3.0);
        assert_eq!(s.max_value(), 7.0);
        assert_eq!(s.max_over(0.0, 2.0), 0.0);
        assert_eq!(s.max_over(1.0, 3.0), 7.0);
        assert_eq!(s.max_over(6.0, 20.0), 3.0);
        assert_eq!(s.max_over(4.0, 4.0), f64::NEG_INFINITY);
    }

    #[test]
    fn earliest_sustained_le_usage_profile() {
        // Usage profile: 8 units in use until t=6, then 2 units forever.
        let mut used = Staircase::constant(2.0);
        used.add_range(0.0, 6.0, 6.0);
        // Capacity 10, need 4 more => usage must stay <= 6: wait until t=6.
        assert_eq!(used.earliest_sustained_le(0.0, 6.0), Some(6.0));
        // Need only 2 more (threshold 8): fine immediately.
        assert_eq!(used.earliest_sustained_le(0.0, 8.0), Some(0.0));
        // Impossible threshold below the final value.
        assert_eq!(used.earliest_sustained_le(0.0, 1.0), None);
        // t_min beyond the violation.
        assert_eq!(used.earliest_sustained_le(7.0, 6.0), Some(7.0));
    }

    #[test]
    fn value_before_zero_clamps() {
        let s = Staircase::constant(3.0);
        assert_eq!(s.value_at(-1.0), 3.0);
    }

    #[test]
    fn normalization_keeps_function_identical() {
        let mut s = Staircase::constant(20.0);
        s.add_range(1.0, 3.0, -5.0);
        s.add_range(3.0, 6.0, -5.0);
        // Adjacent identical-value segments should have been merged.
        assert!(s.len() <= 3);
        assert!(approx_eq(s.value_at(2.0), 15.0));
        assert!(approx_eq(s.value_at(4.0), 15.0));
        assert!(approx_eq(s.value_at(6.0), 20.0));
    }

    // ---- edge cases around step boundaries and degenerate windows ----

    /// A staircase with steps at 2, 5 and 9: 1 on [0,2), 6 on [2,5),
    /// 3 on [5,9), 4 on [9,∞).
    fn stepped() -> Staircase {
        let mut s = Staircase::constant(1.0);
        s.add_range(2.0, 5.0, 5.0);
        s.add_range(5.0, 9.0, 2.0);
        s.add_from(9.0, 3.0);
        s
    }

    #[test]
    fn queries_exactly_on_step_boundaries() {
        let s = stepped();
        // value_at on every breakpoint takes the segment starting there.
        assert_eq!(s.value_at(2.0), 6.0);
        assert_eq!(s.value_at(5.0), 3.0);
        assert_eq!(s.value_at(9.0), 4.0);
        // A window [2, 5) sees only the 6-segment.
        assert_eq!(s.max_over(2.0, 5.0), 6.0);
        assert_eq!(s.min_over(2.0, 5.0), 6.0);
        // A window ending exactly at a step start excludes that step.
        assert_eq!(s.max_over(0.0, 2.0), 1.0);
        // A window starting exactly at a step end excludes the step before.
        assert_eq!(s.min_over(5.0, 9.0), 3.0);
        // Windows spanning a boundary see both sides.
        assert_eq!(s.max_over(4.0, 6.0), 6.0);
        assert_eq!(s.min_over(4.0, 6.0), 3.0);
    }

    #[test]
    fn degenerate_windows_are_empty() {
        let s = stepped();
        for t in [0.0, 2.0, 5.0, 9.0, 100.0] {
            assert_eq!(s.max_over(t, t), f64::NEG_INFINITY);
            assert_eq!(s.min_over(t, t), f64::INFINITY);
        }
        // Reversed windows are empty too.
        assert_eq!(s.max_over(5.0, 2.0), f64::NEG_INFINITY);
        assert_eq!(s.min_over(5.0, 2.0), f64::INFINITY);
    }

    #[test]
    fn queries_before_the_first_step() {
        let s = stepped();
        assert_eq!(s.value_at(-3.0), 1.0);
        assert_eq!(s.min_from(-3.0), 1.0);
        assert_eq!(s.max_over(-5.0, 1.0), 1.0);
        assert_eq!(s.min_over(-5.0, 3.0), 1.0);
        assert_eq!(s.earliest_sustained_ge(-2.0, 0.5), Some(0.0));
        assert_eq!(s.earliest_sustained_le(-2.0, 10.0), Some(0.0));
    }

    #[test]
    fn min_from_exactly_on_boundaries() {
        let s = stepped();
        // From a breakpoint: the segment starting there counts, the one
        // ending there does not.
        assert_eq!(s.min_from(2.0), 3.0); // min(6, 3, 4)
        assert_eq!(s.min_from(5.0), 3.0);
        assert_eq!(s.min_from(9.0), 4.0);
        // Strictly inside a segment, that segment still counts.
        assert_eq!(s.min_from(4.5), 3.0);
        assert_eq!(s.min_from(8.9), 3.0);
    }

    #[test]
    fn earliest_sustained_on_boundaries() {
        let s = stepped();
        // Threshold 4: violated by the 1- and 3-segments; the last violation
        // is [5, 9), so the earliest sustained time is exactly 9.
        assert_eq!(s.earliest_sustained_ge(0.0, 4.0), Some(9.0));
        // t_min exactly at the sustained point.
        assert_eq!(s.earliest_sustained_ge(9.0, 4.0), Some(9.0));
        // t_min past it.
        assert_eq!(s.earliest_sustained_ge(11.0, 4.0), Some(11.0));
        // Usage view: stay ≤ 3 fails on [2,5) and forever after 9 → None.
        assert_eq!(s.earliest_sustained_le(0.0, 3.0), None);
        // Stay ≤ 5: last violation is [2,5) → sustained from 5.
        assert_eq!(s.earliest_sustained_le(0.0, 5.0), Some(5.0));
        assert_eq!(s.earliest_sustained_le(5.0, 5.0), Some(5.0));
    }

    #[test]
    fn repair_keeps_index_in_sync() {
        // Deterministic mutation storm mixing early/late, positive/negative
        // updates (including ones that merge whole tails away); after every
        // mutation the incremental index must match a from-scratch rebuild.
        let mut s = Staircase::constant(10.0);
        let mut t = 1.0f64;
        for i in 0..400 {
            match i % 5 {
                0 => s.add_from(t, 2.0),
                1 => s.add_range(t * 0.5, t + 2.0, -1.5),
                2 => s.add_from(t * 0.25, -0.5),
                3 => s.add_from(t, -2.0), // cancels case 0 → tail merges
                _ => s.add_range(0.0, t, 1.0),
            }
            t += 0.7 + (i % 4) as f64 * 0.3;
            let points: Vec<(f64, f64)> = s.breakpoints().collect();
            let full_min = points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let full_max = points
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(s.min_value(), full_min, "min index diverged at step {i}");
            assert_eq!(s.max_value(), full_max, "max index diverged at step {i}");
            // Spot-check a suffix query against the definition.
            let mid = points[points.len() / 2].0;
            let linear: f64 = points
                .iter()
                .enumerate()
                .filter(|&(j, &(x, _))| {
                    let end = points.get(j + 1).map(|&(nx, _)| nx);
                    x >= mid - EPSILON || end.map(|e| e > mid + EPSILON).unwrap_or(true)
                })
                .map(|(_, &(_, v))| v)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(s.min_from(mid), linear, "min_from diverged at step {i}");
        }
    }

    #[test]
    fn suffix_index_matches_linear_scan() {
        // Randomized-ish cross-check of the indexed queries against the
        // obvious linear-scan definitions, across many breakpoints.
        let mut s = Staircase::constant(50.0);
        let mut x = 0.5f64;
        for i in 0..60 {
            let delta = if i % 2 == 0 { -3.0 } else { 2.0 };
            s.add_range(x, x + 1.5, delta);
            x += 1.0 + (i % 3) as f64 * 0.5;
        }
        let points: Vec<(f64, f64)> = s.breakpoints().collect();
        let linear_min_from = |t: f64| {
            let mut min = f64::INFINITY;
            for (i, &(px, v)) in points.iter().enumerate() {
                let end = points.get(i + 1).map(|&(nx, _)| nx);
                let reaches = match end {
                    Some(e) => e > t + EPSILON,
                    None => true,
                };
                if px >= t - EPSILON || reaches {
                    min = min.min(v);
                }
            }
            min
        };
        for t in [-1.0, 0.0, 0.5, 3.25, 17.0, 40.0, 1000.0] {
            assert_eq!(s.min_from(t), linear_min_from(t), "min_from({t})");
        }
        for thr in [20.0, 35.0, 49.0, 50.0, 60.0] {
            for t_min in [0.0, 5.0, 33.0] {
                // The sustained point, if any, must satisfy the definition.
                if let Some(t) = s.earliest_sustained_ge(t_min, thr) {
                    assert!(t >= t_min);
                    assert!(linear_min_from(t) >= thr - 1e-9, "ge({t_min}, {thr})");
                    // And nothing strictly earlier (by more than one segment
                    // boundary) works: just before t there is a violation,
                    // unless t == t_min.
                    if t > t_min + EPSILON {
                        assert!(s.value_at(t - 1e-6) < thr, "not tight at {t}");
                    }
                } else {
                    assert!(s.final_value() < thr);
                }
            }
        }
    }
}
