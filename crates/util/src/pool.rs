//! A minimal scoped-thread parallel map.
//!
//! The experiment campaigns schedule hundreds of independent DAG / memory-
//! bound combinations; each one is CPU bound and embarrassingly parallel.
//! Rather than pulling in a full work-stealing runtime, this module provides
//! a simple self-scheduling (atomic work index) parallel map built on
//! `std::thread::scope`, which is more than enough to saturate a laptop-class
//! machine for these workloads and keeps the dependency set empty.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration for [`parallel_map`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of worker threads. `0` means "use available parallelism".
    pub threads: usize,
    /// Work-grabbing chunk size: each worker claims this many consecutive
    /// items at a time. Larger chunks reduce contention on the shared index
    /// but worsen load balance for heterogeneous item costs.
    pub chunk: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            chunk: 1,
        }
    }
}

impl ParallelConfig {
    /// A configuration that runs everything sequentially on the caller
    /// thread. Useful for deterministic debugging and in tests.
    pub fn sequential() -> Self {
        ParallelConfig {
            threads: 1,
            chunk: usize::MAX,
        }
    }

    /// A configuration using `threads` workers and chunk size 1.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads, chunk: 1 }
    }

    fn effective_threads(&self, items: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.clamp(1, items.max(1))
    }
}

/// Applies `f` to every element of `items` and collects the results in input
/// order, using the number of threads given by `cfg`.
///
/// The closure receives a reference to the item. Panics inside the closure
/// propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], cfg: ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items, cfg, |_, item| f(item))
}

/// Like [`parallel_map`] but the closure also receives the index of the item.
pub fn parallel_map_indexed<T, R, F>(items: &[T], cfg: ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let chunk = cfg.chunk.max(1);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items.iter().enumerate().take(end).skip(start) {
                        local.push((i, f(i, item)));
                    }
                    // Flush periodically so the final lock hold stays short.
                    if local.len() >= 64 {
                        let mut guard = results.lock().expect("parallel_map poisoned");
                        for (i, r) in local.drain(..) {
                            guard[i] = Some(r);
                        }
                    }
                }
                if !local.is_empty() {
                    let mut guard = results.lock().expect("parallel_map poisoned");
                    for (i, r) in local.drain(..) {
                        guard[i] = Some(r);
                    }
                }
            });
        }
    });

    results
        .into_inner()
        .expect("parallel_map poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index must have been processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, ParallelConfig::default(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_config_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(&items, ParallelConfig::sequential(), |&x| x * x + 1);
        let par = parallel_map(&items, ParallelConfig::with_threads(4), |&x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = parallel_map(&items, ParallelConfig::default(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[41u64], ParallelConfig::with_threads(8), |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn indexed_variant_gives_indices() {
        let items = ["a", "b", "c"];
        let out = parallel_map_indexed(&items, ParallelConfig::with_threads(2), |i, s| {
            format!("{i}:{s}")
        });
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..5000).collect();
        let cfg = ParallelConfig {
            threads: 8,
            chunk: 7,
        };
        let out = parallel_map(&items, cfg, |&x| {
            COUNT.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), items.len());
        assert_eq!(COUNT.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let out = parallel_map(&items, ParallelConfig::with_threads(32), |&x| x + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }
}
