//! A minimal scoped-thread parallel engine.
//!
//! Two layers are provided:
//!
//! * [`WorkerPool`] — a reusable pool of persistent worker threads. A pool is
//!   created once (e.g. per schedule under construction) and then runs many
//!   small batches of indexed work without re-spawning threads. Work is
//!   partitioned into contiguous chunks claimed from a shared atomic index
//!   (self-scheduling, no work stealing) and results are reduced in input
//!   order, so the output of [`WorkerPool::run_indexed`] is deterministic and
//!   independent of thread timing.
//! * [`parallel_map`] / [`parallel_map_indexed`] — a one-shot convenience
//!   wrapper that builds a transient pool, maps a closure over a slice and
//!   tears the pool down again. The experiment campaigns use it to spread
//!   whole DAGs over threads; the within-schedule engine of `mals-sched`
//!   holds a [`WorkerPool`] instead because it dispatches thousands of small
//!   ready-list evaluations per schedule.
//!
//! Rather than pulling in a full work-stealing runtime, this keeps the
//! dependency set empty: plain `std` threads, a condvar for batch hand-off
//! and an atomic index for chunk claiming are more than enough to saturate a
//! laptop-class machine for these workloads.
//!
//! Panics raised inside worker closures are caught, forwarded to the
//! submitting thread and re-raised there with their original payload, so a
//! failing closure behaves the same under 1 or N threads.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Configuration for [`WorkerPool`] and [`parallel_map`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of worker threads. `0` means "use available parallelism", as
    /// reported by [`std::thread::available_parallelism`] at the point of
    /// use (never a hardcoded count).
    pub threads: usize,
    /// Minimum work-claiming chunk size: each worker claims at least this
    /// many consecutive items at a time. Larger chunks reduce contention on
    /// the shared index but worsen load balance for heterogeneous item
    /// costs. The pool may claim larger blocks to amortise synchronisation
    /// on large inputs; partitioning never affects results.
    pub chunk: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            chunk: 1,
        }
    }
}

impl ParallelConfig {
    /// A configuration that runs everything sequentially on the caller
    /// thread. Useful for deterministic debugging and in tests.
    pub fn sequential() -> Self {
        ParallelConfig {
            threads: 1,
            chunk: usize::MAX,
        }
    }

    /// A configuration using `threads` workers and chunk size 1. As
    /// everywhere else, `0` resolves to the machine's available parallelism.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads, chunk: 1 }
    }

    /// The configuration requested by the `MALS_THREADS` environment
    /// variable, if set to a valid thread count (`0` = all cores).
    pub fn env_override() -> Option<Self> {
        let value = std::env::var("MALS_THREADS").ok()?;
        value.trim().parse::<usize>().ok().map(Self::with_threads)
    }

    /// [`ParallelConfig::env_override`] falling back to the default
    /// (all-cores) configuration.
    pub fn from_env() -> Self {
        Self::env_override().unwrap_or_default()
    }

    /// The actual number of threads this configuration resolves to: the
    /// requested count, or [`std::thread::available_parallelism`] when the
    /// request is `0`.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    fn effective_threads(&self, items: usize) -> usize {
        self.resolved_threads().clamp(1, items.max(1))
    }
}

/// The type-erased per-batch executor: called with a claimed index range
/// `[start, end)`.
type RangeRunner = dyn Fn(usize, usize) + Sync;

/// A batch published to the workers. The runner pointer borrows from the
/// submitting thread's stack frame; see the safety notes on
/// [`WorkerPool::run_batch`].
struct Batch {
    runner: *const RangeRunner,
    len: usize,
    chunk: usize,
}

// SAFETY: the raw runner pointer is only dereferenced while the submitting
// thread is blocked inside `run_batch`, which keeps the referent alive.
unsafe impl Send for Batch {}

struct Control {
    /// Incremented once per published batch; workers detect new work by
    /// comparing against the last generation they processed.
    generation: u64,
    batch: Option<Batch>,
    /// Workers that have not yet finished the current generation.
    active: usize,
    shutdown: bool,
}

struct Shared {
    control: Mutex<Control>,
    work_ready: Condvar,
    work_done: Condvar,
    /// Next unclaimed item index of the current batch.
    next: AtomicUsize,
    /// First panic payload captured from a worker (or the submitter's own
    /// share of the batch), re-raised once the batch has drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A reusable pool of persistent worker threads executing indexed batches.
///
/// The pool spawns `resolved_threads - 1` OS threads on construction (the
/// submitting thread itself works on every batch, so a 1-thread pool spawns
/// nothing and runs inline). Batches are submitted with
/// [`WorkerPool::run_indexed`]; the pool partitions `0..len` into contiguous
/// chunks, workers claim chunks from a shared atomic counter, and the results
/// are collected in index order — the returned `Vec` is bit-identical to a
/// sequential `(0..len).map(f).collect()` whenever `f` is a pure function of
/// its index.
///
/// Batches are serialised: concurrent `run_indexed` calls on one pool queue
/// behind an internal lock, and a batch closure must not re-enter the pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    min_chunk: usize,
    /// Serialises batch submission (one batch in flight at a time).
    submit: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("min_chunk", &self.min_chunk)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool for `cfg` (resolving `threads == 0` to the available
    /// parallelism) and spawns its persistent workers.
    pub fn new(cfg: ParallelConfig) -> Self {
        let threads = cfg.resolved_threads().max(1);
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                generation: 0,
                batch: None,
                active: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
            min_chunk: if cfg.chunk == usize::MAX {
                1
            } else {
                cfg.chunk.max(1)
            },
            submit: Mutex::new(()),
        }
    }

    /// The number of threads participating in each batch (including the
    /// submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..len` and returns the results in
    /// index order. `f` runs concurrently on the pool's threads; the result
    /// is identical to `(0..len).map(f).collect()` for pure `f`.
    ///
    /// Panics raised by `f` on any thread are re-raised here with their
    /// original payload once the batch has drained.
    pub fn run_indexed<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        if self.workers.is_empty() || len == 1 {
            return (0..len).map(f).collect();
        }
        let chunk = self.claim_size(len);
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..len).map(|_| None).collect());
        let runner = |start: usize, end: usize| {
            // Compute the whole claimed range before taking the results
            // lock, so the lock is held for a plain memcpy-like splice.
            let mut local = Vec::with_capacity(end - start);
            for i in start..end {
                local.push((i, f(i)));
            }
            let mut slots = results.lock().expect("worker pool results poisoned");
            for (i, r) in local {
                slots[i] = Some(r);
            }
        };
        self.run_batch(&runner, len, chunk);
        results
            .into_inner()
            .expect("worker pool results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every index must have been processed"))
            .collect()
    }

    /// [`WorkerPool::run_indexed`] into a caller-owned buffer: `out` is
    /// cleared and refilled with `(0..len).map(f)` in index order, reusing
    /// its existing capacity. The allocation-free commit path of the
    /// schedulers calls this with per-schedule scratch vectors so steady
    /// state performs no result-buffer allocation per selection step.
    pub fn run_indexed_into<R, F>(&self, len: usize, f: F, out: &mut Vec<R>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        out.clear();
        if len == 0 {
            return;
        }
        if self.workers.is_empty() || len == 1 {
            out.extend((0..len).map(f));
            return;
        }
        let chunk = self.claim_size(len);
        // Workers append (start, local results) per claimed range; the
        // ranges are disjoint, so sorting by start and concatenating
        // reproduces index order exactly — the same bits `run_indexed`
        // returns.
        let results: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        let runner = |start: usize, end: usize| {
            let mut local = Vec::with_capacity(end - start);
            for i in start..end {
                local.push(f(i));
            }
            results
                .lock()
                .expect("worker pool results poisoned")
                .push((start, local));
        };
        self.run_batch(&runner, len, chunk);
        let mut ranges = results.into_inner().expect("worker pool results poisoned");
        ranges.sort_unstable_by_key(|&(start, _)| start);
        for (_, local) in ranges {
            out.extend(local);
        }
        debug_assert_eq!(out.len(), len, "every index must have been processed");
    }

    /// Chunks claimed per synchronisation: at least the configured minimum,
    /// scaled up on large inputs so each thread performs a bounded number of
    /// claims per batch.
    fn claim_size(&self, len: usize) -> usize {
        let amortised = len / (self.threads * 8);
        self.min_chunk.max(amortised).max(1)
    }

    /// Publishes one batch and blocks until every thread has finished it.
    fn run_batch<'a>(
        &self,
        runner: &'a (dyn Fn(usize, usize) + Sync + 'a),
        len: usize,
        chunk: usize,
    ) {
        // A panicking batch unwinds through this guard and poisons the lock;
        // the pool stays usable, so tolerate the poison on re-entry.
        let _exclusive = self
            .submit
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: the runner reference is smuggled to the workers with its
        // lifetime erased. This function does not return (even on panic —
        // the submitter's own share runs under `catch_unwind`) until every
        // worker has decremented `active` for this generation, i.e. until no
        // thread can touch the pointer again, so the borrow outlives all
        // uses.
        let runner_ptr: *const RangeRunner = unsafe {
            std::mem::transmute::<&'a (dyn Fn(usize, usize) + Sync + 'a), &'static RangeRunner>(
                runner,
            )
        };
        {
            let mut control = self.shared.control.lock().expect("worker pool poisoned");
            debug_assert!(control.batch.is_none(), "batch already in flight");
            control.batch = Some(Batch {
                runner: runner_ptr,
                len,
                chunk,
            });
            control.generation = control.generation.wrapping_add(1);
            control.active = self.workers.len();
            self.shared.next.store(0, Ordering::Relaxed);
            self.shared.work_ready.notify_all();
        }
        // The submitting thread is a full participant.
        run_chunks(&self.shared, runner_ptr, len, chunk);
        let mut control = self.shared.control.lock().expect("worker pool poisoned");
        while control.active > 0 {
            control = self
                .shared
                .work_done
                .wait(control)
                .expect("worker pool poisoned");
        }
        control.batch = None;
        drop(control);
        let payload = self
            .shared
            .panic
            .lock()
            .expect("worker pool poisoned")
            .take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut control = self
                .shared
                .control
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            control.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (runner, len, chunk) = {
            let mut control = shared.control.lock().expect("worker pool poisoned");
            loop {
                if control.shutdown {
                    return;
                }
                if control.generation != seen {
                    seen = control.generation;
                    let batch = control
                        .batch
                        .as_ref()
                        .expect("generation bumped without a batch");
                    break (batch.runner, batch.len, batch.chunk);
                }
                control = shared
                    .work_ready
                    .wait(control)
                    .expect("worker pool poisoned");
            }
        };
        run_chunks(shared, runner, len, chunk);
        let mut control = shared.control.lock().expect("worker pool poisoned");
        control.active -= 1;
        if control.active == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Claims and executes chunks of the current batch until none remain. Panics
/// inside the runner are captured (first payload wins) and abort the rest of
/// the batch so the other threads drain quickly.
fn run_chunks(shared: &Shared, runner: *const RangeRunner, len: usize, chunk: usize) {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| loop {
        let start = shared.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            break;
        }
        let end = (start + chunk).min(len);
        // SAFETY: see `run_batch` — the submitter keeps the runner alive
        // until every participant has finished the batch.
        unsafe { (*runner)(start, end) };
    }));
    if let Err(payload) = outcome {
        // Stop further claims so the batch drains as fast as possible.
        shared.next.store(len, Ordering::Relaxed);
        let mut slot = shared.panic.lock().expect("worker pool poisoned");
        slot.get_or_insert(payload);
    }
}

/// Applies `f` to every element of `items` and collects the results in input
/// order, using the number of threads given by `cfg`.
///
/// The closure receives a reference to the item. Panics inside the closure
/// propagate to the caller with their original payload.
pub fn parallel_map<T, R, F>(items: &[T], cfg: ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items, cfg, |_, item| f(item))
}

/// Like [`parallel_map`] but the closure also receives the index of the item.
pub fn parallel_map_indexed<T, R, F>(items: &[T], cfg: ParallelConfig, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = cfg.effective_threads(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let pool = WorkerPool::new(ParallelConfig {
        threads,
        chunk: cfg.chunk,
    });
    pool.run_indexed(n, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, ParallelConfig::default(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_config_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(&items, ParallelConfig::sequential(), |&x| x * x + 1);
        let par = parallel_map(&items, ParallelConfig::with_threads(4), |&x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = parallel_map(&items, ParallelConfig::default(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(&[41u64], ParallelConfig::with_threads(8), |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn indexed_variant_gives_indices() {
        let items = ["a", "b", "c"];
        let out = parallel_map_indexed(&items, ParallelConfig::with_threads(2), |i, s| {
            format!("{i}:{s}")
        });
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<usize> = (0..5000).collect();
        let cfg = ParallelConfig {
            threads: 8,
            chunk: 7,
        };
        let out = parallel_map(&items, cfg, |&x| {
            COUNT.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), items.len());
        assert_eq!(COUNT.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn more_threads_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let out = parallel_map(&items, ParallelConfig::with_threads(32), |&x| x + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(ParallelConfig::default().resolved_threads(), hw);
        assert_eq!(ParallelConfig::with_threads(0).resolved_threads(), hw);
        assert_eq!(ParallelConfig::with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(ParallelConfig::with_threads(4));
        for round in 0..50usize {
            let out = pool.run_indexed(round + 1, |i| i * round);
            assert_eq!(out, (0..=round).map(|i| i * round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_results_are_index_ordered_and_deterministic() {
        let pool = WorkerPool::new(ParallelConfig::with_threads(8));
        let a = pool.run_indexed(10_000, |i| i as u64 * 3 + 1);
        let b = pool.run_indexed(10_000, |i| i as u64 * 3 + 1);
        assert_eq!(a, b);
        assert_eq!(a[1234], 1234 * 3 + 1);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(ParallelConfig::sequential());
        assert_eq!(pool.threads(), 1);
        let out = pool.run_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_propagates_worker_panics_with_payload() {
        let pool = WorkerPool::new(ParallelConfig::with_threads(4));
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(100, |i| {
                if i == 57 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
        .expect_err("the panic must propagate");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("boom at 57"), "payload lost: {message}");
        // The pool survives a panicking batch and keeps working.
        assert_eq!(pool.run_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, ParallelConfig::with_threads(4), |&x| {
                assert!(x != 13, "unlucky");
                x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn env_override_parses_thread_counts() {
        // Only exercise the parser indirectly: with_threads semantics are
        // what `MALS_THREADS` resolves to, and `from_env` falls back to the
        // default when the variable is unset or invalid (not asserted here —
        // tests must not mutate the process environment).
        assert_eq!(ParallelConfig::with_threads(5).resolved_threads(), 5);
        let fallback = ParallelConfig::from_env();
        assert!(fallback.resolved_threads() >= 1);
    }
}
