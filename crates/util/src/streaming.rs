//! Streaming aggregation: statistics that never hold their samples.
//!
//! The large-campaign harness (10⁴–10⁵-task DAGs, thousands of seeds) folds
//! every per-instance result into constant-size accumulators instead of
//! collecting a `Vec` of outcomes:
//!
//! * [`OnlineStats`] (re-exported from [`crate::stats`]) — Welford
//!   mean/variance with min/max, mergeable;
//! * [`QuantileSketch`] — a fixed-grid histogram over a caller-chosen value
//!   range, answering approximate quantile queries with error bounded by one
//!   grid cell. Values outside the grid are clamped into the edge cells (and
//!   counted), so the sketch never loses mass.
//!
//! Both are deterministic (fold order is the only input), mergeable, and
//! serialise to/from [`crate::json::Json`] with bit-exact counts, which is
//! what makes campaign checkpoints byte-stable across a kill/resume cycle.

use crate::json::Json;
pub use crate::stats::OnlineStats;

/// A fixed-grid quantile sketch: `bins` equal-width cells over `[lo, hi)`,
/// plus clamped edge mass for out-of-range values.
///
/// Memory is `O(bins)` regardless of how many values are folded in; a
/// quantile query answers with the midpoint of the cell containing the
/// requested rank, so the error is at most half a cell width (plus the
/// clamping error for values outside `[lo, hi)`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch over `[lo, hi)` with `bins` cells.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "QuantileSketch needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "QuantileSketch needs a finite, non-empty range (got [{lo}, {hi}))"
        );
        QuantileSketch {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// The sketch used for normalised-makespan campaigns: 256 cells over
    /// `[0, 4)` (normalised makespans live near 1; anything ≥ 4 is clamped).
    pub fn normalized_makespan() -> Self {
        QuantileSketch::new(0.0, 4.0, 256)
    }

    /// Number of values folded in so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Lower bound of the grid.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the grid.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Index of the cell a value falls into (out-of-range values clamp to
    /// the edge cells; NaN clamps low).
    fn bin_of(&self, x: f64) -> usize {
        let span = self.hi - self.lo;
        let pos = (x - self.lo) / span * self.counts.len() as f64;
        if pos.is_nan() || pos < 0.0 {
            0
        } else {
            (pos as usize).min(self.counts.len() - 1)
        }
    }

    /// Folds one value in.
    pub fn push(&mut self, x: f64) {
        let bin = self.bin_of(x);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Approximate `q`-quantile (`q ∈ [0, 1]`): the midpoint of the cell
    /// containing the rank `⌈q · n⌉`. Returns `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let width = (self.hi - self.lo) / self.counts.len() as f64;
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        // Unreachable while counts sum to total; be safe anyway.
        Some(self.hi)
    }

    /// Approximate median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Merges another sketch into this one.
    ///
    /// # Panics
    /// Panics if the grids differ (range or bin count).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge sketches with different grids"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Serialises the sketch (grid + counts). Counts are `u64` but stay far
    /// below 2⁵³ in practice; the JSON number encoding is exact there.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lo", Json::Num(self.lo)),
            ("hi", Json::Num(self.hi)),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
        ])
    }

    /// Parses the shape produced by [`QuantileSketch::to_json`].
    pub fn from_json(json: &Json) -> Option<Self> {
        let lo = json.get("lo")?.as_f64()?;
        let hi = json.get("hi")?.as_f64()?;
        let counts: Vec<u64> = json
            .get("counts")?
            .as_arr()?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<_>>()?;
        if counts.is_empty() || !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return None;
        }
        let total = counts.iter().sum();
        Some(QuantileSketch {
            lo,
            hi,
            counts,
            total,
        })
    }
}

/// Serialises an [`OnlineStats`] accumulator. The moments round-trip
/// bit-exactly through the JSON float encoding, so folding more samples into
/// a deserialised accumulator continues the exact same stream.
pub fn stats_to_json(stats: &OnlineStats) -> Json {
    if stats.count() == 0 {
        return Json::obj([("count", Json::Num(0.0))]);
    }
    Json::obj([
        ("count", Json::Num(stats.count() as f64)),
        ("mean", Json::Num(stats.mean())),
        ("m2", Json::Num(stats.m2())),
        ("min", Json::Num(stats.min())),
        ("max", Json::Num(stats.max())),
    ])
}

/// Parses the shape produced by [`stats_to_json`].
pub fn stats_from_json(json: &Json) -> Option<OnlineStats> {
    let count = json.get("count")?.as_u64()?;
    if count == 0 {
        return Some(OnlineStats::new());
    }
    OnlineStats::from_parts(
        count,
        json.get("mean")?.as_f64()?,
        json.get("m2")?.as_f64()?,
        json.get("min")?.as_f64()?,
        json.get("max")?.as_f64()?,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn sketch_quantiles_on_uniform_grid() {
        let mut s = QuantileSketch::new(0.0, 10.0, 100);
        for i in 0..1000 {
            s.push(i as f64 / 100.0); // uniform over [0, 10)
        }
        assert_eq!(s.count(), 1000);
        let median = s.median().unwrap();
        assert!((median - 5.0).abs() < 0.2, "median ≈ 5, got {median}");
        let p90 = s.quantile(0.9).unwrap();
        assert!((p90 - 9.0).abs() < 0.2, "p90 ≈ 9, got {p90}");
    }

    #[test]
    fn sketch_clamps_out_of_range() {
        let mut s = QuantileSketch::new(0.0, 1.0, 10);
        s.push(-5.0);
        s.push(42.0);
        s.push(f64::NAN);
        assert_eq!(s.count(), 3);
        // All mass is in the edge cells; quantiles stay inside the grid.
        let q = s.quantile(1.0).unwrap();
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn sketch_empty_has_no_quantiles() {
        let s = QuantileSketch::new(0.0, 1.0, 4);
        assert_eq!(s.median(), None);
        assert_eq!(s.quantile(0.9), None);
    }

    #[test]
    fn sketch_merge_equals_single_stream() {
        let mut whole = QuantileSketch::new(0.0, 2.0, 32);
        let mut a = QuantileSketch::new(0.0, 2.0, 32);
        let mut b = QuantileSketch::new(0.0, 2.0, 32);
        for i in 0..200 {
            let x = (i as f64 * 0.7).rem_euclid(2.0);
            whole.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn sketch_merge_rejects_grid_mismatch() {
        let mut a = QuantileSketch::new(0.0, 1.0, 4);
        let b = QuantileSketch::new(0.0, 2.0, 4);
        a.merge(&b);
    }

    #[test]
    fn sketch_json_round_trip() {
        let mut s = QuantileSketch::normalized_makespan();
        for x in [0.9, 1.0, 1.1, 1.5, 3.9, 7.0] {
            s.push(x);
        }
        let back = QuantileSketch::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.median(), s.median());
    }

    #[test]
    fn stats_json_round_trip_is_bit_exact() {
        let mut stats = OnlineStats::new();
        for x in [0.1, 0.2, 0.30000000000000004, 1e-300, 3.5e12] {
            stats.push(x);
        }
        let text = stats_to_json(&stats).to_compact();
        let back = stats_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), stats.count());
        assert_eq!(back.mean().to_bits(), stats.mean().to_bits());
        assert_eq!(back.m2().to_bits(), stats.m2().to_bits());
        assert_eq!(back.min().to_bits(), stats.min().to_bits());
        assert_eq!(back.max().to_bits(), stats.max().to_bits());
        // Continuing the stream after a round trip matches never pausing.
        let mut resumed = back;
        let mut uninterrupted = stats.clone();
        for x in [2.0, -1.0] {
            resumed.push(x);
            uninterrupted.push(x);
        }
        assert_eq!(resumed.mean().to_bits(), uninterrupted.mean().to_bits());
        assert_eq!(
            resumed.variance().to_bits(),
            uninterrupted.variance().to_bits()
        );
    }

    #[test]
    fn empty_stats_round_trip() {
        let back = stats_from_json(&stats_to_json(&OnlineStats::new())).unwrap();
        assert_eq!(back.count(), 0);
        assert!(approx_eq(back.mean(), 0.0));
    }
}
